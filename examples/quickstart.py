"""Quickstart: train a zero-shot cost model and predict on an unseen database.

This walks the full paper pipeline end to end at toy scale:

1. generate a handful of benchmark databases,
2. execute training workloads on them (the traces),
3. train a zero-shot cost model on all databases *except* one,
4. predict query runtimes on the held-out (unseen) database — out of the
   box, without a single training query on it.

Run with::

    python examples/quickstart.py
"""

import zlib

import numpy as np

from repro.bench import format_table
from repro.core import TrainingConfig, ZeroShotCostModel
from repro.datagen import make_benchmark_databases
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


def main():
    # 1. A slice of the 20-database benchmark (kept small for the example).
    names = ["accidents", "airline", "baseball", "financial", "movielens",
             "imdb"]
    print(f"Generating {len(names)} benchmark databases ...")
    dbs = make_benchmark_databases(base_rows=2000, subset=names)

    # 2. Execute a standard SPAJ workload on every *training* database.
    print("Executing training workloads (plans + true cardinalities + "
          "simulated runtimes) ...")
    traces = []
    for name in names:
        if name == "imdb":
            continue  # IMDB stays unseen!
        # crc32, not hash(): string hashing is randomized per process.
        generator = WorkloadGenerator(dbs[name],
                                      WorkloadConfig(max_joins=3),
                                      seed=zlib.crc32(name.encode()) % 1000)
        traces.append(generate_trace(dbs[name], generator.generate(120)))

    # 3. Train the zero-shot model (transferable features, Q-error loss).
    print("Training the zero-shot cost model ...")
    config = TrainingConfig(hidden_dim=48, epochs=30, seed=0)
    model = ZeroShotCostModel.train(traces, dbs, cards="exact", config=config)

    # 4. Predict runtimes on the unseen IMDB database.
    generator = WorkloadGenerator(dbs["imdb"], WorkloadConfig(max_joins=3),
                                  seed=99)
    unseen_trace = generate_trace(dbs["imdb"], generator.generate(60))
    metrics = model.evaluate(unseen_trace, dbs, cards="deepdb")

    print("\nZero-shot accuracy on the UNSEEN imdb database "
          "(no training queries on it):")
    print(format_table([{
        "median q-error": metrics["median"],
        "p95 q-error": metrics["p95"],
        "max q-error": metrics["max"],
        "queries": metrics["count"],
    }]))

    # Bonus: inspect one prediction.
    record = unseen_trace[0]
    predicted = model.predict_records([record], dbs, cards="deepdb")[0]
    print(f"\nExample query: {record.query.describe()}")
    print(f"predicted {predicted:8.2f} ms   vs   actual {record.runtime_ms:8.2f} ms")
    print("\nPhysical plan:")
    print(record.plan.explain(use_true=True))


if __name__ == "__main__":
    main()
