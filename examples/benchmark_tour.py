"""A tour of the 20-database benchmark (Section 6).

Prints the schema diversity of the benchmark, generates all three workload
modes on one database, and shows trace statistics — the raw material every
experiment in the paper consumes.

Run with::

    python examples/benchmark_tour.py
"""

import numpy as np

from repro.bench import format_bars, format_table
from repro.datagen import BENCHMARK_PROFILES, make_benchmark_database
from repro.sql import PredOp, iter_predicate_nodes
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


def main():
    # Schema diversity across the 20 databases.
    rows = []
    for name, (layout, n_tables, complexity, size) in BENCHMARK_PROFILES.items():
        rows.append({"database": name, "layout": layout, "tables": n_tables,
                     "complexity": complexity, "relative size": size})
    print(format_table(rows, title="The 20 benchmark databases"))

    # Generate one database and look at its workload modes.
    db = make_benchmark_database("financial", base_rows=2000)
    print(f"\nGenerated {db!r}")
    for fk in db.schema.foreign_keys:
        print(f"  FK: {fk.child_table}.{fk.child_column} -> "
              f"{fk.parent_table}.{fk.parent_column}")

    for mode in ("standard", "complex"):
        generator = WorkloadGenerator(db, WorkloadConfig(mode=mode,
                                                         max_joins=3), seed=1)
        queries = generator.generate(200)
        ops = {}
        for query in queries:
            for pred in query.filters.values():
                for node in iter_predicate_nodes(pred):
                    ops[node.op.value] = ops.get(node.op.value, 0) + 1
        print(f"\nPredicate operator mix in '{mode}' mode (200 queries):")
        print(format_bars(dict(sorted(ops.items(), key=lambda kv: -kv[1]))))

    # Execute a trace and show its runtime distribution.
    generator = WorkloadGenerator(db, WorkloadConfig(max_joins=3), seed=2)
    trace = generate_trace(db, generator.generate(150))
    runtimes = trace.runtimes()
    print("\nTrace statistics (150 executed queries):")
    print(format_table([{
        "queries": len(trace),
        "timeouts excluded": trace.excluded_timeouts,
        "p50 (ms)": float(np.median(runtimes)),
        "p95 (ms)": float(np.percentile(runtimes, 95)),
        "max (ms)": float(runtimes.max()),
        "total hours": trace.total_execution_hours(),
    }]))

    record = max(trace, key=lambda r: r.runtime_ms)
    print(f"\nSlowest query: {record.query.describe()}")
    print(record.plan.explain(use_true=True))


if __name__ == "__main__":
    main()
