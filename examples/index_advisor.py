"""Physical design tuning with zero-shot cost estimates (Section 5.2).

A design advisor must compare physical designs *without executing the
workload under each candidate*.  Zero-shot cost models make this possible on
a fresh database: the advisor re-plans the workload under each candidate
index and asks the model for predicted runtimes.

This example trains a zero-shot model on index-mode workloads (random
indexes created/dropped during execution, so the model learns the
seq-scan/index-scan trade-off), then lets the greedy advisor pick indexes
for an unseen database — and finally verifies the recommendation by actually
executing the workload before/after.

Run with::

    python examples/index_advisor.py
"""

import numpy as np

from repro.bench import format_table
from repro.core import TrainingConfig, ZeroShotCostModel
from repro.datagen import make_benchmark_databases
from repro.design import IndexAdvisor
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


def main():
    names = ["accidents", "employee", "walmart", "tournament", "imdb"]
    print("Generating databases ...")
    dbs = make_benchmark_databases(base_rows=2500, subset=names)

    print("Training a zero-shot model on INDEX-MODE workloads ...")
    traces = []
    for name in names[:-1]:
        generator = WorkloadGenerator(dbs[name], WorkloadConfig(max_joins=2),
                                      seed=hash(name) % 500)
        traces.append(generate_trace(dbs[name], generator.generate(120),
                                     index_mode=True, seed=3))
    model = ZeroShotCostModel.train(
        traces, dbs, cards="exact",
        config=TrainingConfig(hidden_dim=48, epochs=30, seed=2))

    # The target: an unseen database and its regular workload.
    target = dbs["imdb"]
    workload = WorkloadGenerator(target, WorkloadConfig(max_joins=2),
                                 seed=17).generate(25)

    def measured_total_ms():
        trace = generate_trace(target, workload)
        return float(np.sum(trace.runtimes()))

    before_ms = measured_total_ms()

    print("Running the greedy index advisor (predictions only, "
          "no executions) ...")
    advisor = IndexAdvisor(model, cards="optimizer")
    choices = advisor.recommend(target, workload, max_indexes=2,
                                min_saving_fraction=0.0)

    rows = [{
        "step": i + 1,
        "index": f"{table}.{column}",
        "predicted total (ms)": choice.predicted_total_ms,
        "predicted saving (ms)": choice.predicted_saving_ms,
    } for i, choice in enumerate(choices)
        for table, column in [choice.index]]
    print()
    print(format_table(rows, title="Advisor recommendations"))

    after_ms = measured_total_ms()
    print()
    print(format_table([{
        "workload total before (ms)": before_ms,
        "after recommended indexes (ms)": after_ms,
        "measured speedup": before_ms / max(after_ms, 1e-9),
    }], title="Verification by actual execution"))


if __name__ == "__main__":
    main()
