"""Fleet quickstart: scale the predictor across processes with one model copy.

The scale-out serving story in one script:

1. generate benchmark databases and train a zero-shot cost model on all of
   them *except* one,
2. publish it to a :class:`~repro.serving.ModelRegistry`,
3. start a :class:`~repro.serving.PredictorFleet` — a sharding router over
   forked worker processes whose checkpoints are hydrated via mmap: one
   page-cache copy of the model for the whole fleet,
4. fire a *skewed* open-loop mix (one hot database, one cold) at 1, 2 and
   4 workers and print the per-count throughput, the per-database latency
   breakdown and the router's shard/spill counters,
5. hot-swap: publish a v2 and watch the whole fleet pick it up with zero
   downtime.

Scaling beyond ~1x needs real cores — on a single-CPU machine the numbers
honestly show the fork/pipe overhead instead.  Run with::

    python examples/fleet_quickstart.py
"""

import os
import tempfile
import zlib

from repro.bench import format_table
from repro.core import TrainingConfig, ZeroShotCostModel
from repro.datagen import make_benchmark_databases
from repro.serving import (LoadConfig, ModelRegistry, PredictorFleet,
                           ServerConfig, run_load, skewed_requests)
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


def main():
    # 1. Databases and training traces (IMDB stays unseen).
    names = ["accidents", "airline", "baseball", "imdb"]
    print(f"Generating {len(names)} benchmark databases ...")
    dbs = make_benchmark_databases(base_rows=1200, subset=names)
    traces = []
    for name in names:
        if name == "imdb":
            continue
        generator = WorkloadGenerator(dbs[name], WorkloadConfig(max_joins=3),
                                      seed=zlib.crc32(name.encode()) % 1000)
        traces.append(generate_trace(dbs[name], generator.generate(60)))

    print("Training the zero-shot cost model ...")
    config = TrainingConfig(hidden_dim=32, epochs=15, seed=0)
    model = ZeroShotCostModel.train(traces, dbs, cards="exact", config=config)

    with tempfile.TemporaryDirectory() as registry_dir:
        # 2. Publish; the fleet's workers hydrate this from disk via mmap.
        registry = ModelRegistry(registry_dir)
        deployment = registry.publish(
            "zero-shot", model,
            dbs=[dbs[n] for n in names if n != "imdb"], default=True)
        print(f"Published {deployment.name} v{deployment.version} "
              f"(checkpoint {deployment.checkpoint_key[:12]}...)")

        # 3. A skewed online mix: the UNSEEN imdb database is hot (85% of
        #    traffic), accidents is cold — the shape that exercises the
        #    router's preferred-shard + least-loaded-spill placement.
        pools = {}
        for name, share in (("imdb", 0.85), ("accidents", 0.15)):
            generator = WorkloadGenerator(dbs[name],
                                          WorkloadConfig(max_joins=3),
                                          seed=99)
            records = generate_trace(dbs[name], generator.generate(60))
            pools[name] = [(name, record.plan) for record in records]
        mix = skewed_requests(pools, {"imdb": 0.85, "accidents": 0.15},
                              n=360, seed=7)

        # 4. Saturation load at 1 / 2 / 4 workers.  Result cache off so
        #    every request pays the real inference path in a worker.
        fleet_config = ServerConfig(max_batch_size=32, max_delay_ms=2.0,
                                    queue_depth=len(mix) + 8,
                                    result_cache_size=0)
        print(f"\nServing {len(mix)} skewed requests "
              f"(85% imdb / 15% accidents) on {os.cpu_count()} CPU(s) ...")
        rows, reports = [], {}
        for n_workers in (1, 2, 4):
            fleet = PredictorFleet(registry, dbs, fleet_config,
                                   n_workers=n_workers, spill_threshold=16)
            with fleet:
                report = run_load(fleet, mix,
                                  LoadConfig(n_clients=4, block=True,
                                             seed=7))
                stats = fleet.stats()
            reports[n_workers] = report
            rows.append({
                "workers": n_workers,
                "throughput (req/s)": report.throughput_rps,
                "p99 (ms)": report.latency_ms["p99"],
                "spills": stats["spills"],
                "restarts": stats["worker_restarts"],
            })
        print(format_table(rows))
        base = rows[0]["throughput (req/s)"]
        print(f"Scaling vs 1 worker: "
              + ", ".join(f"{row['workers']}w "
                          f"{row['throughput (req/s)'] / base:.2f}x"
                          for row in rows[1:]))

        print("\nPer-database breakdown at 4 workers (hot vs cold shard):")
        print(format_table([
            {"database": name, "requests": summary["requests"],
             "p50 (ms)": summary["p50"], "p99 (ms)": summary["p99"],
             "degraded": summary["degraded"]}
            for name, summary in reports[4].latency_by_db.items()]))

        # 5. Zero-downtime hot swap: publish v2, the router broadcasts on
        #    the generation change, every worker re-resolves from disk.
        model_v2 = ZeroShotCostModel.train(
            traces, dbs, cards="exact",
            config=TrainingConfig(hidden_dim=32, epochs=15, seed=1))
        with PredictorFleet(registry, dbs, fleet_config,
                            n_workers=2) as fleet:
            before = fleet.predict([mix[0][1]], mix[0][0])[0]
            registry.publish("zero-shot", model_v2,
                             dbs=[dbs[n] for n in names if n != "imdb"])
            after = fleet.predict([mix[0][1]], mix[0][0])[0]
            swaps = fleet.stats()["swaps"]
        print(f"\nHot swap: same plan predicted {before:.2f} ms on v1, "
              f"{after:.2f} ms on v2 ({swaps} worker swaps, zero downtime)")


if __name__ == "__main__":
    main()
