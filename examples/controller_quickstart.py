"""Continuous-learning quickstart: drift, auto-retrain, guarded promote,
auto-rollback.

The whole control plane in one synchronous script, in two acts over the
same world (a training database, a drift database the base model has
never seen, and a heavy database nothing ever learns):

**Act 1 — recovery.** Serve in-distribution traffic (the controller
observes every delivery and stays quiet), then shift the workload to the
drift database: the drift detector trips, a candidate is fine-tuned from
the observed drift window, shadow-evaluated on mirrored traffic,
auto-promoted behind the Q-error margin gate, and finally graduates its
probation window.  The per-phase Q-error curve shows the recovery.

**Act 2 — guarded promotion.** Same beginning, but while the promoted
candidate is still *in probation* the workload shifts again, to the
heavy database it never learned.  The probation guard catches the
regression and atomically rolls back to the previous version.

Every decision lands in a typed, replayable journal — run the script
twice and the event streams are bit-identical.

Run with::

    python examples/controller_quickstart.py
"""

import tempfile

from repro import perfstats
from repro.core import TrainingConfig, ZeroShotCostModel
from repro.datagen import generate_database, random_database_spec
from repro.executor import simulate_runtime_ms_batch
from repro.serving import (ContinuousLearningController, ControllerConfig,
                           LoadConfig, ModelRegistry, PredictorServer,
                           ServerConfig, run_load)
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace

CONFIG = ControllerConfig(
    truth_seed=7, drift_threshold=2.0, drift_window=16,
    min_observations=8, max_fine_tune_records=16, fine_tune_epochs=20,
    fine_tune_lr=1e-3, shadow_margin=1.05, min_shadow_samples=16,
    probation_observations=64, probation_threshold=2.5,
    max_observations_per_tick=16)

LOAD = LoadConfig(n_clients=1, block=True)


def build_world():
    print("Generating databases ...")
    db = generate_database(random_database_spec(
        "ctl_db", seed=31, layout="snowflake", base_rows=400, n_tables=4,
        complexity=0.6))
    drift_db = generate_database(random_database_spec(
        "drift_db", seed=77, layout="star", base_rows=900, n_tables=5,
        complexity=0.9))
    heavy_db = generate_database(random_database_spec(
        "heavy_db", seed=5, layout="star", base_rows=20000, n_tables=6,
        complexity=0.9))
    dbs = {d.name: d for d in (db, drift_db, heavy_db)}

    trace_a = list(generate_trace(db, WorkloadGenerator(
        db, WorkloadConfig(max_joins=1), seed=7).generate(40), seed=7))
    trace_b = list(generate_trace(drift_db, WorkloadGenerator(
        drift_db, WorkloadConfig(min_joins=2, max_joins=4),
        seed=99).generate(120), seed=7))
    trace_c = list(generate_trace(heavy_db, WorkloadGenerator(
        heavy_db, WorkloadConfig(min_joins=3, max_joins=5),
        seed=13).generate(32), seed=7))

    print("Training the base model (single-join queries, ctl_db only) ...")
    base = ZeroShotCostModel.train(
        [trace_a], dbs, cards="exact",
        config=TrainingConfig(hidden_dim=24, epochs=12, dtype="float32",
                              seed=0))
    return dbs, trace_a, trace_b, trace_c, base


def drive(dbs, base, phases, registry_dir):
    """Publish the base model, serve the phases, drain the controller
    after each, and narrate every journaled decision."""
    registry = ModelRegistry(registry_dir)
    registry.publish("zs", base, dbs=list(dbs.values()), default=True)
    server = PredictorServer(
        registry, dbs, ServerConfig(max_batch_size=8, max_delay_ms=1.0,
                                    result_cache_size=0)).start()
    controller = ContinuousLearningController(registry, server, CONFIG)

    def truth_for(handle):
        return float(simulate_runtime_ms_batch(
            dbs[handle.db_name], [handle.plan], seed=CONFIG.truth_seed)[0])

    try:
        for name, requests in phases:
            seen = len(controller.journal)
            report = run_load(server, requests, LOAD)
            # ``drain()`` runs controller ticks synchronously until the
            # observation tap is empty; ``controller.start()`` (or
            # ``with controller:``) does the same in a supervised
            # background thread.
            controller.drain()
            q = report.compute_q_error_phases(
                truth_for, {name: (0, len(requests))})[name]
            print(f"  phase {name!r}: {len(requests)} requests, "
                  f"median Q-error {q['median']:.2f} (p95 {q['p95']:.2f}), "
                  f"serving v{registry.active('zs').version}")
            for event in controller.journal.events()[seen:]:
                detail = ", ".join(
                    f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in event.detail)
                print(f"    [tick {event.tick}] {event.kind}: {detail}")
    finally:
        server.stop()
    return registry, controller


def main():
    dbs, trace_a, trace_b, trace_c, base = build_world()
    before = [("ctl_db", r.plan) for r in trace_a[:24]]
    drift = [("drift_db", r.plan) for r in trace_b[:48]]
    recovery = [("drift_db", r.plan) for r in trace_b[48:80]]
    steady = [("drift_db", r.plan) for r in trace_b[80:120]]
    heavy = [("heavy_db", r.plan) for r in trace_c]

    with tempfile.TemporaryDirectory() as tmp:
        print("\nAct 1 — drift, auto-retrain, promote, graduate:")
        registry, controller = drive(
            dbs, base,
            [("in-distribution", before), ("drift hits", drift),
             ("recovery", recovery), ("steady state", steady)],
            f"{tmp}/act1")
        assert [e.kind for e in controller.journal.events()] == [
            "drift-detected", "candidate-published", "promoted",
            "probation-passed"]
        print(f"  => fine-tuned v{registry.active('zs').version} serves; "
              "the drift-phase Q-error is gone")

        print("\nAct 2 — regression during probation, auto-rollback:")
        registry, controller = drive(
            dbs, base,
            [("in-distribution", before), ("drift hits", drift),
             ("recovery", recovery), ("regression", heavy)],
            f"{tmp}/act2")
        assert controller.journal.events()[-1].kind == "rolled-back"
        print(f"  => the probation guard restored "
              f"v{registry.active('zs').version}; the bad candidate never "
              "became load-bearing")

    counters = {name: value for name, value in perfstats.snapshot().items()
                if name.startswith("controller.")}
    print(f"\nController counters: {counters}")


if __name__ == "__main__":
    main()
