"""Observability quickstart: spans, latency attribution and SLO burn.

The tracing plane end to end:

1. train a small zero-shot cost model and publish it to a registry,
2. start a :class:`~repro.serving.PredictorFleet` with **tracing on** and
   an aggressive hedging policy, fire a skewed load (one hot database,
   one cold) that includes a LOW-priority burst against a shallow queue,
3. print the per-stage latency attribution table — which share of each
   request's end-to-end time went to queueing, the pipe, worker-side
   featurization/inference, delivery — and the SLO burn report,
4. export the spans as JSONL and as a Chrome trace-event timeline:
   open the ``*_trace.json`` file at https://ui.perfetto.dev and look for
   the ``hedge.sent`` / ``hedge.won`` annotations (two workers racing the
   same request) and for ``brownout`` requests answered by the analytical
   fallback instead of waiting behind the full queue.

Tracing is passive — every served value in this script is bit-identical
to what an untraced run would deliver.  Run with::

    python examples/observability_quickstart.py
"""

import tempfile
import zlib
from pathlib import Path

from repro.core import TrainingConfig, ZeroShotCostModel
from repro.datagen import make_benchmark_databases
from repro.obs import latency_attribution, slo_report
from repro.obs.export import (format_attribution, write_chrome_trace,
                              write_spans_jsonl)
from repro.serving import (LoadConfig, ModelRegistry, PredictorFleet,
                           RequestPriority, ServerConfig, run_load,
                           skewed_requests)
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


def main():
    names = ["accidents", "airline", "imdb"]
    print(f"Generating {len(names)} benchmark databases ...")
    dbs = make_benchmark_databases(base_rows=900, subset=names)
    traces = []
    for name in names:
        if name == "imdb":
            continue  # imdb stays unseen: the zero-shot setting
        generator = WorkloadGenerator(dbs[name], WorkloadConfig(max_joins=3),
                                      seed=zlib.crc32(name.encode()) % 1000)
        traces.append(generate_trace(dbs[name], generator.generate(50)))

    print("Training the zero-shot cost model ...")
    model = ZeroShotCostModel.train(
        traces, dbs, cards="exact",
        config=TrainingConfig(hidden_dim=32, epochs=12, seed=0))

    with tempfile.TemporaryDirectory() as registry_dir:
        registry = ModelRegistry(registry_dir)
        registry.publish("zero-shot", model,
                         dbs=[dbs[n] for n in names if n != "imdb"],
                         default=True)

        # A skewed mix (hot imdb / cold accidents) plus a LOW-priority
        # burst.  The queue is shallow on purpose: LOW traffic over its
        # brownout bound is answered by the analytical fallback instead
        # of queueing — visible in the timeline as ``brownout`` spans.
        pools = {}
        for name, share in (("imdb", 0.8), ("accidents", 0.2)):
            generator = WorkloadGenerator(dbs[name],
                                          WorkloadConfig(max_joins=3),
                                          seed=99)
            records = generate_trace(dbs[name], generator.generate(40))
            pools[name] = [(name, record.plan) for record in records]
        mix = skewed_requests(pools, {"imdb": 0.8, "accidents": 0.2},
                              n=240, seed=7)

        config = ServerConfig(trace=True, result_cache_size=0,
                              max_batch_size=16, max_delay_ms=1.0,
                              queue_depth=24, brownout_degraded=True)
        print(f"\nServing {len(mix)} traced requests "
              "(2 workers, hedging after 25 ms, shallow queue) ...")
        with PredictorFleet(registry, dbs, config, n_workers=2,
                            spill_threshold=8,
                            hedge_after_ms=25.0) as fleet:
            report = run_load(fleet, mix,
                              LoadConfig(n_clients=6, block=True,
                                         seed=7, trace=True))

            # A deliberate overload burst on top: fill the queue with
            # non-blocking NORMAL traffic, then fire a LOW burst — over
            # its brownout bound, LOW is answered *immediately* by the
            # analytical fallback (flagged DEGRADED) instead of queueing.
            backlog = [fleet.submit(plan, db, block=False)
                       for db, plan in mix[:24]]
            burst = [fleet.submit(plan, db, block=False,
                                  priority=RequestPriority.LOW)
                     for db, plan in mix[24:44]]
            for handle in backlog + burst:
                handle.wait(60)
            stats = fleet.stats()
            spans = report.spans + fleet.tracer.drain()

        # 3. Attribution: which stage owns the latency, per percentile
        #    (from the healthy phase — the burst is in the timeline).
        print("\nPer-stage latency attribution (fleet-wide):")
        print(format_attribution(report.latency_attribution))
        hedge_won = sum(1 for s in spans if "hedge.won" in s.annotations)
        hedge_sent = sum(1 for s in spans if "hedge.sent" in s.annotations)
        brownouts = sum(1 for s in spans if "brownout" in s.annotations)
        print(f"\nhedges sent: {hedge_sent}  won: {hedge_won}  "
              f"brownouts: {brownouts}  sheds: {stats['shed']}")

        # SLO burn against the chaos benches' availability floor.
        slo = slo_report(delivered=(report.completed + report.cached
                                    + report.degraded),
                         submitted=report.n_requests,
                         availability_floor=0.99,
                         latency_p95_ms=report.latency_ms["p95"],
                         latency_p95_floor_ms=250.0)
        print(f"availability {slo['availability']:.4f} "
              f"(burn {slo['availability_burn']:.2f}x of budget), "
              f"p95 {slo.get('latency_p95_ms', 0.0):.1f} ms "
              f"-> SLO {'met' if slo['met'] else 'VIOLATED'}")

        # 4. Artifacts: raw spans + a Perfetto-loadable timeline.
        out = Path("observability_quickstart_spans.jsonl")
        timeline = Path("observability_quickstart_trace.json")
        write_spans_jsonl(spans, out)
        write_chrome_trace(spans, timeline)
        print(f"\nWrote {len(spans)} spans to {out}")
        print(f"Wrote timeline to {timeline} — open at "
              "https://ui.perfetto.dev and look for hedge.won / brownout "
              "annotations")


if __name__ == "__main__":
    main()
