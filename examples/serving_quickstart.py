"""Serving quickstart: publish a zero-shot model and serve an unseen database.

The full online story in one script:

1. generate a handful of benchmark databases and train a zero-shot cost
   model on all of them *except* one,
2. publish the trained model to a :class:`~repro.serving.ModelRegistry`
   (versioned, content-addressed, promotable),
3. start the micro-batching :class:`~repro.serving.PredictorServer`,
4. fire seeded open-loop concurrent clients at the held-out (unseen)
   database and print throughput and latency percentiles — cost
   predictions out of the box, served online.

Run with::

    python examples/serving_quickstart.py
"""

import tempfile
import zlib

from repro.bench import format_table
from repro.core import TrainingConfig, ZeroShotCostModel
from repro.datagen import make_benchmark_databases
from repro.serving import (LoadConfig, ModelRegistry, PredictorServer,
                           ServerConfig, run_load)
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


def main():
    # 1. Databases and training traces (IMDB stays unseen).
    names = ["accidents", "airline", "baseball", "financial", "imdb"]
    print(f"Generating {len(names)} benchmark databases ...")
    dbs = make_benchmark_databases(base_rows=1500, subset=names)
    traces = []
    for name in names:
        if name == "imdb":
            continue
        # crc32, not hash(): string hashing is randomized per process.
        generator = WorkloadGenerator(dbs[name], WorkloadConfig(max_joins=3),
                                      seed=zlib.crc32(name.encode()) % 1000)
        traces.append(generate_trace(dbs[name], generator.generate(80)))

    print("Training the zero-shot cost model ...")
    config = TrainingConfig(hidden_dim=32, epochs=20, seed=0)
    model = ZeroShotCostModel.train(traces, dbs, cards="exact", config=config)

    # 2. Publish: compatible with the training databases, and the default
    #    (fallback) model for everything else — that is the zero-shot case.
    with tempfile.TemporaryDirectory() as registry_dir:
        registry = ModelRegistry(registry_dir)
        deployment = registry.publish(
            "zero-shot", model,
            dbs=[dbs[n] for n in names if n != "imdb"], default=True)
        print(f"Published {deployment.name} v{deployment.version} "
              f"(checkpoint {deployment.checkpoint_key[:12]}..., "
              f"{len(deployment.db_digests)} routed databases)")

        # 3. An online workload against the UNSEEN imdb database.
        generator = WorkloadGenerator(dbs["imdb"], WorkloadConfig(max_joins=3),
                                      seed=99)
        unseen = generate_trace(dbs["imdb"], generator.generate(120))
        requests = [("imdb", record.plan) for record in unseen]

        # 4. Serve it: micro-batching predictor + open-loop load.
        server_config = ServerConfig(max_batch_size=32, max_delay_ms=2.0)
        print(f"\nServing {len(requests)} requests from 4 concurrent "
              "clients (open loop, ~2000 req/s offered) ...")
        with PredictorServer(registry, dbs, server_config) as server:
            report = run_load(server, requests,
                              LoadConfig(n_clients=4, rate_per_s=2000,
                                         seed=7))
            # Repeat traffic is answered from the result cache.
            repeat = run_load(server, requests[:40],
                              LoadConfig(n_clients=4, rate_per_s=2000,
                                         seed=8))

        latency = report.latency_ms
        print("\nOnline serving on the UNSEEN imdb database:")
        print(format_table([{
            "throughput (req/s)": report.throughput_rps,
            "p50 (ms)": latency["p50"],
            "p95 (ms)": latency["p95"],
            "p99 (ms)": latency["p99"],
            "mean batch": report.mean_batch_size,
            "shed": report.shed,
        }]))
        print(f"Batch-size histogram: {report.batch_size_hist}")
        print(f"Repeat traffic: {repeat.cached}/{repeat.n_requests} answered "
              "from the result cache")


if __name__ == "__main__":
    main()
