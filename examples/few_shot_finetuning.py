"""Few-shot fine-tuning and drift detection (Sections 2.2 and 4.2).

Scenario: a pre-trained zero-shot model serves an unseen database.  The
production workload drifts (much larger joins than anything in training).
A :class:`~repro.robustness.DriftDetector` monitors the observed Q-errors,
flags the drift, and the model is fine-tuned with the few queries observed
since — the paper's few-shot mode.

Run with::

    python examples/few_shot_finetuning.py
"""

from repro.bench import format_table
from repro.core import TrainingConfig, ZeroShotCostModel
from repro.datagen import make_benchmark_databases
from repro.robustness import DriftDetector
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


def main():
    names = ["baseball", "consumer", "financial", "seznam", "imdb"]
    print("Generating databases ...")
    dbs = make_benchmark_databases(base_rows=2000, subset=names)

    # Pre-train on small joins only (0-1 joins) on the non-IMDB databases.
    print("Pre-training the zero-shot model on SMALL joins ...")
    traces = []
    for name in names[:-1]:
        generator = WorkloadGenerator(
            dbs[name], WorkloadConfig(min_joins=0, max_joins=1),
            seed=hash(name) % 500)
        traces.append(generate_trace(dbs[name], generator.generate(100)))
    model = ZeroShotCostModel.train(
        traces, dbs, cards="exact",
        config=TrainingConfig(hidden_dim=48, epochs=30, seed=1))

    # The production workload on IMDB drifts to larger joins (3+).
    drifted_gen = WorkloadGenerator(
        dbs["imdb"], WorkloadConfig(min_joins=3, max_joins=5), seed=7)
    drifted_trace = generate_trace(dbs["imdb"], drifted_gen.generate(80))
    observe, evaluate = drifted_trace.split(0.5, seed=0)

    # Monitor the live error with the drift detector.
    detector = DriftDetector(threshold=1.4, window=40, min_observations=10)
    detector.monitor(model, observe, dbs, cards="exact")
    print(f"\nRolling median q-error under drift: {detector.rolling_median:.2f}")
    print(f"Drift detected: {detector.drifted}")

    before = model.evaluate(evaluate, dbs, cards="exact")

    # Few-shot repair: fine-tune with the queries the detector collected.
    rows = [{"model": "zero-shot (drifted workload)",
             "median q-error": before["median"], "p95": before["p95"]}]
    if detector.drifted:
        print(f"Fine-tuning with {len(detector.fine_tuning_records())} "
              "observed queries (few-shot mode) ...")
        few_shot = model.fine_tune(detector.fine_tuning_records(), dbs,
                                   cards="exact", epochs=20)
        after = few_shot.evaluate(evaluate, dbs, cards="exact")
        rows.append({"model": "few-shot (fine-tuned)",
                     "median q-error": after["median"], "p95": after["p95"]})

    print()
    print(format_table(rows))


if __name__ == "__main__":
    main()
