"""Zero-shot cost estimation for a distributed cloud DW (Section 5.1).

Queries run on a simulated shared-nothing columnar warehouse: scans read
only the referenced columns, joins ship their build sides with Broadcast or
Repartition shuffles, and the coordinator gathers results.  The zero-shot
encoding is extended with those operator nodes and a storage-format feature,
and the model transfers to an unseen database exactly as in the single-node
case (Table 3 of the paper).

Run with::

    python examples/distributed_warehouse.py
"""

import numpy as np

from repro.baselines import ScaledOptimizerModel
from repro.bench import format_table
from repro.core import TrainingConfig, ZeroShotCostModel, featurize_records
from repro.datagen import make_benchmark_databases
from repro.distributed import (ClusterConfig, distributed_storage_formats,
                               generate_distributed_trace)
from repro.workloads import WorkloadConfig, WorkloadGenerator


def main():
    cluster = ClusterConfig(n_nodes=8)
    names = ["airline", "credit", "genome", "walmart", "imdb"]
    print(f"Generating databases; cluster has {cluster.n_nodes} nodes ...")
    dbs = make_benchmark_databases(base_rows=2500, subset=names)

    print("Executing distributed training workloads ...")
    traces, formats = [], {}
    for name in names[:-1]:
        generator = WorkloadGenerator(dbs[name], WorkloadConfig(max_joins=3),
                                      seed=hash(name) % 500)
        traces.append(generate_distributed_trace(
            dbs[name], generator.generate(100), cluster))
        formats.update(distributed_storage_formats(dbs[name]))

    print("Training the zero-shot model (with shuffle/columnar nodes) ...")
    records = [r for t in traces for r in t]
    graphs = featurize_records(records, dbs, cards="exact",
                               storage_formats=formats)
    model = ZeroShotCostModel.train(
        traces, dbs, config=TrainingConfig(hidden_dim=48, epochs=30, seed=3),
        graphs=graphs, runtimes=np.array([r.runtime_ms for r in records]))
    cloud_optimizer = ScaledOptimizerModel().fit(traces)

    # Evaluate on the unseen database.
    target = dbs["imdb"]
    queries = WorkloadGenerator(target, WorkloadConfig(max_joins=3),
                                seed=23).generate(60)
    trace = generate_distributed_trace(target, queries, cluster)
    eval_graphs = featurize_records(
        list(trace), dbs, cards="exact",
        storage_formats=distributed_storage_formats(target))
    zs = model.evaluate(trace, dbs, cards="exact", graphs=eval_graphs)
    opt = cloud_optimizer.evaluate(trace)

    print()
    print(format_table([
        {"model": "cloud DW optimizer (scaled)", "median q-error": opt["median"],
         "p95": opt["p95"]},
        {"model": "zero-shot (unseen database)", "median q-error": zs["median"],
         "p95": zs["p95"]},
    ], title="Distributed cost estimation on the unseen imdb database"))

    record = trace[0]
    print(f"\nExample distributed plan for: {record.query.describe()}")
    print(record.plan.explain(use_true=True))


if __name__ == "__main__":
    main()
