"""Figure 8: robustness w.r.t. database updates (IMDB grown to 100–800%).

Paper: zero-shot models show almost no degradation because their data-driven
inputs can be refreshed without queries; workload-driven models degrade
since they internalize stale data characteristics.
"""

from repro.bench import exp_fig8_updates


def test_fig8_updates(artifacts, run_once):
    rows = run_once(exp_fig8_updates, artifacts)
    sizes = [row["size_pct"] for row in rows]
    assert sizes == [100, 200, 400, 800]

    base, largest = rows[0], rows[-1]

    # Zero-shot: bounded regression even at 800% (paper: "almost no
    # performance degradation"; our training databases cover a narrower size
    # range than the paper's, so extrapolating to 8x pays a modest penalty).
    assert largest["zero_shot_deepdb"] <= base["zero_shot_deepdb"] * 3.5

    # Workload-driven models degrade with updates.
    e2e_degradation = largest["e2e"] / base["e2e"]
    zs_degradation = largest["zero_shot_deepdb"] / base["zero_shot_deepdb"]
    assert e2e_degradation > zs_degradation

    # After heavy updates zero-shot clearly beats the stale models.
    assert largest["zero_shot_deepdb"] < largest["e2e"]
    assert largest["zero_shot_deepdb"] < largest["mscn"]
