"""Figure 7: the complex JOB-Full workload on IMDB.

Paper: data-driven cardinality models do not support complex predicates, so
zero-shot falls back to optimizer estimates — and still beats E2E and the
scaled optimizer costs; few-shot further improves accuracy.
"""

import numpy as np

from repro.bench import exp_fig7_job_full


def test_fig7_job_full(artifacts, run_once):
    rows = run_once(exp_fig7_job_full, artifacts)
    assert len(rows) >= 2

    first, last = rows[0], rows[-1]

    # Zero-shot with optimizer-estimated cardinalities beats early E2E.
    assert first["zero_shot_est_cards"] < first["e2e"]

    # Zero-shot is robust w.r.t. imprecise cardinalities: est vs exact gap
    # stays moderate on the complex workload.
    assert last["zero_shot_est_cards"] <= last["zero_shot_exact"] * 2.0

    # Few-shot improves (or at least does not regress) over zero-shot.
    assert last["few_shot_est_cards"] <= first["zero_shot_est_cards"] * 1.15

    # E2E improves with more complex training queries.
    assert last["e2e"] <= first["e2e"] * 1.05
    assert all(np.isfinite(r["scaled_optimizer"]) for r in rows)
