"""Figure 9: generalization to larger joins (workload drift).

Paper: a model trained only on small joins degrades just mildly on larger
unseen joins (vs the model trained on all join sizes), and fine-tuning with
~50 larger-join queries recovers the gap; more queries outperform the
original model.
"""

import numpy as np

from repro.bench import exp_fig9_join_drift


def test_fig9_join_drift(artifacts, run_once):
    panels = run_once(exp_fig9_join_drift, artifacts)
    assert len(panels) == 2

    for panel in panels:
        assert panel["eval_queries"] > 0
        # Drifted model degrades only moderately vs the full model.
        assert panel["small_joins"] <= panel["full"] * 3.0

        few_shot_cols = [k for k in panel if k.startswith("few_shot_")]
        best_few_shot = min(panel[k] for k in few_shot_cols
                            if np.isfinite(panel[k]))
        if panel["small_joins"] > panel["full"] * 1.05:
            # Genuine drift: few-shot with larger joins closes most of the
            # gap (paper: ~50 queries reach the Full model's error).
            assert best_few_shot <= panel["small_joins"] * 1.1
        else:
            # No drift to repair: fine-tuning on a handful of queries must
            # at least not catastrophically regress.
            assert best_few_shot <= panel["small_joins"] * 1.6
