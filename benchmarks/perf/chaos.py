"""Entry point: run the seeded chaos benchmark and write ``BENCH_chaos.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/chaos.py           # full corpus
    PYTHONPATH=src python benchmarks/perf/chaos.py --quick   # CI smoke

Drives the predictor server through :func:`harness.bench_chaos`: a
deterministic :class:`~repro.robustness.faults.FaultSchedule` raises
transient featurization/inference faults, delays inference and crashes the
batcher mid-load, while every delivered prediction is audited against a
direct ``predict_runtimes`` call.  The run **fails** (non-zero exit) when

* availability (delivered / submitted) drops below ``--min-availability``
  (default 0.99), or
* any ``DONE`` response differs bit-for-bit from the direct prediction
  (``wrong_values`` must be zero), or
* no faults actually fired (a silently empty schedule would make the run
  vacuous).

so CI exercises the retry/bisection/supervision/degradation paths on every
push instead of trusting them to unit tests alone.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(HERE))

DEFAULT_OUTPUT = REPO / "BENCH_chaos.json"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--spans-jsonl", type=Path,
                        default=REPO / "BENCH_chaos_spans.jsonl")
    parser.add_argument("--perfetto", type=Path,
                        default=REPO / "BENCH_chaos_trace.json")
    parser.add_argument("--no-trace", action="store_true",
                        help="skip span recording and trace artifacts")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus + fewer rounds for a fast signal")
    parser.add_argument("--seed", type=int, default=0,
                        help="corpus/load seed")
    parser.add_argument("--fault-seed", type=int, default=1,
                        help="fault-schedule seed (same seed -> same faults)")
    parser.add_argument("--min-availability", type=float, default=0.99)
    args = parser.parse_args(argv)

    from harness import bench_chaos, build_plan_corpus

    from repro.obs.export import write_chrome_trace, write_spans_jsonl

    n_queries = 64 if args.quick else 192
    rounds = 2 if args.quick else 4
    db, records = build_plan_corpus(n_queries=n_queries, seed=args.seed)
    results = bench_chaos(db, records, rounds=rounds, seed=args.seed,
                          fault_seed=args.fault_seed,
                          trace=not args.no_trace)

    spans = results.pop("spans")
    if spans:
        write_spans_jsonl(spans, args.spans_jsonl)
        write_chrome_trace(spans, args.perfetto)
        print(f"trace artifacts: {args.spans_jsonl} / {args.perfetto} "
              f"({len(spans)} spans)")
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"chaos report written to {args.output}")
    print(f"  requests:      {results['n_requests']}")
    print(f"  availability:  {results['availability']:.4f} "
          f"(floor {args.min_availability})")
    print(f"  wrong values:  {results['wrong_values']} (must be 0)")
    print(f"  degraded:      {results['degraded']} (flagged fallbacks)")
    print(f"  failed/shed:   {results['failed']}/{results['shed']}")
    print(f"  batcher crashes: {results['batcher_crashes']} "
          f"(re-enqueued {results['requeued']})")
    print(f"  retries/bisects: {results['retries']}/{results['bisects']}")
    if results["latency_ms"]:
        lat = results["latency_ms"]
        print(f"  latency under faults: p50 {lat['p50']:.2f} ms, "
              f"p95 {lat['p95']:.2f} ms, p99 {lat['p99']:.2f} ms")
    print(f"  faults fired: {results['fault_stats']}")

    failures = []
    if results["wrong_values"]:
        failures.append(f"{results['wrong_values']} wrong values delivered")
    if results["availability"] < args.min_availability:
        failures.append(f"availability {results['availability']:.4f} below "
                        f"{args.min_availability}")
    total_faults = sum(point.get("faults", 0)
                       for point in results["fault_stats"].values())
    if total_faults == 0:
        failures.append("no faults fired — chaos run was vacuous")
    # The schedule pins a batcher crash and an inference retry storm, so a
    # run that did not exercise supervision or backoff is a failure too.
    if not results["batcher_crashes"]:
        failures.append("pinned batcher crash did not fire")
    if not results["retries"]:
        failures.append("pinned inference faults forced no retries")
    if failures:
        print("CHAOS FAILURE: " + "; ".join(failures))
        return 1
    print("chaos run passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
