"""Entry point: run the fleet liveness-chaos benchmark, write
``BENCH_fleet_chaos.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/fleet_chaos.py          # full
    PYTHONPATH=src python benchmarks/perf/fleet_chaos.py --quick  # CI smoke

Drives :func:`harness.bench_fleet_chaos`: one published model, every
delivered value audited against a direct ``predict_runtimes`` oracle, and
two hostile phases —

* **liveness chaos**: a worker hangs forever mid-run (gray failure),
  another is SIGKILLed outright, and a deterministic schedule drops
  pinned messages on both pipe directions; hedged requests, hang
  detection and restart-with-re-send must recover every request;
* **overload**: 2x-saturation open-loop load with a seeded
  HIGH/NORMAL/LOW priority mix against a bounded queue with a HIGH
  reserve and LOW brownout; HIGH availability must stay >= 0.99 while
  shedding concentrates on the low classes.

The run **fails** (non-zero exit) on any wrong value, any lost or
duplicated request, chaos availability < 0.99, missing hang/hedge/restart
counter activity, HIGH availability < 0.99 under overload, or shedding
that does not concentrate on low priority.  The failure list is embedded
in the JSON report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(HERE))

DEFAULT_OUTPUT = REPO / "BENCH_fleet_chaos.json"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--spans-jsonl", type=Path,
                        default=REPO / "BENCH_fleet_chaos_spans.jsonl")
    parser.add_argument("--perfetto", type=Path,
                        default=REPO / "BENCH_fleet_chaos_trace.json")
    parser.add_argument("--no-trace", action="store_true",
                        help="skip span recording and trace artifacts")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus for CI smoke")
    parser.add_argument("--seed", type=int, default=0, help="corpus/load seed")
    parser.add_argument("--fault-seed", type=int, default=1,
                        help="fault schedule seed")
    args = parser.parse_args(argv)

    from harness import bench_fleet_chaos, build_plan_corpus

    from repro.obs.export import write_chrome_trace, write_spans_jsonl

    n_queries, rounds = (64, 2) if args.quick else (160, 2)
    db, records = build_plan_corpus(n_queries=n_queries, seed=args.seed)
    results = bench_fleet_chaos(db, records, rounds=rounds, seed=args.seed,
                                fault_seed=args.fault_seed,
                                trace=not args.no_trace)
    results["n_queries"] = n_queries

    spans = results["chaos"].pop("spans")
    if spans:
        write_spans_jsonl(spans, args.spans_jsonl)
        write_chrome_trace(spans, args.perfetto)
        print(f"trace artifacts: {args.spans_jsonl} / {args.perfetto} "
              f"({len(spans)} spans)")
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"fleet chaos report written to {args.output}")
    chaos, overload = results["chaos"], results["overload"]
    print(f"  chaos: availability {chaos['availability']:.4f}, "
          f"hangs {chaos['hangs']}, hedges {chaos['hedges']} "
          f"(wins {chaos['hedge_wins']}), "
          f"restarts {chaos['worker_restarts']}, "
          f"requeued {chaos['requeued']}")
    print(f"  overload: capacity {overload['capacity_rps']:.1f} plans/s, "
          f"offered {overload['offered_rps']:.1f}, "
          f"HIGH availability {overload['high_availability']:.4f}")
    for name, summary in sorted(overload["by_priority"].items()):
        print(f"    {name:>6}: {summary['requests']} requests, "
              f"{summary['delivered']} delivered, {summary['shed']} shed, "
              f"{summary['degraded']} degraded "
              f"(availability {summary['availability']:.4f})")
    if results["failures"]:
        for failure in results["failures"]:
            print(f"FLEET CHAOS FAILURE: {failure}")
        return 1
    print("fleet chaos run passed (0 wrong values, 0 lost, 0 duplicated)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
