"""Entry point: run the continuous-learning controller benchmark and write
``BENCH_controller.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/controller.py           # full run
    PYTHONPATH=src python benchmarks/perf/controller.py --quick   # CI smoke

Drives the calibrated drift scenario through
:func:`harness.bench_controller`: the base model serves in-distribution
traffic, the workload shifts to a database it has never seen, and the
controller must close the full observe -> detect -> retrain ->
shadow-evaluate -> promote loop.  The run **fails** (non-zero exit) when

* any promotion is rolled back on the happy path (``wrong_promotions``
  must be zero — the gate let a bad candidate through), or
* the replayed scenario is not bit-identical to the first run (the
  control plane is supposed to be deterministic), or
* the regression run does *not* auto-roll-back inside the probation
  window (the guard slept through a real regression), or
* availability while the daemon-mode controller fine-tunes in the
  background drops below ``--min-availability`` (default 0.99), or
* the happy path takes more than ``--max-recover-ticks`` control ticks
  from detection to promotion,

so CI exercises the whole retrain/promote/rollback control plane on every
push instead of trusting it to unit tests alone.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(HERE))

DEFAULT_OUTPUT = REPO / "BENCH_controller.json"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--spans-jsonl", type=Path,
                        default=REPO / "BENCH_controller_spans.jsonl")
    parser.add_argument("--perfetto", type=Path,
                        default=REPO / "BENCH_controller_trace.json")
    parser.add_argument("--no-trace", action="store_true",
                        help="skip span recording and trace artifacts")
    parser.add_argument("--quick", action="store_true",
                        help="bound the daemon graduation pump (the drift "
                             "scenario itself is calibration-pinned and "
                             "identical to the full run)")
    parser.add_argument("--min-availability", type=float, default=0.99)
    parser.add_argument("--max-recover-ticks", type=int, default=8,
                        help="ceiling on promote_tick - detect_tick")
    args = parser.parse_args(argv)

    from harness import bench_controller

    from repro.obs.export import write_chrome_trace, write_spans_jsonl

    results = bench_controller(quick=args.quick, trace=not args.no_trace)

    spans = results.pop("spans")
    if spans:
        write_spans_jsonl(spans, args.spans_jsonl)
        write_chrome_trace(spans, args.perfetto)
        print(f"trace artifacts: {args.spans_jsonl} / {args.perfetto} "
              f"({len(spans)} spans)")
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    regression = results["regression"]
    print(f"controller report written to {args.output}")
    print(f"  detect/promote/graduate ticks: {results['detect_tick']}/"
          f"{results['promote_tick']}/{results['graduate_tick']}")
    print(f"  ticks to recover: {results['ticks_to_recover']} "
          f"(ceiling {args.max_recover_ticks})")
    print(f"  wrong promotions: {results['wrong_promotions']} (must be 0)")
    print(f"  replay identical: {results['replay_identical']}")
    print(f"  regression rolled back: {regression['rolled_back']} "
          f"(restored v{regression['restored_version']}, "
          f"seen {regression['probation_seen']} in probation)")
    print(f"  availability during retrain: "
          f"{results['availability_during_retrain']:.4f} "
          f"(floor {args.min_availability}, "
          f"{results['daemon']['delivered']}/"
          f"{results['daemon']['submitted']} delivered)")
    for name, phase in results["q_error_by_phase"].items():
        print(f"  q-error[{name}]: median {phase['median']:.2f}, "
              f"p95 {phase['p95']:.2f} ({phase['count']} queries)")

    failures = []
    if results["wrong_promotions"]:
        failures.append(f"{results['wrong_promotions']} promotions were "
                        f"rolled back on the happy path")
    if not results["replay_identical"]:
        failures.append("replayed scenario diverged from the first run")
    if not regression["rolled_back"]:
        failures.append("regression run did not roll back")
    elif not regression["within_probation"]:
        failures.append("rollback fired only after probation graduated")
    if results["availability_during_retrain"] < args.min_availability:
        failures.append(
            f"availability {results['availability_during_retrain']:.4f} "
            f"below {args.min_availability} during background retrain")
    if results["daemon"]["crashes"]:
        failures.append(f"daemon crashed {results['daemon']['crashes']} "
                        f"times with no faults injected")
    if not results["daemon"]["graduated"]:
        failures.append("daemon-mode run never graduated probation")
    if results["ticks_to_recover"] > args.max_recover_ticks:
        failures.append(f"recovery took {results['ticks_to_recover']} ticks "
                        f"(> {args.max_recover_ticks})")
    if spans:
        drift = [e for e in results["events"]
                 if e["kind"] == "drift-detected"]
        if drift and not any(e["detail"].get("trace_id") for e in drift):
            failures.append("traced run produced drift-detected events "
                            "with no trace_id attribution")
    if failures:
        print("CONTROLLER FAILURE: " + "; ".join(failures))
        return 1
    print("controller run passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
