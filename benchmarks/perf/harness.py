"""Engine microbenchmark harness: batch construction, train step, inference.

All benchmarks use only the public API (``make_batch``, ``ZeroShotModel``,
``predict_runtimes``), so the same harness runs against any engine revision;
throughput is reported as plans/second (best of ``repeats`` timed passes, so
one GC pause cannot sink a number).
"""

from __future__ import annotations

import inspect
import time

import numpy as np

from repro.core import TrainingConfig, featurize_records
from repro.core.model import ZeroShotModel
from repro.core.training import predict_runtimes
from repro.featurization import FeatureScalers, TargetScaler, make_batch
from repro.nn import Adam, QErrorLoss, clip_grad_norm

__all__ = ["build_corpus", "bench_batch_construction", "bench_training_step",
           "bench_inference", "run_all"]


def build_corpus(n_queries=192, seed=0, max_joins=3):
    """A deterministic workload of featurized graphs + runtimes for timing."""
    from repro.datagen import generate_database, random_database_spec
    from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace

    spec = random_database_spec("perfdb", seed=seed, layout="snowflake",
                                base_rows=1200, n_tables=5, complexity=0.7)
    db = generate_database(spec)
    queries = WorkloadGenerator(db, WorkloadConfig(max_joins=max_joins),
                                seed=seed).generate(n_queries)
    trace = generate_trace(db, queries, seed=seed)
    records = list(trace)
    graphs = featurize_records(records, {db.name: db}, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records])
    return graphs, runtimes


def _best_rate(n_plans, timings):
    return n_plans / min(timings)


def bench_batch_construction(graphs, batch_size=64, repeats=5, scalers=None):
    """Plans/second through ``make_batch`` (fresh batches every pass)."""
    if scalers is None:
        scalers = FeatureScalers().fit(graphs)
    chunks = [graphs[i:i + batch_size]
              for i in range(0, len(graphs), batch_size)]
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        for chunk in chunks:
            make_batch(chunk, scalers)
        timings.append(time.perf_counter() - start)
    return _best_rate(len(graphs), timings)


def bench_training_step(graphs, runtimes, hidden_dim=64, batch_size=64,
                        epochs=3, repeats=3, seed=0):
    """Plans/second through forward + backward + clip + Adam step."""
    config = TrainingConfig(hidden_dim=hidden_dim, batch_size=batch_size)
    scalers = FeatureScalers().fit(graphs)
    target = TargetScaler().fit(runtimes)
    log_targets = np.log(np.maximum(runtimes, 1e-3))
    batches = [(make_batch(graphs[i:i + batch_size], scalers),
                log_targets[i:i + batch_size])
               for i in range(0, len(graphs), batch_size)]
    loss_fn = QErrorLoss()
    timings = []
    for _ in range(repeats):
        model = ZeroShotModel(hidden_dim=hidden_dim, dropout=0.05, seed=seed)
        if hasattr(model, "to"):
            model.to(getattr(config, "dtype", "float64"))
        model.train()
        optimizer = Adam(model.parameters(), lr=1.5e-3)
        start = time.perf_counter()
        for _ in range(epochs):
            for batch, target_log in batches:
                optimizer.zero_grad()
                pred_log = model(batch) * target.std + target.mean
                loss = loss_fn(pred_log, target_log)
                loss.backward()
                clip_grad_norm(model.parameters(), 5.0)
                optimizer.step()
        timings.append(time.perf_counter() - start)
    return _best_rate(len(graphs) * epochs, timings)


def bench_inference(graphs, runtimes, hidden_dim=64, batch_size=256,
                    repeats=5, seed=0, use_cache=False):
    """Plans/second through ``predict_runtimes``.

    By default batch memoization is disabled so the number reflects fresh
    (never-seen) graphs — directly comparable to the seed engine, which had
    no cache.  ``use_cache=True`` measures the warm-``BatchCache`` path that
    repeated evaluations (e.g. the benchmark suite) actually pay.
    """
    model = ZeroShotModel(hidden_dim=hidden_dim, seed=seed).eval()
    scalers = FeatureScalers().fit(graphs)
    target = TargetScaler().fit(runtimes)
    kwargs = {}
    # The seed engine's predict_runtimes predates the batch_cache parameter;
    # only pass it where supported so the harness runs on any revision.
    if "batch_cache" in inspect.signature(predict_runtimes).parameters:
        kwargs["batch_cache"] = None if use_cache else False
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        predict_runtimes(model, graphs, scalers, target,
                         batch_size=batch_size, **kwargs)
        timings.append(time.perf_counter() - start)
    return _best_rate(len(graphs), timings)


def run_all(n_queries=192, hidden_dim=64, seed=0):
    """Run the three microbenchmarks; returns {metric: plans_per_s}."""
    graphs, runtimes = build_corpus(n_queries=n_queries, seed=seed)
    return {
        "batch_construction_plans_per_s": bench_batch_construction(graphs),
        "train_step_plans_per_s": bench_training_step(
            graphs, runtimes, hidden_dim=hidden_dim, seed=seed),
        "inference_plans_per_s": bench_inference(
            graphs, runtimes, hidden_dim=hidden_dim, seed=seed),
        "inference_cached_plans_per_s": bench_inference(
            graphs, runtimes, hidden_dim=hidden_dim, seed=seed,
            use_cache=True),
        "n_queries": n_queries,
        "hidden_dim": hidden_dim,
    }
