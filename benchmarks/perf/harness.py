"""Engine microbenchmark harness: corpus generation, trace execution, SPN
learning, runtime simulation, featurization, annotation, batching, training,
inference.

All benchmarks use only the public API of the *current* revision
(``execute_trace``, ``simulate_runtime_ms_batch``, ``learn_spn``,
``featurize_records``, ``annotate_cardinalities``, ``make_batch``,
``ZeroShotModel``, ``predict_runtimes``); historical engines are
represented by the numbers recorded in ``baseline_seed.json``, not by
re-running this module against old checkouts.  Throughput is plans/second
(tables/second for datagen and SPN learning), best of ``repeats`` timed
passes with the cyclic GC paused (timeit's policy), so one collector pause
cannot sink a number.

The pipeline and corpus benchmarks take ``use_reference=True`` to time the
executable loop specifications (``annotate_cardinalities_reference``,
``build_query_graph_reference``, per-plan ``execute_plan`` /
``simulate_runtime_ms``, ``learn_spn_reference``) — that is how ``run.py
--save-loop-baseline`` re-anchors the loop entries of the recorded
baseline, and how ``run_all`` derives the machine-drift-immune same-run
speedups.
"""

from __future__ import annotations

import cProfile
import gc
import inspect
import io
import pstats
import tempfile
import time
from contextlib import contextmanager

import numpy as np

from repro import perfstats
from repro.cardest import (DataDrivenEstimator, annotate_cardinalities,
                           annotate_cardinalities_reference)
from repro.core import TrainingConfig, featurize_records, train_model
from repro.core.model import ZeroShotModel
from repro.core.training import predict_runtimes
from repro.featurization import (FeatureScalers, FeaturizationCache,
                                 TargetScaler, build_query_graph_reference,
                                 make_batch)
from repro.nn import (Adam, Adam_reference, QErrorLoss, clip_grad_norm,
                      clip_grad_norm_reference)

__all__ = ["build_plan_corpus", "build_corpus", "build_exec_corpus",
           "exec_corpus_size", "bench_datagen", "bench_trace_execution",
           "bench_runtime_simulation", "bench_spn_learning",
           "bench_featurization", "bench_annotation",
           "bench_featurization_cached", "bench_batch_construction",
           "bench_training_step", "bench_train_epoch",
           "bench_experiment_warm_start", "bench_inference", "bench_serving",
           "bench_chaos", "bench_fleet", "bench_controller", "bench_obs",
           "run_all", "run_pipeline_reference"]


def build_plan_corpus(n_queries=192, seed=0, max_joins=3, base_rows=1200):
    """A deterministic executed workload (db + records) for timing."""
    from repro.datagen import generate_database, random_database_spec
    from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace

    spec = random_database_spec("perfdb", seed=seed, layout="snowflake",
                                base_rows=base_rows, n_tables=5, complexity=0.7)
    db = generate_database(spec)
    queries = WorkloadGenerator(db, WorkloadConfig(max_joins=max_joins),
                                seed=seed).generate(n_queries)
    trace = generate_trace(db, queries, seed=seed)
    return db, list(trace)


def exec_corpus_size(quick):
    """One authority for the stage-0 execution corpus sizing.

    ``run_all`` and ``run_pipeline_reference`` both resolve through here,
    so --quick runs and loop-baseline recordings always measure matching
    corpus scales (mixing them would make the recorded speedups
    incomparable).
    """
    return (dict(n_queries=64, base_rows=16000) if quick
            else dict(n_queries=128, base_rows=48000))


def build_exec_corpus(n_queries=128, seed=0, max_joins=5, base_rows=48000,
                      n_tables=7):
    """A corpus-scale planned workload (db + plans) for the stage-0 benches.

    Deliberately larger and more join-heavy than :func:`build_plan_corpus`:
    stage-0 cost is dominated by executing traces over the 20 generated
    databases, where per-plan parent re-sorts and repeated predicate scans
    are the work the trace engine shares.  The plans come back *unexecuted*;
    the execution benches annotate them.
    """
    from repro.datagen import generate_database, random_database_spec
    from repro.optimizer import PlannerConfig, plan_query
    from repro.workloads import WorkloadConfig, WorkloadGenerator

    spec = random_database_spec("execdb", seed=seed, layout="snowflake",
                                base_rows=base_rows, n_tables=n_tables,
                                complexity=0.8)
    db = generate_database(spec)
    queries = WorkloadGenerator(db, WorkloadConfig(max_joins=max_joins),
                                seed=seed).generate(n_queries)
    config = PlannerConfig()
    plans = [plan_query(db, query, config=config) for query in queries]
    return db, plans


def build_corpus(n_queries=192, seed=0, max_joins=3):
    """Featurized graphs + runtimes for the model-side benchmarks."""
    db, records = build_plan_corpus(n_queries=n_queries, seed=seed,
                                    max_joins=max_joins)
    graphs = featurize_records(records, {db.name: db}, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records])
    return graphs, runtimes


def _best_rate(n_plans, timings):
    return n_plans / min(timings)


@contextmanager
def _gc_paused():
    """Timed sections run with the cyclic GC off (same policy as timeit),
    so collector pauses don't masquerade as engine time."""
    enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if enabled:
            gc.enable()
            gc.collect()


# ----------------------------------------------------------------------
# Stage 0: corpus engine (datagen, trace execution, SPN learning,
# runtime simulation)
# ----------------------------------------------------------------------
def bench_datagen(base_rows=1200, seed=0, repeats=3):
    """Tables/second through database generation (the corpus' first cost)."""
    from repro.datagen import generate_database, random_database_spec

    spec = random_database_spec("perfdb", seed=seed, layout="snowflake",
                                base_rows=base_rows, n_tables=5,
                                complexity=0.7)
    timings = []
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            db = generate_database(spec)
            timings.append(time.perf_counter() - start)
    return len(db.tables) / min(timings)


def bench_trace_execution(db, plans, repeats=3, use_reference=False):
    """Plans/second through plan execution (true cardinalities).

    Fast path: ``execute_trace`` — one :class:`TraceExecutionContext` per
    pass (cold memos, as a fresh corpus session pays them), shared scan
    row-id sets and per-column join indexes, bit-identical to the
    reference.  Reference: the per-plan ``execute_plan`` loop that re-sorts
    every join's parent keys and re-evaluates every scan predicate.
    """
    from repro.executor import execute_plan, execute_trace

    timings = []
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            if use_reference:
                for plan in plans:
                    execute_plan(db, plan)
            else:
                execute_trace(db, plans)
            timings.append(time.perf_counter() - start)
    return _best_rate(len(plans), timings)


def bench_runtime_simulation(db, plans, repeats=5, use_reference=False):
    """Plans/second through runtime simulation (plans must be executed).

    Fast path: ``simulate_runtime_ms_batch`` — per-node costs assembled
    column-wise per operator group, per-plan seeded noise streams.
    Reference: the per-plan, per-node ``simulate_runtime_ms`` loop.
    """
    from repro.executor import simulate_runtime_ms, simulate_runtime_ms_batch

    timings = []
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            if use_reference:
                for plan in plans:
                    simulate_runtime_ms(db, plan, seed=0)
            else:
                simulate_runtime_ms_batch(db, plans, seed=0)
            timings.append(time.perf_counter() - start)
    return _best_rate(len(plans), timings)


def bench_spn_learning(db, repeats=3, max_rows=4000, use_reference=False):
    """Tables/second through SPN structure learning.

    Fast path: whole-matrix rank transforms, min-label component
    propagation and broadcast 2-means.  Reference: the per-column /
    per-pair loop primitives (``learn_spn_reference``).
    """
    from repro.cardest import spn_input_arrays
    from repro.cardest.spn import learn_spn, learn_spn_reference

    learn = learn_spn_reference if use_reference else learn_spn
    table_arrays = [spn_input_arrays(db.table(table_name))
                    for table_name in db.schema.table_names]
    timings = []
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            for arrays in table_arrays:
                learn(arrays, seed=0, max_rows=max_rows)
            timings.append(time.perf_counter() - start)
    return _best_rate(len(table_arrays), timings)


# ----------------------------------------------------------------------
# Featurization pipeline
# ----------------------------------------------------------------------
def bench_featurization(db, records, repeats=7, use_reference=False):
    """Plans/second through the full featurize pipeline (exact cards).

    Fast path: ``featurize_records`` (vectorized batch builder, fused
    cardinality lookup).  Reference: the per-record loop the seed engine ran
    — annotation dict per plan, per-node feature-vector construction.
    """
    dbs = {db.name: db}
    timings = []
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            if use_reference:
                for record in records:
                    cards = annotate_cardinalities_reference(db, record.plan,
                                                             "exact")
                    build_query_graph_reference(db, record.plan, cards)
            else:
                featurize_records(records, dbs, cards="exact")
            timings.append(time.perf_counter() - start)
    return _best_rate(len(records), timings)


def bench_annotation(db, records, repeats=5, use_reference=False, seed=0,
                     sample_size=1024):
    """Plans/second through DeepDB cardinality annotation.

    The estimator is built once (that is training, not annotation); its
    predicate caches are cleared before every timed pass so each pass pays
    the full per-trace cost.  The reference path runs the original recursive
    visit with per-predicate row scans and the per-row sampling loop.
    """
    estimator = DataDrivenEstimator(db, sample_size=sample_size, seed=seed)
    annotate = (annotate_cardinalities_reference if use_reference
                else annotate_cardinalities)
    timings = []
    with _gc_paused():
        for _ in range(repeats):
            estimator.clear_caches()
            start = time.perf_counter()
            for record in records:
                annotate(db, record.plan, "deepdb", estimator=estimator)
            timings.append(time.perf_counter() - start)
    return _best_rate(len(records), timings)


def bench_featurization_cached(db, records, repeats=7):
    """Warm-``FeaturizationCache`` rate: re-featurizing an already seen
    corpus is fingerprint lookups only.  Returns ``(rate, cache_stats)``."""
    dbs = {db.name: db}
    cache = FeaturizationCache()
    featurize_records(records, dbs, cards="exact", feat_cache=cache)  # warm
    timings = []
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            featurize_records(records, dbs, cards="exact", feat_cache=cache)
            timings.append(time.perf_counter() - start)
    return _best_rate(len(records), timings), cache.stats()


# ----------------------------------------------------------------------
# Model-side benchmarks (unchanged interfaces)
# ----------------------------------------------------------------------
def bench_batch_construction(graphs, batch_size=64, repeats=5, scalers=None):
    """Plans/second through ``make_batch`` (fresh batches every pass)."""
    if scalers is None:
        scalers = FeatureScalers().fit(graphs)
    chunks = [graphs[i:i + batch_size]
              for i in range(0, len(graphs), batch_size)]
    timings = []
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            for chunk in chunks:
                make_batch(chunk, scalers)
            timings.append(time.perf_counter() - start)
    return _best_rate(len(graphs), timings)


def bench_training_step(graphs, runtimes, hidden_dim=64, batch_size=64,
                        epochs=3, repeats=3, seed=0, use_reference=False):
    """Plans/second through forward + backward + clip + Adam step.

    Fast path: the flat-parameter :class:`Adam` (contiguous per-dtype
    buffers, whole-model vectorized step).  Reference: the preserved
    per-parameter ``Adam_reference`` / ``clip_grad_norm_reference`` loops —
    the executable spec the flat optimizer matches bit-for-bit.
    """
    config = TrainingConfig(hidden_dim=hidden_dim, batch_size=batch_size)
    optimizer_cls = Adam_reference if use_reference else Adam
    clip = clip_grad_norm_reference if use_reference else clip_grad_norm
    scalers = FeatureScalers().fit(graphs)
    target = TargetScaler().fit(runtimes)
    log_targets = np.log(np.maximum(runtimes, 1e-3))
    batches = [(make_batch(graphs[i:i + batch_size], scalers),
                log_targets[i:i + batch_size])
               for i in range(0, len(graphs), batch_size)]
    loss_fn = QErrorLoss()
    timings = []
    with _gc_paused():
        for _ in range(repeats):
            model = ZeroShotModel(hidden_dim=hidden_dim, dropout=0.05, seed=seed)
            if hasattr(model, "to"):
                model.to(getattr(config, "dtype", "float64"))
            model.train()
            params = list(model.parameters())
            optimizer = optimizer_cls(params, lr=1.5e-3)
            start = time.perf_counter()
            for _ in range(epochs):
                for batch, target_log in batches:
                    optimizer.zero_grad()
                    pred_log = model(batch) * target.std + target.mean
                    loss = loss_fn(pred_log, target_log)
                    loss.backward()
                    clip(params, 5.0)
                    optimizer.step()
            timings.append(time.perf_counter() - start)
    return _best_rate(len(graphs) * epochs, timings)


def bench_train_epoch(graphs, runtimes, hidden_dim=64, batch_size=64,
                      epochs=3, repeats=3, seed=0, use_reference=False):
    """Plans/second through the *full* ``train_model`` entry point.

    Unlike :func:`bench_training_step` this pays the epoch-level machinery
    too: validation passes, early-stopping snapshots (one flat buffer copy
    on the fast path vs a per-tensor ``state_dict`` on the reference path)
    and the final best-state restore.
    """
    config = TrainingConfig(hidden_dim=hidden_dim, batch_size=batch_size,
                            epochs=epochs, seed=seed,
                            flat_optimizer=not use_reference)
    timings = []
    with _gc_paused():
        for _ in range(repeats):
            model = ZeroShotModel(hidden_dim=hidden_dim, dropout=0.05,
                                  seed=seed)
            start = time.perf_counter()
            train_model(model, graphs, runtimes, config)
            timings.append(time.perf_counter() - start)
    return _best_rate(len(graphs) * epochs, timings)


def bench_experiment_warm_start(store_dir=None, n_queries=12, epochs=4,
                                hidden_dim=16, seed=0):
    """Cold vs warm benchmark session through the disk artifact store.

    Runs a miniature suite session (generate databases, execute a trace,
    featurize, train a model) twice against one ``ArtifactStore``: the
    first session pays full generation cost, the second hydrates everything
    from disk.  Returns ``(cold_s, warm_s, store_stats)`` where
    ``store_stats`` holds the warm session's hit/miss counters.
    """
    from dataclasses import replace
    from repro.bench import Artifacts, ArtifactStore, SuiteConfig

    config = SuiteConfig(scale="tiny", seed=seed,
                         database_names=("airline", "imdb"))
    training = replace(config.training_config, epochs=epochs,
                       hidden_dim=hidden_dim)

    def session(store):
        art = Artifacts(config, store=store)
        trace = art.trace("airline", n=n_queries)
        art.graphs(trace, "exact")
        art.train_zero_shot([trace], cards="exact", config=training)
        return art

    def timed_session(store):
        start = time.perf_counter()
        session(store)
        return time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        root = store_dir or tmp
        cold_s = timed_session(ArtifactStore(root))
        warm_store = ArtifactStore(root)
        warm_s = timed_session(warm_store)
        return cold_s, warm_s, warm_store.stats()


def bench_inference(graphs, runtimes, hidden_dim=64, batch_size=256,
                    repeats=5, seed=0, use_cache=False):
    """Plans/second through ``predict_runtimes``.

    By default batch memoization is disabled so the number reflects fresh
    (never-seen) graphs — directly comparable to the seed engine, which had
    no cache.  ``use_cache=True`` measures the warm-``BatchCache`` path that
    repeated evaluations (e.g. the benchmark suite) actually pay; in that
    mode the cache's hit/miss counters are returned alongside the rate.
    """
    from repro.featurization import BatchCache

    model = ZeroShotModel(hidden_dim=hidden_dim, seed=seed).eval()
    scalers = FeatureScalers().fit(graphs)
    target = TargetScaler().fit(runtimes)
    kwargs = {}
    cache = None
    # The seed engine's predict_runtimes predates the batch_cache parameter;
    # only pass it where supported so the harness runs on any revision.
    if "batch_cache" in inspect.signature(predict_runtimes).parameters:
        cache = BatchCache(max_entries=64) if use_cache else False
        kwargs["batch_cache"] = cache
    timings = []
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            predict_runtimes(model, graphs, scalers, target,
                             batch_size=batch_size, **kwargs)
            timings.append(time.perf_counter() - start)
    rate = _best_rate(len(graphs), timings)
    if use_cache and cache not in (None, False):
        return rate, cache.stats()
    return rate


def bench_serving(db, records, hidden_dim=64, n_clients=4, repeats=3,
                  max_batch_size=64, max_delay_ms=2.0, seed=0):
    """Plans/second through the online predictor, single vs micro-batched.

    Publishes one model to a throwaway registry and drives the server with
    the load generator in saturation mode (open-loop clients, no arrival
    pacing): once with ``max_batch_size=1`` — every request pays the full
    per-call featurize/batch/infer cost, the way a naive single-plan service
    would — and once with micro-batching on.  The result cache is disabled
    so both modes pay the real inference path for every request; the
    speedup between the two rates is the value of request coalescing.
    Returns ``(single_rate, batched_rate, extras)`` where ``extras`` holds
    the batched run's batch-size histogram and latency percentiles.
    """
    from repro.bench import ArtifactStore
    from repro.core import TrainingConfig, ZeroShotCostModel
    from repro.serving import (LoadConfig, ModelRegistry, PredictorServer,
                               ServerConfig, run_load)

    dbs = {db.name: db}
    graphs = featurize_records(records, dbs, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records])
    model = ZeroShotCostModel(
        ZeroShotModel(hidden_dim=hidden_dim, seed=seed).eval(),
        FeatureScalers().fit(graphs), TargetScaler().fit(runtimes),
        TrainingConfig(hidden_dim=hidden_dim))
    requests = [(db.name, record.plan) for record in records]
    load = LoadConfig(n_clients=n_clients, rate_per_s=None, seed=seed,
                      block=True)

    def measure(batch_size):
        best_rate, extras = 0.0, {}
        for _ in range(repeats):
            # Fresh server per pass: cold featurization/batch caches, as a
            # first encounter with this request stream would pay.
            config = ServerConfig(max_batch_size=batch_size,
                                  max_delay_ms=max_delay_ms,
                                  queue_depth=len(requests) + n_clients,
                                  result_cache_size=0)
            server = PredictorServer(registry, dbs, config)
            with _gc_paused(), server:
                report = run_load(server, requests, load)
            if report.completed != len(requests):
                raise RuntimeError(
                    f"serving bench lost requests: {report.as_dict()}")
            if report.throughput_rps > best_rate:
                best_rate = report.throughput_rps
                extras = {"batch_size_hist": report.batch_size_hist,
                          "mean_batch_size": report.mean_batch_size,
                          "latency_ms": report.latency_ms}
        return best_rate, extras

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(ArtifactStore(tmp))
        registry.publish("bench", model, dbs=[db], default=True)
        single_rate, _ = measure(1)
        batched_rate, extras = measure(max_batch_size)
    return single_rate, batched_rate, extras


def bench_chaos(db, records, hidden_dim=64, n_clients=4, rounds=2, seed=0,
                fault_seed=1, max_batch_size=16, max_delay_ms=1.0,
                trace=False):
    """Availability, correctness and tail latency under injected faults.

    Publishes one model, pre-computes the ground-truth predictions with a
    direct ``predict_runtimes`` call, then drives the server through the
    load generator's chaos mode: a deterministic seeded
    :class:`~repro.robustness.faults.FaultSchedule` raises transient errors
    in featurization and inference, injects inference delays, and crashes
    the batcher thread mid-load.  The result cache is disabled so **every**
    request pays the hardened model path, and every delivered value is
    audited:

    * a ``DONE`` response whose value differs bit-for-bit from the direct
      prediction is a **wrong value** (the headline count; must be zero);
    * ``DEGRADED`` responses are counted separately — they are the explicit
      analytical fallback, never checked against (or confused with) model
      predictions.

    Returns a dict with availability (delivered / submitted), the wrong
    value count, per-status counts, batcher crash/re-enqueue counts,
    latency percentiles under faults, and the schedule's per-point
    injection totals.
    """
    from repro.bench import ArtifactStore
    from repro.core import TrainingConfig, ZeroShotCostModel
    from repro.robustness.faults import FaultSchedule, FaultSpec
    from repro.serving import (LoadConfig, ModelRegistry, PredictorServer,
                               RequestStatus, ServerConfig, run_load)

    dbs = {db.name: db}
    graphs = featurize_records(records, dbs, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records])
    model = ZeroShotCostModel(
        ZeroShotModel(hidden_dim=hidden_dim, seed=seed).eval(),
        FeatureScalers().fit(graphs), TargetScaler().fit(runtimes),
        TrainingConfig(hidden_dim=hidden_dim))
    # Ground truth: the row-stable kernels make per-plan predictions
    # independent of batch composition, so one direct call is the oracle
    # for every micro-batch, retry and bisection the chaos run produces.
    truth = predict_runtimes(model.model, graphs, model.feature_scalers,
                             model.target_scaler)
    expected = {id(record.plan): float(value)
                for record, value in zip(records, truth)}
    requests = [(db.name, record.plan) for record in records] * rounds
    schedule = FaultSchedule([
        # Guaranteed events, pinned mid-run by skip_calls so every chaos
        # run (CI's --quick included) exercises supervision and retry: the
        # third batch crashes the batcher, and one group's first two
        # inference attempts fail (forcing backoff retries).
        FaultSpec("serve.batcher", rate=1.0, skip_calls=2, max_faults=1,
                  message="chaos: batcher crash"),
        FaultSpec("serve.infer", rate=1.0, skip_calls=3, max_faults=2,
                  message="chaos: inference fault (pinned)"),
        # Background transient noise across the whole run.
        FaultSpec("serve.featurize", rate=0.04,
                  message="chaos: featurization fault"),
        FaultSpec("serve.infer", rate=0.04,
                  message="chaos: inference fault"),
        FaultSpec("serve.infer", rate=0.02, action="delay", delay_ms=4.0),
    ], seed=fault_seed)
    config = ServerConfig(max_batch_size=max_batch_size,
                          max_delay_ms=max_delay_ms,
                          queue_depth=len(requests) + n_clients,
                          result_cache_size=0,
                          max_retries=3, retry_backoff_ms=0.5,
                          breaker_threshold=3, breaker_reset_ms=20.0,
                          trace=trace)
    load = LoadConfig(n_clients=n_clients, rate_per_s=None, seed=seed,
                      block=True, faults=schedule, trace=trace)
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(ArtifactStore(tmp))
        registry.publish("chaos-bench", model, dbs=[db], default=True)
        server = PredictorServer(registry, dbs, config)
        with _gc_paused(), server:
            report = run_load(server, requests, load)

    wrong = 0
    for handle in report.handles:
        if handle.status in (RequestStatus.DONE, RequestStatus.CACHED):
            if handle.value != expected[id(handle.plan)]:
                wrong += 1
    stats = report.server_stats
    return {
        "n_requests": report.n_requests,
        "availability": report.availability,
        "wrong_values": wrong,
        "completed": report.completed,
        "degraded": report.degraded,
        "shed": report.shed,
        "failed": report.failed,
        "batcher_crashes": stats["batcher_crashes"],
        "requeued": stats["requeued"],
        "retries": stats["retries"],
        "bisects": stats["bisects"],
        "latency_ms": report.latency_ms,
        "fault_stats": report.fault_stats,
        "latency_attribution": report.latency_attribution,
        "spans": report.spans,
    }


def bench_fleet(db, records, hidden_dim=64, n_clients=4,
                worker_counts=(1, 2, 4), rounds=2, repeats=2,
                max_batch_size=64, max_delay_ms=2.0, spill_threshold=16,
                seed=0):
    """Fleet throughput vs worker count, with a full value audit.

    Publishes one model to a throwaway registry, pre-computes the
    ground-truth predictions with a direct ``predict_runtimes`` call, then
    drives a fresh :class:`~repro.serving.PredictorFleet` at each worker
    count through the load generator in saturation mode.  The result cache
    is disabled so every request pays the real mmap-hydrated inference path
    in a worker process, and **every** delivered value is audited against
    the direct prediction — the fleet equivalence contract says the wrong
    value count must be zero at any worker count, any placement.

    Returns ``(rates, extras)``: ``rates`` maps worker count to the best
    plans/s over ``repeats`` passes; ``extras`` carries per-count latency
    percentiles, mean batch size, spill/restart counts, and the ``fleet.*``
    perfstats counters.  Scaling beyond one worker needs real cores — on a
    single-CPU machine the honest numbers simply show ~1x.
    """
    from repro.bench import ArtifactStore
    from repro.core import TrainingConfig, ZeroShotCostModel
    from repro.serving import (LoadConfig, ModelRegistry, PredictorFleet,
                               RequestStatus, ServerConfig, run_load)

    dbs = {db.name: db}
    graphs = featurize_records(records, dbs, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records])
    model = ZeroShotCostModel(
        ZeroShotModel(hidden_dim=hidden_dim, seed=seed).eval(),
        FeatureScalers().fit(graphs), TargetScaler().fit(runtimes),
        TrainingConfig(hidden_dim=hidden_dim))
    # Row-stable kernels: one direct call is the oracle for every value
    # the fleet produces, regardless of batch composition or placement.
    truth = predict_runtimes(model.model, graphs, model.feature_scalers,
                             model.target_scaler)
    expected = {id(record.plan): float(value)
                for record, value in zip(records, truth)}
    requests = [(db.name, record.plan) for record in records] * rounds
    load = LoadConfig(n_clients=n_clients, rate_per_s=None, seed=seed,
                      block=True)
    config = ServerConfig(max_batch_size=max_batch_size,
                          max_delay_ms=max_delay_ms,
                          queue_depth=len(requests) + n_clients,
                          result_cache_size=0)
    rates, extras = {}, {}
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(ArtifactStore(tmp))
        registry.publish("fleet-bench", model, dbs=[db], default=True)
        for n_workers in worker_counts:
            best_rate, best_extras = 0.0, {}
            for _ in range(repeats):
                # Fresh fleet per pass: fork, mmap hydration and worker
                # cache warm-up are all inside the measured window — the
                # cost a real scale-out/restart pays.
                fleet = PredictorFleet(registry, dbs, config,
                                       n_workers=n_workers,
                                       spill_threshold=spill_threshold)
                with _gc_paused(), fleet:
                    report = run_load(fleet, requests, load)
                    stats = fleet.stats()
                if report.completed != len(requests):
                    raise RuntimeError(
                        f"fleet bench lost requests at {n_workers} "
                        f"workers: {report.as_dict()}")
                wrong = sum(
                    1 for handle in report.handles
                    if handle.status in (RequestStatus.DONE,
                                         RequestStatus.CACHED)
                    and handle.value != expected[id(handle.plan)])
                if wrong:
                    raise RuntimeError(
                        f"fleet bench produced {wrong} wrong values at "
                        f"{n_workers} workers")
                if report.throughput_rps > best_rate:
                    best_rate = report.throughput_rps
                    best_extras = {
                        "mean_batch_size": report.mean_batch_size,
                        "latency_ms": report.latency_ms,
                        "spills": stats["spills"],
                        "worker_restarts": stats["worker_restarts"],
                    }
            rates[n_workers] = best_rate
            extras[f"{n_workers}w"] = best_extras
    extras["fleet_counters"] = perfstats.snapshot(
        ["fleet.worker.spawn", "fleet.worker.restart",
         "fleet.route.hit", "fleet.route.rebalance", "fleet.queue.depth"])
    return rates, extras


_FLEET_CHAOS_COUNTERS = (
    "fleet.hang.detected", "fleet.hang.killed", "fleet.hedge.sent",
    "fleet.hedge.won", "fleet.hedge.wasted", "fleet.worker.restart",
    "fleet.brownout.count", "serve.shed.priority.high",
    "serve.shed.priority.normal", "serve.shed.priority.low",
)


def bench_fleet_chaos(db, records, hidden_dim=64, n_clients=4, rounds=2,
                      n_workers=2, seed=0, fault_seed=1, max_batch_size=16,
                      max_delay_ms=1.0, hang_timeout_ms=500.0,
                      ping_interval_ms=100.0, hedge_after_ms=60.0,
                      overload_queue_depth=32, trace=False):
    """Fleet liveness and overload control under IPC chaos, fully audited.

    Two phases against one published model, both audited against a direct
    ``predict_runtimes`` oracle (the fleet equivalence contract):

    **Phase A — liveness chaos.**  Worker 0 is armed with a deterministic
    per-worker :class:`~repro.robustness.faults.FaultSchedule` that hangs
    it forever mid-run (``fleet.worker.hang``, gray failure: the process
    lives, answers nothing); the router process runs a schedule of pinned
    ``fleet.pipe.send``/``fleet.pipe.recv`` drops plus background send
    delays; the last worker is SIGKILLed outright before the load starts.
    Recovery must come from the new liveness plane: hedged re-sends after
    ``hedge_after_ms``, hang detection + kill after ``hang_timeout_ms``,
    and restart-with-re-send for both corpses.  The phase **fails** on any
    wrong value, any lost or duplicated request, availability < 0.99, or
    when the hang/hedge/restart counters show the machinery did not fire.

    **Phase B — overload control.**  A clean fleet is first saturated to
    measure its capacity, then driven open-loop at 2x that rate with a
    seeded 20/30/50 HIGH/NORMAL/LOW priority mix against a bounded queue
    with a HIGH reserve and LOW brownout.  The phase **fails** when HIGH
    availability drops below 0.99 or when shedding does not concentrate
    on the low-priority classes (per-class numbers from
    ``LoadReport.by_priority``).

    Returns a dict with both phases' reports, the relevant perfstats
    deltas, and a ``failures`` list (empty means the run passed).
    """
    from repro.bench import ArtifactStore
    from repro.core import TrainingConfig, ZeroShotCostModel
    from repro.robustness.faults import FaultSchedule, FaultSpec
    from repro.serving import (LoadConfig, ModelRegistry, PredictorFleet,
                               RequestPriority, RequestStatus, ServerConfig,
                               run_load)

    dbs = {db.name: db}
    graphs = featurize_records(records, dbs, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records])
    model = ZeroShotCostModel(
        ZeroShotModel(hidden_dim=hidden_dim, seed=seed).eval(),
        FeatureScalers().fit(graphs), TargetScaler().fit(runtimes),
        TrainingConfig(hidden_dim=hidden_dim))
    truth = predict_runtimes(model.model, graphs, model.feature_scalers,
                             model.target_scaler)
    expected = {id(record.plan): float(value)
                for record, value in zip(records, truth)}
    requests = [(db.name, record.plan) for record in records] * rounds
    failures = []

    def audit(report, phase):
        wrong = sum(1 for handle in report.handles
                    if handle.status in (RequestStatus.DONE,
                                         RequestStatus.CACHED)
                    and handle.value != expected[id(handle.plan)])
        if wrong:
            failures.append(f"{phase}: {wrong} wrong values (equivalence "
                            "contract broken)")
        lost = sum(1 for handle in report.handles
                   if handle.status is RequestStatus.PENDING)
        if lost:
            failures.append(f"{phase}: {lost} requests never completed")
        if len(report.handles) != len(set(id(h) for h in report.handles)):
            failures.append(f"{phase}: duplicated handles in report")
        return wrong

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(ArtifactStore(tmp))
        registry.publish("fleet-chaos-bench", model, dbs=[db], default=True)

        # -- Phase A: hang + SIGKILL + IPC drops under saturation --------
        worker_faults = {0: FaultSchedule([
            FaultSpec("fleet.worker.hang", rate=1.0, skip_calls=1,
                      max_faults=1, action="hang"),
        ], seed=fault_seed)}
        router_faults = FaultSchedule([
            # Pinned, bounded drops: every run (CI --quick included) loses
            # real messages in both pipe directions; hedging re-ships them.
            FaultSpec("fleet.pipe.send", rate=1.0, skip_calls=5,
                      max_faults=2, action="drop"),
            FaultSpec("fleet.pipe.recv", rate=1.0, skip_calls=7,
                      max_faults=2, action="drop"),
            FaultSpec("fleet.pipe.send", rate=0.02, action="delay",
                      delay_ms=2.0),
        ], seed=fault_seed)
        config = ServerConfig(max_batch_size=max_batch_size,
                              max_delay_ms=max_delay_ms,
                              queue_depth=len(requests) + n_clients,
                              result_cache_size=0,
                              trace=trace)
        load = LoadConfig(n_clients=n_clients, rate_per_s=None, seed=seed,
                          block=True, faults=router_faults, trace=trace)
        before = perfstats.snapshot(_FLEET_CHAOS_COUNTERS)
        fleet = PredictorFleet(registry, dbs, config, n_workers=n_workers,
                               fault_schedule=worker_faults,
                               hang_timeout_ms=hang_timeout_ms,
                               ping_interval_ms=ping_interval_ms,
                               hedge_after_ms=hedge_after_ms)
        with _gc_paused(), fleet:
            # Warm the fleet with one audited request, then murder the
            # last worker outright — crash recovery and hang recovery run
            # in the same window.
            warm = fleet.submit(records[0].plan, db.name, block=True)
            warm.wait(30.0)
            fleet.kill_worker(n_workers - 1)
            report_a = run_load(fleet, requests, load)
            stats_a = fleet.stats()
        counters = {name: value - before.get(name, 0) for name, value
                    in perfstats.snapshot(_FLEET_CHAOS_COUNTERS).items()}
        audit(report_a, "chaos")
        if report_a.availability < 0.99:
            failures.append(
                f"chaos: availability {report_a.availability:.4f} < 0.99")
        if counters["fleet.hang.detected"] < 1:
            failures.append("chaos: hung worker was never detected")
        if counters["fleet.hang.killed"] < 1:
            failures.append("chaos: hung worker was never killed")
        if counters["fleet.hedge.sent"] < 1:
            failures.append("chaos: no hedged requests were sent")
        if counters["fleet.worker.restart"] < 2:
            failures.append(
                f"chaos: {counters['fleet.worker.restart']} restarts "
                "(expected >= 2: one SIGKILL, one hang-kill)")

        # -- Phase B: 2x-saturation overload with mixed priorities -------
        config_b = ServerConfig(max_batch_size=max_batch_size,
                                max_delay_ms=max_delay_ms,
                                queue_depth=overload_queue_depth,
                                result_cache_size=0,
                                high_reserve_fraction=0.25,
                                brownout_fraction=0.5,
                                brownout_degraded=True)
        rng = np.random.default_rng(seed)
        mix = []
        for db_name, plan in requests:
            draw = rng.random()
            priority = (RequestPriority.HIGH if draw < 0.2
                        else RequestPriority.NORMAL if draw < 0.5
                        else RequestPriority.LOW)
            mix.append((db_name, plan, priority))
        fleet = PredictorFleet(registry, dbs, config_b, n_workers=n_workers)
        with _gc_paused(), fleet:
            calibrate = run_load(fleet, requests, LoadConfig(
                n_clients=n_clients, rate_per_s=None, seed=seed, block=True))
            capacity = calibrate.throughput_rps
            report_b = run_load(fleet, mix, LoadConfig(
                n_clients=n_clients, rate_per_s=2.0 * capacity, seed=seed,
                block=False))
        audit(report_b, "overload")
        by_priority = report_b.by_priority
        high = by_priority.get("high", {"availability": 0.0, "shed": 0})
        low = by_priority.get("low", {"shed": 0, "degraded": 0,
                                      "requests": 1})
        normal = by_priority.get("normal", {"shed": 0})
        low_pressure = low.get("shed", 0) + low.get("degraded", 0)
        if high["availability"] < 0.99:
            failures.append(f"overload: HIGH availability "
                            f"{high['availability']:.4f} < 0.99")
        if low_pressure + normal.get("shed", 0) < 1:
            failures.append("overload: 2x saturation never shed or "
                            "browned out a single request")
        if high.get("shed", 0) > low_pressure:
            failures.append(
                f"overload: shedding hit HIGH ({high.get('shed', 0)}) "
                f"harder than LOW ({low_pressure})")

    return {
        "n_requests": len(requests),
        "chaos": {
            "availability": report_a.availability,
            "completed": report_a.completed,
            "degraded": report_a.degraded,
            "failed": report_a.failed,
            "latency_ms": report_a.latency_ms,
            "fault_stats": report_a.fault_stats,
            "worker_fault_injected": stats_a.get("worker_fault_injected",
                                                 {}),
            "hangs": stats_a.get("hangs", 0),
            "hedges": stats_a.get("hedges", 0),
            "hedge_wins": stats_a.get("hedge_wins", 0),
            "worker_restarts": stats_a.get("worker_restarts", 0),
            "requeued": stats_a.get("requeued", 0),
            "latency_attribution": report_a.latency_attribution,
            "spans": report_a.spans,
        },
        "overload": {
            "capacity_rps": capacity,
            "offered_rps": 2.0 * capacity,
            "high_availability": high.get("availability", 0.0),
            "by_priority": by_priority,
        },
        "counters": counters,
        "failures": failures,
    }


def bench_controller(quick=False, pump_rounds=20, trace=False):
    """End-to-end drift scenario through the continuous-learning controller.

    Builds the calibrated three-database world (a small training database,
    a drift database the base model has never seen, and a heavy database
    the *candidate* never learns) and drives the full
    observe -> detect -> retrain -> shadow-evaluate -> promote loop four
    times:

    * **happy path, twice**: traffic shifts to the drift database, the
      controller detects, fine-tunes a candidate from the observed window,
      shadow-evaluates and promotes it, and graduates probation.  The two
      runs must produce *bit-identical* event streams (``replay_identical``)
      and zero rollbacks (``wrong_promotions``);
    * **regression**: post-promotion traffic shifts again to the heavy
      database; the candidate must be auto-rolled-back *inside* the
      probation window;
    * **daemon availability**: the same happy scenario with the controller
      ticking in its supervised background thread while the load generator
      keeps submitting — availability across the whole run (fine-tune
      included) is the headline SLO.

    The scenario is calibration-pinned (thresholds were validated against
    cross-process training jitter), so ``quick`` runs measure the identical
    workload — the flag only bounds the daemon graduation pump.

    Returns a flat metrics dict: detect/promote/graduate ticks,
    ``ticks_to_recover``, ``wrong_promotions``, ``replay_identical``,
    per-phase Q-error summaries (the recovery curve), the regression
    rollback audit, ``availability_during_retrain``, and the happy-path
    event stream.
    """
    import dataclasses
    import time as _time
    from pathlib import Path

    from repro.bench import ArtifactStore
    from repro.core import TrainingConfig, ZeroShotCostModel
    from repro.datagen import generate_database, random_database_spec
    from repro.executor import simulate_runtime_ms_batch
    from repro.serving import (ContinuousLearningController, ControllerConfig,
                               LoadConfig, ModelRegistry, PredictorServer,
                               ServerConfig, run_load)
    from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace

    # Same calibrated world as tests/test_controller.py: the base model's
    # Q-error on drift traffic (~3x) clears the 2.0 threshold, the
    # fine-tuned candidate's (~1.3-1.7x) stays under it, and the
    # candidate's on heavy traffic (~4-12x) clears the 2.5 probation
    # threshold — with margin under cross-process training jitter.
    db = generate_database(random_database_spec(
        "ctl_db", seed=31, layout="snowflake", base_rows=400, n_tables=4,
        complexity=0.6))
    drift_db = generate_database(random_database_spec(
        "drift_db", seed=77, layout="star", base_rows=900, n_tables=5,
        complexity=0.9))
    heavy_db = generate_database(random_database_spec(
        "heavy_db", seed=5, layout="star", base_rows=20000, n_tables=6,
        complexity=0.9))
    dbs = {d.name: d for d in (db, drift_db, heavy_db)}
    trace_a = list(generate_trace(db, WorkloadGenerator(
        db, WorkloadConfig(max_joins=1), seed=7).generate(40), seed=7))
    trace_b = list(generate_trace(drift_db, WorkloadGenerator(
        drift_db, WorkloadConfig(min_joins=2, max_joins=4),
        seed=99).generate(120), seed=7))
    trace_c = list(generate_trace(heavy_db, WorkloadGenerator(
        heavy_db, WorkloadConfig(min_joins=3, max_joins=5),
        seed=13).generate(32), seed=7))
    base = ZeroShotCostModel.train(
        [trace_a], dbs, cards="exact",
        config=TrainingConfig(hidden_dim=24, epochs=12, dtype="float32",
                              seed=0))

    config = ControllerConfig(
        truth_seed=7, drift_threshold=2.0, drift_window=16,
        min_observations=8, max_fine_tune_records=16, fine_tune_epochs=20,
        fine_tune_lr=1e-3, shadow_margin=1.05, min_shadow_samples=16,
        probation_observations=64, probation_threshold=2.5,
        max_observations_per_tick=16)
    load = LoadConfig(n_clients=1, block=True)
    phases = [
        ("before", [("ctl_db", r.plan) for r in trace_a[:24]]),
        ("drift", [("drift_db", r.plan) for r in trace_b[:48]]),
        ("recovery", [("drift_db", r.plan) for r in trace_b[48:80]]),
        ("after", [("drift_db", r.plan) for r in trace_b[80:120]]),
    ]
    regression_phases = phases[:3] + [
        ("after", [("heavy_db", r.plan) for r in trace_c]),
    ]

    def stack(tmp, ctl_config=config):
        registry = ModelRegistry(ArtifactStore(tmp))
        registry.publish("zs", base, dbs=list(dbs.values()), default=True)
        server = PredictorServer(
            registry, dbs, ServerConfig(max_batch_size=8, max_delay_ms=1.0,
                                        result_cache_size=0,
                                        trace=trace)).start()
        controller = ContinuousLearningController(registry, server,
                                                  ctl_config)
        return registry, server, controller

    def truth_for(handle):
        return float(simulate_runtime_ms_batch(
            dbs[handle.db_name], [handle.plan], seed=config.truth_seed)[0])

    def run_scenario(tmp, scenario_phases):
        """Synchronous drain-per-phase run; returns (registry, controller,
        per-phase Q-error summaries, spans)."""
        registry, server, controller = stack(tmp)
        q_by_phase = {}
        try:
            with _gc_paused():
                for name, requests in scenario_phases:
                    report = run_load(server, requests, load)
                    controller.drain()
                    q_by_phase[name] = report.compute_q_error_phases(
                        truth_for, {name: (0, len(requests))})[name]
        finally:
            server.stop()
        # Single client + synchronous drain make the span structure (and
        # the trace ids that reach ControllerEvents) replay-deterministic,
        # so the happy-path replay contract holds with tracing on too.
        spans = server.tracer.drain() if server.tracer is not None else []
        return registry, controller, q_by_phase, spans

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        # Happy path, twice: the replay contract.
        _, first, q_by_phase, spans = run_scenario(tmp / "happy1", phases)
        _, second, _, _ = run_scenario(tmp / "happy2", phases)
        happy = first.journal.events()
        kinds = [e.kind for e in happy]
        expected_kinds = ["drift-detected", "candidate-published",
                          "promoted", "probation-passed"]
        if kinds != expected_kinds:
            raise RuntimeError(
                f"happy path produced {kinds}, expected {expected_kinds}")
        replay_identical = happy == second.journal.events()
        detect_tick = happy[0].tick
        promote_tick = happy[2].tick
        graduate_tick = happy[3].tick
        wrong_promotions = len(first.journal.events("rolled-back"))

        # Regression: promote, then shift to the heavy database.
        registry_r, regressed, _, _ = run_scenario(tmp / "regression",
                                                   regression_phases)
        rollbacks = regressed.journal.events("rolled-back")
        rollback_detail = dict(rollbacks[0].detail) if rollbacks else {}

        # Daemon availability: the controller ticks (and fine-tunes) in
        # its background thread while load keeps flowing.
        daemon_config = dataclasses.replace(config, cadence_s=0.01)
        registry_d, server_d, daemon = stack(tmp / "daemon", daemon_config)
        submitted = delivered = 0

        def pump(requests):
            nonlocal submitted, delivered
            report = run_load(server_d, requests, load)
            submitted += report.n_requests
            delivered += report.completed + report.cached + report.degraded
            deadline = _time.monotonic() + 30.0
            while len(daemon.tap) and _time.monotonic() < deadline:
                _time.sleep(0.02)

        try:
            with daemon:
                for _, requests in phases[:2]:
                    pump(requests)
                # Promotion can land anywhere inside a phase under a live
                # daemon; keep pumping recovery traffic until probation
                # graduates (bounded).
                rounds = pump_rounds if not quick else min(pump_rounds, 10)
                for _ in range(rounds):
                    if daemon.journal.events("probation-passed"):
                        break
                    pump(phases[2][1])
        finally:
            server_d.stop()
        daemon_stats = daemon.stats()
        wrong_promotions += len(daemon.journal.events("rolled-back"))

    return {
        "detect_tick": detect_tick,
        "promote_tick": promote_tick,
        "graduate_tick": graduate_tick,
        "ticks_to_recover": promote_tick - detect_tick,
        "wrong_promotions": wrong_promotions,
        "replay_identical": replay_identical,
        "candidate_digest": happy[1].digest,
        "q_error_by_phase": q_by_phase,
        "regression": {
            "rolled_back": len(rollbacks) == 1,
            "restored_version": rollback_detail.get("restored_version"),
            "probation_seen": rollback_detail.get("probation_seen"),
            "within_probation": (
                bool(rollbacks)
                and rollback_detail["probation_seen"]
                < config.probation_observations),
            "rollback_median": rollback_detail.get("rolling_median"),
            "active_version_after": registry_r.active("zs").version,
        },
        "availability_during_retrain": (
            delivered / submitted if submitted else 0.0),
        "daemon": {
            "submitted": submitted,
            "delivered": delivered,
            "crashes": daemon_stats["crashes"],
            "graduated": bool(daemon.journal.events("probation-passed")),
            "active_version": registry_d.active("zs").version,
        },
        "events": [e.as_dict() for e in happy],
        "spans": spans,
    }


def bench_obs(db, records, hidden_dim=64, n_clients=4, repeats=3,
              max_batch_size=16, max_delay_ms=1.0, seed=0,
              sample_every=1):
    """Tracing overhead: saturation throughput with spans off vs on.

    Same shape as :func:`bench_serving` — one published model, open-loop
    saturating clients, result cache off so every request pays the model
    path — run ``repeats`` times in *interleaved* off/on pairs so machine
    drift within the bench hits both arms equally.  The traced arm samples
    every ``sample_every``-th request (1 = trace everything, the worst
    case).  Reports the median throughput of each arm, the overhead ratio
    ``1 - traced/untraced``, and the traced arm's span yield: span count,
    per-stage latency attribution (with its coverage fraction — the share
    of end-to-end latency the stages explain) and an SLO report.
    """
    import statistics

    from repro.bench import ArtifactStore
    from repro.core import TrainingConfig, ZeroShotCostModel
    from repro.obs.export import latency_attribution, slo_report
    from repro.serving import (LoadConfig, ModelRegistry, PredictorServer,
                               ServerConfig, run_load)

    dbs = {db.name: db}
    graphs = featurize_records(records, dbs, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records])
    model = ZeroShotCostModel(
        ZeroShotModel(hidden_dim=hidden_dim, seed=seed).eval(),
        FeatureScalers().fit(graphs), TargetScaler().fit(runtimes),
        TrainingConfig(hidden_dim=hidden_dim))
    requests = [(db.name, record.plan) for record in records]
    load = LoadConfig(n_clients=n_clients, rate_per_s=None, seed=seed,
                      block=True)

    def one_pass(traced):
        config = ServerConfig(max_batch_size=max_batch_size,
                              max_delay_ms=max_delay_ms,
                              queue_depth=len(requests) + n_clients,
                              result_cache_size=0,
                              trace=traced,
                              trace_sample_every=sample_every)
        server = PredictorServer(registry, dbs, config)
        with _gc_paused(), server:
            report = run_load(server, requests, load, trace=traced)
        if report.completed != len(requests):
            raise RuntimeError(
                f"obs bench lost requests: {report.as_dict()}")
        return report

    off_rates, on_rates = [], []
    spans, traced_report = [], None
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(ArtifactStore(tmp))
        registry.publish("obs-bench", model, dbs=[db], default=True)
        one_pass(False)  # warm-up: model mmap + first-touch costs
        for _ in range(repeats):
            off_rates.append(one_pass(False).throughput_rps)
            traced_report = one_pass(True)
            on_rates.append(traced_report.throughput_rps)
            spans = traced_report.spans
    off_med = statistics.median(off_rates)
    on_med = statistics.median(on_rates)
    attribution = latency_attribution(spans) if spans else {}
    coverage = attribution.get("overall", {}).get("coverage", 0.0)
    p95 = traced_report.latency_ms.get("p95", 0.0)
    return {
        "untraced_rps": off_med,
        "traced_rps": on_med,
        "overhead_frac": (1.0 - on_med / off_med) if off_med else 0.0,
        "sample_every": sample_every,
        "n_spans": len(spans),
        "attribution_coverage": coverage,
        "latency_attribution": attribution,
        "slo": slo_report(
            delivered=(traced_report.completed + traced_report.cached
                       + traced_report.degraded),
            submitted=traced_report.n_requests,
            availability_floor=0.99,
            latency_p95_ms=p95,
            latency_p95_floor_ms=max(p95 * 2.0, 1.0)),
        "spans": spans,
    }


def run_pipeline_reference(n_queries=192, seed=0):
    """Loop-baseline rates for the pipeline metrics (see --save-loop-baseline)."""
    db, records = build_plan_corpus(n_queries=n_queries, seed=seed)
    exec_db, exec_plans = build_exec_corpus(seed=seed,
                                            **exec_corpus_size(n_queries < 192))
    results = {
        "featurize_plans_per_s": bench_featurization(db, records,
                                                     use_reference=True),
        "annotate_plans_per_s": bench_annotation(db, records,
                                                 use_reference=True),
        "trace_exec_plans_per_s": bench_trace_execution(exec_db, exec_plans,
                                                        use_reference=True),
        "simulate_plans_per_s": bench_runtime_simulation(exec_db, exec_plans,
                                                         use_reference=True),
        "spn_learn_tables_per_s": bench_spn_learning(db, use_reference=True),
    }
    return results


def _stage(name, fn, profile=False):
    """Run one benchmark stage, optionally under cProfile (top-20 printed)."""
    if not profile:
        return fn()
    profiler = cProfile.Profile()
    profiler.enable()
    result = fn()
    profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats(
        "cumulative").print_stats(20)
    print(f"\n--- profile: {name} (top 20 by cumulative time) ---")
    print(stream.getvalue())
    return result


def run_all(n_queries=192, hidden_dim=64, seed=0, profile=False):
    """Run all microbenchmarks; returns {metric: value}.

    ``profile=True`` additionally prints a cProfile top-20 per stage.
    """
    perfstats.reset()
    db, records = build_plan_corpus(n_queries=n_queries, seed=seed)
    graphs = featurize_records(records, {db.name: db}, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records])
    # The loop references are timed immediately before their fast
    # counterparts: the recorded baseline tracks the trajectory PR over PR,
    # while these same-run rates give a machine-drift-immune speedup.
    # --- stage 0: corpus engine (datagen / execute / learn / simulate) ---
    datagen = _stage("datagen", bench_datagen, profile)
    # Honor the caller's sizing: a --quick run gets a proportionally
    # smaller execution corpus instead of always paying the full one
    # (same sizing rule as run_pipeline_reference, so recorded loop
    # baselines and measured rates always share a corpus scale).
    exec_db, exec_plans = build_exec_corpus(seed=seed,
                                            **exec_corpus_size(n_queries < 192))
    trace_exec_reference = _stage(
        "trace_exec_reference",
        lambda: bench_trace_execution(exec_db, exec_plans,
                                      use_reference=True), profile)
    trace_exec = _stage(
        "trace_exec", lambda: bench_trace_execution(exec_db, exec_plans),
        profile)
    simulate_reference = _stage(
        "simulate_reference",
        lambda: bench_runtime_simulation(exec_db, exec_plans,
                                         use_reference=True), profile)
    simulate = _stage(
        "simulate", lambda: bench_runtime_simulation(exec_db, exec_plans),
        profile)
    spn_learn_reference = _stage(
        "spn_learn_reference",
        lambda: bench_spn_learning(db, use_reference=True), profile)
    spn_learn = _stage("spn_learn", lambda: bench_spn_learning(db), profile)
    featurize_reference = _stage(
        "featurize_reference",
        lambda: bench_featurization(db, records, repeats=3,
                                    use_reference=True), profile)
    featurize = _stage("featurize", lambda: bench_featurization(db, records),
                       profile)
    featurize_cached, feat_cache_stats = _stage(
        "featurize_cached", lambda: bench_featurization_cached(db, records),
        profile)
    annotate_reference = _stage(
        "annotate_reference",
        lambda: bench_annotation(db, records, repeats=2, use_reference=True),
        profile)
    annotate = _stage("annotate", lambda: bench_annotation(db, records),
                      profile)
    batch_construction = _stage(
        "batch_construction", lambda: bench_batch_construction(graphs),
        profile)
    train_step_reference = _stage(
        "train_step_reference",
        lambda: bench_training_step(graphs, runtimes, hidden_dim=hidden_dim,
                                    seed=seed, repeats=2, use_reference=True),
        profile)
    train_step = _stage(
        "train_step",
        lambda: bench_training_step(graphs, runtimes, hidden_dim=hidden_dim,
                                    seed=seed), profile)
    train_epoch_reference = _stage(
        "train_epoch_reference",
        lambda: bench_train_epoch(graphs, runtimes, hidden_dim=hidden_dim,
                                  seed=seed, repeats=2, use_reference=True),
        profile)
    train_epoch = _stage(
        "train_epoch",
        lambda: bench_train_epoch(graphs, runtimes, hidden_dim=hidden_dim,
                                  seed=seed), profile)
    # Run the two inference variants back to back so machine drift cannot
    # skew the cached/uncached comparison.
    inference = _stage(
        "inference",
        lambda: bench_inference(graphs, runtimes, hidden_dim=hidden_dim,
                                seed=seed), profile)
    inference_cached, batch_cache_stats = _stage(
        "inference_cached",
        lambda: bench_inference(graphs, runtimes, hidden_dim=hidden_dim,
                                seed=seed, use_cache=True), profile)
    warm_cold_s, warm_warm_s, warm_store_stats = _stage(
        "experiment_warm_start", bench_experiment_warm_start, profile)
    serving_single, serving_batched, serving_extras = _stage(
        "serving", lambda: bench_serving(db, records, hidden_dim=hidden_dim,
                                         seed=seed), profile)
    fleet_rates, fleet_extras = _stage(
        "fleet", lambda: bench_fleet(db, records, hidden_dim=hidden_dim,
                                     seed=seed), profile)
    fleet_metrics = {f"fleet_{count}w_plans_per_s": rate
                     for count, rate in fleet_rates.items()}
    fleet_scaling = (fleet_rates.get(4, 0.0) / fleet_rates[1]
                     if fleet_rates.get(1) else 0.0)
    return {
        "datagen_tables_per_s": datagen,
        "trace_exec_plans_per_s": trace_exec,
        "trace_exec_reference_plans_per_s": trace_exec_reference,
        "simulate_plans_per_s": simulate,
        "simulate_reference_plans_per_s": simulate_reference,
        "spn_learn_tables_per_s": spn_learn,
        "spn_learn_reference_tables_per_s": spn_learn_reference,
        "featurize_plans_per_s": featurize,
        "annotate_plans_per_s": annotate,
        "featurize_cached_plans_per_s": featurize_cached,
        "featurize_reference_plans_per_s": featurize_reference,
        "annotate_reference_plans_per_s": annotate_reference,
        "batch_construction_plans_per_s": batch_construction,
        "train_step_plans_per_s": train_step,
        "train_step_reference_plans_per_s": train_step_reference,
        "train_epoch_plans_per_s": train_epoch,
        "train_epoch_reference_plans_per_s": train_epoch_reference,
        "inference_plans_per_s": inference,
        "inference_cached_plans_per_s": inference_cached,
        "experiment_cold_s": warm_cold_s,
        "experiment_warm_s": warm_warm_s,
        "experiment_warm_start_speedup": warm_cold_s / warm_warm_s,
        "serving_single_plans_per_s": serving_single,
        "serving_batched_plans_per_s": serving_batched,
        "serving_microbatch_speedup": serving_batched / serving_single,
        "serving_extras": serving_extras,
        **fleet_metrics,
        "fleet_scaling_4w": fleet_scaling,
        "fleet_extras": fleet_extras,
        "n_queries": n_queries,
        "hidden_dim": hidden_dim,
        "cache_stats": {
            "featurization_cache": feat_cache_stats,
            "batch_cache": batch_cache_stats,
            "artifact_store_warm": warm_store_stats,
        },
        "dispatch_counters": perfstats.snapshot(
            ["featurize.vectorized", "featurize.reference",
             "annotate.batched", "annotate.reference",
             "model.graph_free_inference", "optim.flat_step",
             "optim.reference_step", "training.flat_snapshot",
             "execute.trace.plans", "execute.scan_cache.hit",
             "execute.scan_cache.miss", "execute.join_index.hit",
             "execute.join_index.fallback", "simulate.batched",
             "spn.learn.vectorized", "spn.learn.reference",
             "trace.generate.batched", "trace.generate.reference",
             "serve.batch.count", "serve.batch.requests",
             "serve.cache.hit", "serve.cache.miss",
             "serve.shed.count", "serve.swap.count",
             "fleet.worker.spawn", "fleet.worker.restart",
             "fleet.route.hit", "fleet.route.rebalance",
             "fleet.queue.depth"]),
    }
