"""Microbenchmarks for the zero-shot hot loop (engine-level, not figures).

Unlike ``benchmarks/test_fig*.py`` (which reproduce the paper's evaluation),
this package measures the raw throughput of the three engine stages every
experiment pays for:

* **batch construction** — ``make_batch`` over query graphs,
* **training step** — forward + backward + clip + Adam step,
* **inference** — ``predict_runtimes`` over featurized graphs.

``python benchmarks/perf/run.py`` runs all three and writes
``BENCH_engine.json`` (current numbers plus speedups against the recorded
seed-engine baseline in ``baseline_seed.json``).
"""

from .harness import (build_corpus, bench_batch_construction,
                      bench_training_step, bench_inference, run_all)

__all__ = ["build_corpus", "bench_batch_construction", "bench_training_step",
           "bench_inference", "run_all"]
