"""Entry point: run the engine microbenchmarks and write ``BENCH_engine.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/run.py                 # full run
    PYTHONPATH=src python benchmarks/perf/run.py --quick         # smaller corpus
    PYTHONPATH=src python benchmarks/perf/run.py --save-baseline # refresh baseline
    PYTHONPATH=src python benchmarks/perf/run.py --save-loop-baseline
        # re-record ONLY the loop-baseline metrics (featurize / annotate /
        # trace_exec / simulate / spn_learn) by timing the executable
        # reference implementations (annotate_cardinalities_reference,
        # build_query_graph_reference, per-plan execute_plan and
        # simulate_runtime_ms, learn_spn_reference); other baseline entries
        # are left untouched.

The output JSON records the current numbers, the recorded loop/seed-engine
baseline (``benchmarks/perf/baseline_seed.json``), and the speedup of each
metric, so the perf trajectory is visible PR over PR.  Cache hit/miss
counters and fast-path dispatch counters ride along so a regression to a
loop fallback is visible even when throughput noise hides it.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(HERE))

BASELINE_PATH = HERE / "baseline_seed.json"
DEFAULT_OUTPUT = REPO / "BENCH_engine.json"

RATE_KEYS = ("datagen_tables_per_s", "trace_exec_plans_per_s",
             "simulate_plans_per_s", "spn_learn_tables_per_s",
             "featurize_plans_per_s", "annotate_plans_per_s",
             "featurize_cached_plans_per_s",
             "batch_construction_plans_per_s", "train_step_plans_per_s",
             "train_epoch_plans_per_s",
             "inference_plans_per_s", "inference_cached_plans_per_s",
             "serving_single_plans_per_s", "serving_batched_plans_per_s",
             "fleet_1w_plans_per_s", "fleet_2w_plans_per_s",
             "fleet_4w_plans_per_s")

# Metrics with an in-run executable reference implementation (loop specs /
# per-parameter optimizer): reported as machine-drift-immune ratios.
# name -> metric suffix (most rates are plans/s, SPN learning is tables/s).
SAME_RUN_KEYS = {"trace_exec": "plans_per_s", "simulate": "plans_per_s",
                 "spn_learn": "tables_per_s", "featurize": "plans_per_s",
                 "annotate": "plans_per_s", "train_step": "plans_per_s",
                 "train_epoch": "plans_per_s"}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus (96 queries) for a fast signal")
    parser.add_argument("--save-baseline", action="store_true",
                        help="write results to baseline_seed.json instead of "
                             "comparing against it")
    parser.add_argument("--save-loop-baseline", action="store_true",
                        help="re-record the loop-baseline entries (featurize/"
                             "annotate/trace_exec/simulate/spn_learn) from "
                             "the reference implementations")
    parser.add_argument("--profile", action="store_true",
                        help="print a cProfile top-20 per benchmark stage")
    args = parser.parse_args(argv)

    from harness import run_all, run_pipeline_reference

    n_queries = 96 if args.quick else 192

    if args.save_loop_baseline:
        baseline = (json.loads(BASELINE_PATH.read_text())
                    if BASELINE_PATH.exists() else {})
        reference = run_pipeline_reference(n_queries=n_queries)
        baseline.update(reference)
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"loop baseline updated in {BASELINE_PATH}")
        for key, value in reference.items():
            print(f"  {key}: {value:.1f}")
        return 0

    results = run_all(n_queries=n_queries, profile=args.profile)

    if args.save_baseline:
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        for key in RATE_KEYS:
            print(f"  {key}: {results[key]:.1f}")
        return 0

    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())

    report = {
        "engine": "fast-path",
        "python": platform.python_version(),
        "results": results,
        "baseline_seed": baseline,
    }
    if baseline:
        report["speedup_vs_seed"] = {
            key: results[key] / baseline[key]
            for key in RATE_KEYS if baseline.get(key)
        }
        warm = results.get("featurize_cached_plans_per_s")
        cold = results.get("featurize_plans_per_s")
        if warm and cold:
            report["featurization_cache_warm_over_cold"] = warm / cold
    # Machine-drift-immune: reference implementations timed in this very
    # run (pipeline loop specs + the per-parameter Adam_reference).
    same_run = {}
    for key, suffix in SAME_RUN_KEYS.items():
        fast = results.get(f"{key}_{suffix}")
        reference = results.get(f"{key}_reference_{suffix}")
        if fast and reference:
            same_run[f"{key}_{suffix}"] = fast / reference
    if same_run:
        report["speedup_vs_loop_same_run"] = same_run
    warm = results.get("experiment_warm_start_speedup")
    if warm:
        report["experiment_warm_start_speedup"] = warm
    serving = results.get("serving_microbatch_speedup")
    if serving:
        report["serving_microbatch_speedup"] = serving
    fleet_scaling = results.get("fleet_scaling_4w")
    if fleet_scaling:
        report["fleet_scaling_4w"] = fleet_scaling

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {args.output}")
    for key in RATE_KEYS:
        line = f"  {key}: {results[key]:.1f}"
        if baseline and baseline.get(key):
            line += (f"  (seed {baseline[key]:.1f}, "
                     f"{results[key] / baseline[key]:.2f}x)")
        print(line)
    if same_run:
        for key, value in same_run.items():
            print(f"  {key} vs same-run reference: {value:.2f}x")
    if warm:
        print(f"  experiment_warm_start: cold {results['experiment_cold_s']:.2f}s"
              f" -> warm {results['experiment_warm_s']:.2f}s ({warm:.1f}x)")
    if serving:
        extras = results.get("serving_extras", {})
        print(f"  serving_microbatch_speedup: {serving:.2f}x "
              f"(mean batch {extras.get('mean_batch_size', 0):.1f}, "
              f"p99 {extras.get('latency_ms', {}).get('p99', 0):.2f} ms)")
    if fleet_scaling:
        fleet_extras = results.get("fleet_extras", {})
        counters = fleet_extras.get("fleet_counters", {})
        print(f"  fleet_scaling_4w: {fleet_scaling:.2f}x "
              f"(spawns {counters.get('fleet.worker.spawn', 0)}, "
              f"route hits {counters.get('fleet.route.hit', 0)}, "
              f"rebalances {counters.get('fleet.route.rebalance', 0)})")
    print(f"  cache_stats: {results['cache_stats']}")
    print(f"  dispatch: {results['dispatch_counters']}")

    # Append the same table to the experiment report so the perf trajectory
    # lives next to the regenerated paper figures.
    from repro.bench.reporting import format_table, print_experiment
    rows = []
    for key in RATE_KEYS:
        row = {"metric": key.replace("_plans_per_s", "").replace(
                   "_tables_per_s", ""),
               "fast_path_rate": results[key]}
        if baseline and baseline.get(key):
            row["seed_rate"] = baseline[key]
            row["speedup"] = results[key] / baseline[key]
        rows.append(row)
    print_experiment("Engine Microbenchmarks — fast path vs seed engine",
                     format_table(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
