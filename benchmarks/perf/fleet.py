"""Entry point: run the fleet scaling benchmark and write ``BENCH_fleet.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/fleet.py           # full corpus
    PYTHONPATH=src python benchmarks/perf/fleet.py --quick   # CI smoke

Drives :func:`harness.bench_fleet`: a fresh
:class:`~repro.serving.PredictorFleet` per worker count, saturation load
from the open-loop generator, result cache off so every request pays the
real mmap-hydrated inference path in a worker process.  Every delivered
value is audited against a direct ``predict_runtimes`` call inside the
harness — a single wrong value raises before this script even sees the
numbers.  The run **fails** (non-zero exit) when

* the harness audit raised (lost requests or wrong values — the fleet
  equivalence contract), or
* multi-worker throughput does not beat one worker by ``--min-scaling``
  (default 1.3x) — checked only when the machine actually has more than
  one CPU; a single-core box (or a CI runner pinned to one core) records
  its honest ~1x and passes with a note, because fork-based scaling
  without cores to scale onto is not a regression.

The JSON report records plans/s per worker count, the scaling ratios, the
``fleet.*`` router counters, and per-count latency percentiles.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(HERE))

DEFAULT_OUTPUT = REPO / "BENCH_fleet.json"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus, 1-vs-2-worker smoke")
    parser.add_argument("--seed", type=int, default=0, help="corpus/load seed")
    parser.add_argument("--min-scaling", type=float, default=1.3,
                        help="required multi-worker speedup over 1 worker "
                             "(enforced only on multi-CPU machines)")
    args = parser.parse_args(argv)

    from harness import bench_fleet, build_plan_corpus

    if args.quick:
        n_queries, worker_counts, rounds, repeats = 64, (1, 2), 2, 1
    else:
        n_queries, worker_counts, rounds, repeats = 192, (1, 2, 4), 2, 2
    db, records = build_plan_corpus(n_queries=n_queries, seed=args.seed)
    # bench_fleet raises on any lost request or wrong value (the audit
    # against direct predict_runtimes) — that check runs unconditionally.
    rates, extras = bench_fleet(db, records, worker_counts=worker_counts,
                                rounds=rounds, repeats=repeats,
                                seed=args.seed)

    cpus = os.cpu_count() or 1
    top = max(worker_counts)
    scaling = {f"{count}w": rates[count] / rates[1]
               for count in worker_counts if rates.get(1)}
    results = {
        "n_queries": n_queries,
        "rounds": rounds,
        "cpu_count": cpus,
        "plans_per_s": {f"{count}w": rates[count]
                        for count in worker_counts},
        "scaling_vs_1w": scaling,
        "wrong_values": 0,  # bench_fleet raises otherwise
        "extras": extras,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"fleet report written to {args.output}")
    for count in worker_counts:
        line = f"  {count} worker(s): {rates[count]:.1f} plans/s"
        if count > 1 and rates.get(1):
            line += f"  ({rates[count] / rates[1]:.2f}x vs 1 worker)"
        print(line)
    print(f"  wrong values: 0 (audited against direct predict_runtimes)")
    counters = extras.get("fleet_counters", {})
    print(f"  router: hits {counters.get('fleet.route.hit', 0)}, "
          f"rebalances {counters.get('fleet.route.rebalance', 0)}, "
          f"spawns {counters.get('fleet.worker.spawn', 0)}, "
          f"restarts {counters.get('fleet.worker.restart', 0)}")

    top_scaling = rates[top] / rates[1] if rates.get(1) else 0.0
    if cpus < 2:
        print(f"fleet run passed (scaling check skipped: {cpus} CPU — "
              f"observed {top_scaling:.2f}x at {top} workers)")
        return 0
    if top_scaling < args.min_scaling:
        print(f"FLEET FAILURE: {top} workers scaled {top_scaling:.2f}x "
              f"over 1 worker on a {cpus}-CPU machine "
              f"(floor {args.min_scaling}x)")
        return 1
    print(f"fleet run passed ({top_scaling:.2f}x at {top} workers, "
          f"floor {args.min_scaling}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
