"""Entry point: benchmark tracing overhead and write ``BENCH_obs.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/obs.py           # full corpus
    PYTHONPATH=src python benchmarks/perf/obs.py --quick   # CI smoke

Drives the predictor server through :func:`harness.bench_obs`: interleaved
saturation load runs with tracing off and tracing on (sampling every
request — the worst case), plus the traced arm's span yield.  The run
**fails** (non-zero exit) when

* the tracing-on overhead exceeds ``--max-overhead`` (default 5% of
  untraced throughput), or
* the per-stage latency attribution explains less than ``--min-coverage``
  (default 95%) of end-to-end latency, or
* the traced arm produced no spans (a vacuous overhead measurement).

Alongside the JSON report the runner exports the traced arm's spans as
both JSONL (``--spans-jsonl``) and a Chrome trace-event / Perfetto
timeline (``--perfetto``) so a regression in the overhead gate ships the
evidence needed to explain it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(HERE))

DEFAULT_OUTPUT = REPO / "BENCH_obs.json"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--spans-jsonl", type=Path,
                        default=REPO / "BENCH_obs_spans.jsonl")
    parser.add_argument("--perfetto", type=Path,
                        default=REPO / "BENCH_obs_trace.json")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus + fewer repeats for a fast signal")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sample-every", type=int, default=1,
                        help="trace every Nth request (1 = all, worst case)")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="tracing-on throughput cost gate (fraction)")
    parser.add_argument("--min-coverage", type=float, default=0.95,
                        help="attribution coverage gate (fraction)")
    args = parser.parse_args(argv)

    from harness import bench_obs, build_plan_corpus

    from repro.obs.export import write_chrome_trace, write_spans_jsonl

    n_queries = 64 if args.quick else 192
    repeats = 3 if args.quick else 5
    db, records = build_plan_corpus(n_queries=n_queries, seed=args.seed)
    results = bench_obs(db, records, repeats=repeats, seed=args.seed,
                        sample_every=args.sample_every)

    spans = results.pop("spans")
    write_spans_jsonl(spans, args.spans_jsonl)
    write_chrome_trace(spans, args.perfetto)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"obs report written to {args.output}")
    print(f"  spans: {args.spans_jsonl} / perfetto: {args.perfetto}")
    print(f"  untraced:  {results['untraced_rps']:.1f} rps")
    print(f"  traced:    {results['traced_rps']:.1f} rps "
          f"(sampling 1/{results['sample_every']})")
    print(f"  overhead:  {results['overhead_frac'] * 100.0:.2f}% "
          f"(gate {args.max_overhead * 100.0:.0f}%)")
    print(f"  spans recorded: {results['n_spans']}")
    print(f"  attribution coverage: {results['attribution_coverage']:.4f} "
          f"(floor {args.min_coverage})")
    overall = results["latency_attribution"].get("overall", {})
    for name, stage in sorted(overall.get("stages", {}).items()):
        print(f"    {name:<12s} p95 {stage['p95']:8.3f} ms  "
              f"share {stage['share'] * 100.0:5.1f}%")
    slo = results["slo"]
    print(f"  availability: {slo['availability']:.4f} "
          f"(burn {slo['availability_burn']:.2f}x of budget)")

    failures = []
    if results["n_spans"] == 0:
        failures.append("traced arm recorded no spans — overhead "
                        "measurement was vacuous")
    if results["overhead_frac"] > args.max_overhead:
        failures.append(
            f"tracing overhead {results['overhead_frac'] * 100.0:.2f}% "
            f"exceeds {args.max_overhead * 100.0:.0f}% gate")
    if results["attribution_coverage"] < args.min_coverage:
        failures.append(
            f"attribution coverage {results['attribution_coverage']:.4f} "
            f"below {args.min_coverage}")
    if failures:
        print("OBS FAILURE: " + "; ".join(failures))
        return 1
    print("obs run passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
