"""Figure 11: ablation study.

Paper: (a) flattening plans into vectors (Ganapathi-style + GBDT) is less
accurate than the graph encoding, because operator interactions are lost;
(b) zero-shot remains reasonably accurate even with plain optimizer
cardinality estimates, and DeepDB estimates close most of the gap to exact.
"""

import numpy as np

from repro.bench import exp_fig11_ablation


def test_fig11_ablation(artifacts, run_once):
    rows = run_once(exp_fig11_ablation, artifacts)
    assert {row["workload"] for row in rows} \
        == {"scale", "synthetic", "job_light"}

    # Graph encoding beats the flattened representation (median over
    # workloads; paper shows it per workload).
    flattened = np.median([row["flattened_plans"] for row in rows])
    graph_exact = np.median([row["zero_shot_exact"] for row in rows])
    assert graph_exact < flattened

    for row in rows:
        # Optimizer-estimate variant is still reasonable (paper: "still very
        # accurate even if cardinality estimates are annotated from simple
        # models").
        assert row["zero_shot_est_cards"] < row["flattened_plans"] * 2.0
        # DeepDB closes most of the distance to exact cards.
        assert row["zero_shot_deepdb"] <= row["zero_shot_est_cards"] * 1.3
