"""Figure 5: zero-shot generalization across the 20 benchmark databases.

Paper: trained on 19/20 databases and tested on the remaining unseen one,
zero-shot models beat the scaled optimizer costs on 18/19 databases (on par
on the star-schema Airline) and DeepDB-estimated cardinalities nearly match
exact ones.
"""

import numpy as np

from repro.bench import exp_fig5_zero_shot_accuracy


def test_fig5_zero_shot_accuracy(artifacts, run_once):
    rows = run_once(exp_fig5_zero_shot_accuracy, artifacts)
    assert len(rows) == len(artifacts.config.database_names)

    wins = sum(row["zero_shot_deepdb"] <= row["scaled_optimizer"]
               for row in rows)
    # Paper: wins on 18/19, on-par on the last; we require a clear majority.
    assert wins >= 0.7 * len(rows)

    # Zero-shot stays accurate on every unseen database (the paper's worst
    # case is 1.54 vs 8.62; at simulator scale the spread is compressed, so
    # we allow the worst single database a small margin).
    worst_zero_shot = max(row["zero_shot_deepdb"] for row in rows)
    worst_optimizer = max(row["scaled_optimizer"] for row in rows)
    assert worst_zero_shot < worst_optimizer * 1.5
    # ... and on the benchmark average it is the more accurate model.
    assert np.mean([row["zero_shot_deepdb"] for row in rows]) \
        < np.mean([row["scaled_optimizer"] for row in rows])

    # DeepDB cardinalities nearly match exact ones (paper: "almost matching").
    gaps = [row["zero_shot_deepdb"] - row["zero_shot_exact"] for row in rows]
    assert np.median(gaps) < 0.25
