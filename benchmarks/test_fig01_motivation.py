"""Figure 1: cost estimation errors on IMDB vs observed workload hours.

Paper: the workload-driven model needs many hours of executed queries to
approach the accuracy a zero-shot model delivers out of the box; few-shot
fine-tuning improves on both.
"""

import numpy as np

from repro.bench import exp_fig1_motivation


def test_fig1_motivation(artifacts, run_once):
    rows = run_once(exp_fig1_motivation, artifacts)
    assert len(rows) >= 3

    # Zero-shot requires no observed workload and its error is flat.
    zero_shot = {row["zero_shot"] for row in rows}
    assert len(zero_shot) == 1

    # Workload-driven accuracy improves with more observed hours.
    e2e = [row["workload_driven_e2e"] for row in rows]
    assert e2e[-1] <= e2e[0] * 1.05

    # With few observed hours, zero-shot beats the workload-driven model.
    assert rows[0]["zero_shot"] < rows[0]["workload_driven_e2e"]

    # Few-shot tracks (or improves on) zero-shot once queries are available.
    assert rows[-1]["few_shot"] <= rows[-1]["zero_shot"] * 1.25
    assert all(np.isfinite(row["observed_hours"]) for row in rows)
