"""Table 3: distributed cloud data warehouse (scale / synthetic / JOB-light).

Paper: zero-shot cost models extended with shuffle operators and columnar
scans beat the scaled cost estimates of the cloud DW's internal optimizer;
exact cardinalities improve slightly over DeepDB-estimated ones.
"""

from repro.bench import exp_table3_distributed


def test_table3_distributed(artifacts, run_once):
    rows = run_once(exp_table3_distributed, artifacts)
    assert {row["workload"] for row in rows} \
        == {"scale", "synthetic", "job_light"}

    for row in rows:
        # Zero-shot at least matches the cloud optimizer's scaled costs per
        # workload (Table 3; ties can occur at compressed simulator scales).
        assert row["zero_shot_deepdb"] <= row["cloud_dw_optimizer"] * 1.05
        # Exact cards are at least on par with estimated ones (small gap).
        assert row["zero_shot_exact"] <= row["zero_shot_deepdb"] * 1.25

    # Across the three workloads zero-shot is the more accurate model.
    import numpy as np
    assert np.mean([r["zero_shot_exact"] for r in rows]) \
        <= np.mean([r["cloud_dw_optimizer"] for r in rows])
