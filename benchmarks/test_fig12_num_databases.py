"""Figure 12: zero-shot generalization by number of training databases.

Paper: the generalization error on the unseen IMDB workloads shrinks as more
training databases are observed, with diminishing returns after ~15 — the
criterion of Section 4.1 for "enough training data collected".
"""

import numpy as np

from repro.bench import exp_fig12_num_databases


def test_fig12_num_databases(artifacts, run_once):
    rows = run_once(exp_fig12_num_databases, artifacts)
    counts = [row["n_databases"] for row in rows]
    assert counts == sorted(counts)
    assert counts[-1] == 19

    def mean_error(row):
        return np.mean([row["scale_deepdb"], row["synthetic_deepdb"],
                        row["job_light_deepdb"]])

    errors = [mean_error(row) for row in rows]

    # More databases help: the final error beats the single-database error.
    assert errors[-1] < errors[0]

    # Diminishing returns: the last step improves far less than the first.
    first_gain = errors[0] - errors[1]
    last_gain = errors[-2] - errors[-1]
    assert last_gain <= max(first_gain, 0.0) + 0.05
