"""Figure 6: workload-driven models vs zero-shot on the IMDB workloads
(scale / synthetic / JOB-light), sweeping the number of training queries.

Paper: E2E needs ~50k queries (~66 h) to match zero-shot; MSCN is less
accurate than E2E (plan-oblivious); few-shot fine-tuning improves on
zero-shot; the advantages also hold at the 95th percentile.
"""

import numpy as np

from repro.bench import exp_fig6_vs_workload_driven


def test_fig6_vs_workload_driven(artifacts, run_once):
    rows = run_once(exp_fig6_vs_workload_driven, artifacts)
    workloads = {row["workload"] for row in rows}
    assert workloads == {"scale", "synthetic", "job_light"}

    first = [r for r in rows if r["train_queries"] == rows[0]["train_queries"]]
    last_count = max(r["train_queries"] for r in rows)
    last = [r for r in rows if r["train_queries"] == last_count]

    # With few training queries the workload-driven models lose to zero-shot.
    assert np.median([r["e2e"] for r in first]) \
        > np.median([r["zero_shot_deepdb"] for r in first])

    # E2E improves with training data (crossover direction).
    assert np.median([r["e2e"] for r in last]) \
        < np.median([r["e2e"] for r in first])

    # MSCN is plan-oblivious: with any training budget it does not beat the
    # zero-shot model that sees the physical plan (paper: MSCN plateaus
    # above E2E once E2E has enough data).
    assert np.median([r["mscn"] for r in last]) \
        >= np.median([r["zero_shot_deepdb"] for r in last]) * 0.95

    # Few-shot tracks zero-shot (it starts from it; at simulator scale the
    # handful of fine-tuning queries yields parity rather than the paper's
    # further improvement — see EXPERIMENTS.md).
    assert np.median([r["few_shot_exact"] for r in last]) \
        <= np.median([r["zero_shot_exact"] for r in last]) * 1.25

    # Tail behaviour: zero-shot p95 below the workload-driven p95 early on.
    assert np.median([r["zero_shot_deepdb_p95"] for r in first]) \
        <= np.median([r["e2e_p95"] for r in first])

    # Execution hours grow with the training-query count.
    hours = [r["exec_hours"] for r in rows if r["workload"] == "scale"]
    assert all(b >= a for a, b in zip(hours, hours[1:]))
