"""§7.4 (text): generalization to unseen physical designs (indexes).

Paper: trained on index workloads of 19 databases, zero-shot models predict
IMDB runtimes under unseen indexes with median Q-errors of 1.21 / 1.28 /
1.34 for exact / DeepDB / Postgres-estimated cardinalities — comparable to
the no-index setting.
"""

from repro.bench import exp_sec74_physical_design


def test_sec74_physical_design(artifacts, run_once):
    rows = run_once(exp_sec74_physical_design, artifacts)
    by_cards = {row["cards"]: row["median_q_error"] for row in rows}
    assert set(by_cards) == {"exact", "deepdb", "optimizer"}

    # All three variants stay accurate under unseen physical designs.
    assert all(q < 3.0 for q in by_cards.values())

    # Paper ordering: exact <= deepdb <= optimizer (allowing slack for noise).
    assert by_cards["exact"] <= by_cards["optimizer"] * 1.2
