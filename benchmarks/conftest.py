"""Shared benchmark configuration.

The experiment benchmarks regenerate the paper's tables/figures; each runs
exactly once per session (``benchmark.pedantic(rounds=1)``) on the shared
artifact cache.  Select the suite scale with ``REPRO_SCALE``
(tiny | small | medium; default small).
"""

import pytest

from repro.bench import get_artifacts


@pytest.fixture(scope="session")
def artifacts():
    return get_artifacts()


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
