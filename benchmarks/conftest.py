"""Shared benchmark configuration.

The experiment benchmarks regenerate the paper's tables/figures; each runs
exactly once per session (``benchmark.pedantic(rounds=1)``) on the shared
artifact cache.  Select the suite scale with ``REPRO_SCALE``
(tiny | small | medium; default small).

**Warm vs cold sessions.**  A *cold* session generates the 20 benchmark
databases, executes every workload trace, featurizes the plans and trains
the models from scratch.  Set ``REPRO_ARTIFACT_DIR=/some/dir`` to make the
session *warm-startable*: every artifact is persisted there keyed on its
content fingerprint, and the next pytest session hydrates databases,
traces, graph lists and trained models from disk instead of rebuilding
them (stale or corrupt entries rebuild automatically; wipe the directory
after semantic changes to datagen/workloads/featurization).  Independent
model trainings inside fig5/fig6/fig12 additionally fan out over forked
workers — ``REPRO_PARALLEL`` pins the worker count (``1`` forces the
serial path, which produces bit-identical results).

Everything in this directory is marked ``slow`` and deselected by default
(see ``pytest.ini``), so the tier-1 suite stays fast; run the figures with
``pytest benchmarks -m slow``.
"""

import pathlib

import pytest

from repro.bench import get_artifacts

_BENCH_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def artifacts():
    return get_artifacts()


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
