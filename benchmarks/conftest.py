"""Shared benchmark configuration.

The experiment benchmarks regenerate the paper's tables/figures; each runs
exactly once per session (``benchmark.pedantic(rounds=1)``) on the shared
artifact cache.  Select the suite scale with ``REPRO_SCALE``
(tiny | small | medium; default small).

Everything in this directory is marked ``slow`` and deselected by default
(see ``pytest.ini``), so the tier-1 suite stays fast; run the figures with
``pytest benchmarks -m slow``.
"""

import pathlib

import pytest

from repro.bench import get_artifacts

_BENCH_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def artifacts():
    return get_artifacts()


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
