"""Figure 10: efficiency of training and inference.

(a) Amortization: workload-driven training queries grow linearly with the
number of unseen databases while the zero-shot effort is one-time.
(b) Throughput: zero-shot models almost match E2E's training/inference
throughput; MSCN is faster than both because it ignores the physical plan.
"""

from repro.bench import exp_fig10a_amortization, exp_fig10b_throughput


def test_fig10a_amortization(artifacts, run_once):
    rows = run_once(exp_fig10a_amortization, artifacts)
    assert len(rows) == 20

    # E2E cost grows linearly; zero-shot is constant.
    e2e = [row["e2e_training_queries"] for row in rows]
    zero = {row["zero_shot_training_queries"] for row in rows}
    assert len(zero) == 1
    assert e2e == sorted(e2e)

    # Zero-shot amortizes before the 20th unseen database (paper: quickly).
    crossover = next((row["unseen_databases"] for row in rows
                      if row["e2e_training_queries"]
                      >= row["zero_shot_training_queries"]), None)
    assert crossover is not None and crossover <= 20


def test_fig10b_throughput(artifacts, run_once):
    rows = run_once(exp_fig10b_throughput, artifacts)
    by_model = {row["model"]: row for row in rows}
    assert {"mscn", "e2e", "zero_shot_deepdb", "zero_shot_exact"} <= set(by_model)

    # MSCN trains fastest (smallest encoding, no plan graphs).
    assert by_model["mscn"]["train_plans_per_s"] \
        > by_model["e2e"]["train_plans_per_s"]

    # Zero-shot is in the same ballpark as E2E (paper: "almost match") for
    # both training and inference.
    train_ratio = (by_model["zero_shot_exact"]["train_plans_per_s"]
                   / by_model["e2e"]["train_plans_per_s"])
    assert 0.15 < train_ratio < 6.0
    infer_ratio = (by_model["zero_shot_exact"]["inference_plans_per_s"]
                   / by_model["e2e"]["inference_plans_per_s"])
    assert 0.15 < infer_ratio < 6.0
