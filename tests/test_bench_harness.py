"""Tests for the benchmark harness: reporting, suite config, artifacts."""

import numpy as np
import pytest

from repro.bench import (Artifacts, SuiteConfig, exp_fig10a_amortization,
                         format_bars, format_table, get_artifacts,
                         scale_from_env)


class TestReporting:
    def test_format_table_basic(self):
        rows = [{"a": 1.234567, "b": "x"}, {"a": 20000.0, "b": "yy"}]
        text = format_table(rows)
        assert "a" in text and "b" in text
        assert "1.23" in text
        assert "20,000" in text

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_bars(self):
        text = format_bars({"x": 10.0, "y": 5.0})
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_format_bars_empty(self):
        assert format_bars({}) == "(no data)"


class TestSuiteConfig:
    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert scale_from_env() == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            scale_from_env()
        monkeypatch.delenv("REPRO_SCALE")
        assert scale_from_env() == "small"

    def test_config_presets(self):
        tiny = SuiteConfig(scale="tiny")
        small = SuiteConfig(scale="small")
        assert tiny.base_rows < small.base_rows
        assert tiny.queries_per_db < small.queries_per_db
        assert tiny.training_config.hidden_dim < small.training_config.hidden_dim

    def test_get_artifacts_caches(self):
        a = get_artifacts(scale="tiny", seed=123)
        b = get_artifacts(scale="tiny", seed=123)
        assert a is b


@pytest.fixture(scope="module")
def mini_artifacts():
    """A 3-database artifact set small enough for unit tests."""
    config = SuiteConfig(scale="tiny", seed=5,
                         database_names=("hepatitis", "consumer", "imdb"))
    return Artifacts(config)


class TestArtifacts:
    def test_databases_subset(self, mini_artifacts):
        assert set(mini_artifacts.databases) == {"hepatitis", "consumer",
                                                 "imdb"}
        assert mini_artifacts.training_names == ["hepatitis", "consumer"]

    def test_trace_caching(self, mini_artifacts):
        t1 = mini_artifacts.trace("hepatitis", n=10)
        t2 = mini_artifacts.trace("hepatitis", n=10)
        assert t1 is t2
        t3 = mini_artifacts.trace("hepatitis", n=10, seed_offset=1)
        assert t3 is not t1

    def test_graph_caching(self, mini_artifacts):
        trace = mini_artifacts.trace("consumer", n=8)
        g1 = mini_artifacts.graphs(trace, "exact")
        g2 = mini_artifacts.graphs(trace, "exact")
        assert g1 is g2
        assert len(g1) == len(trace)

    def test_train_and_evaluate(self, mini_artifacts):
        from dataclasses import replace
        config = replace(mini_artifacts.config.training_config, epochs=4)
        model = mini_artifacts.train_zero_shot(
            [mini_artifacts.trace("hepatitis", n=20)], config=config)
        trace = mini_artifacts.trace("consumer", n=10)
        metrics = mini_artifacts.evaluate_model(model, trace, "exact")
        assert np.isfinite(metrics["median"])

    def test_fig10a_on_mini(self, mini_artifacts):
        rows = exp_fig10a_amortization(mini_artifacts, max_unseen=5)
        assert len(rows) == 5
        assert rows[0]["zero_shot_training_queries"] == \
            2 * mini_artifacts.config.queries_per_db

    def test_imdb_eval_trace_cached(self, mini_artifacts):
        t1 = mini_artifacts.imdb_eval_trace("job_light")
        t2 = mini_artifacts.imdb_eval_trace("job_light")
        assert t1 is t2
        assert len(t1) == 70
