"""Tests for the traditional estimator, cost model, and planner."""

import numpy as np
import pytest

from repro.cardest import TraditionalEstimator
from repro.optimizer import (CostParameters, PlanNode, PlannerConfig,
                             annotate_costs, plan_query)
from repro.sql import (AggregateSpec, Comparison, JoinEdge, PredOp, Query,
                       conjunction, evaluate_predicate)


@pytest.fixture(scope="module")
def estimator():
    return TraditionalEstimator()


class TestTraditionalEstimator:
    def test_no_predicate_full_table(self, toy_db, estimator):
        assert estimator.scan_rows(toy_db, "orders", None) == 2000

    def test_eq_selectivity_via_mcv(self, toy_db, estimator):
        pred = Comparison("orders", "status", PredOp.EQ, "open")
        est = estimator.scan_rows(toy_db, "orders", pred)
        true = evaluate_predicate(pred, toy_db.table("orders")).sum()
        assert est == pytest.approx(true, rel=0.15)

    def test_range_selectivity_reasonable(self, toy_db, estimator):
        pred = Comparison("customers", "age", PredOp.LT, 40)
        est = estimator.scan_rows(toy_db, "customers", pred)
        true = evaluate_predicate(pred, toy_db.table("customers")).sum()
        assert est == pytest.approx(true, rel=0.35)

    def test_null_selectivities(self, toy_db, estimator):
        frac = toy_db.column_stats("orders", "amount").null_frac
        pred = Comparison("orders", "amount", PredOp.IS_NULL)
        assert estimator.predicate_selectivity(toy_db, pred) == pytest.approx(frac)
        pred_not = Comparison("orders", "amount", PredOp.IS_NOT_NULL)
        assert estimator.predicate_selectivity(toy_db, pred_not) == pytest.approx(1 - frac)

    def test_and_independence(self, toy_db, estimator):
        p1 = Comparison("orders", "priority", PredOp.EQ, 1)
        p2 = Comparison("orders", "status", PredOp.EQ, "open")
        s1 = estimator.predicate_selectivity(toy_db, p1)
        s2 = estimator.predicate_selectivity(toy_db, p2)
        both = estimator.predicate_selectivity(toy_db, conjunction([p1, p2]))
        assert both == pytest.approx(s1 * s2)

    def test_in_sums_equalities(self, toy_db, estimator):
        single = estimator.predicate_selectivity(
            toy_db, Comparison("orders", "status", PredOp.EQ, "open"))
        multi = estimator.predicate_selectivity(
            toy_db, Comparison("orders", "status", PredOp.IN, ["open", "shipped"]))
        assert multi > single

    def test_unknown_literal_defaults(self, toy_db, estimator):
        pred = Comparison("customers", "category", PredOp.EQ, "unobtainium")
        sel = estimator.predicate_selectivity(toy_db, pred)
        assert 0.0 <= sel <= 0.02

    def test_fk_join_card(self, toy_db, estimator):
        rows = estimator.join_rows(
            toy_db, {"orders", "customers"},
            [JoinEdge("orders", "customer_id", "customers", "id")], {})
        # FK join: |orders| rows expected.
        assert rows == pytest.approx(2000, rel=0.1)

    def test_query_rows_single_table(self, toy_db, estimator, filtered_query):
        assert estimator.query_rows(toy_db, filtered_query) > 0


class TestPlanner:
    def test_single_table_plan(self, toy_db, simple_count_query):
        plan = plan_query(toy_db, simple_count_query)
        ops = [n.op_name for n in plan.iter_nodes()]
        assert ops[-1] == "Aggregate"
        assert "SeqScan" in ops

    def test_join_plan_covers_all_tables(self, toy_db, join_query):
        plan = plan_query(toy_db, join_query)
        assert plan.children[0].base_tables() == {"orders", "customers", "regions"}
        joins = [n for n in plan.iter_nodes() if n.is_join]
        assert len(joins) == 2

    def test_costs_annotated_monotone(self, toy_db, join_query):
        plan = plan_query(toy_db, join_query)
        for node in plan.iter_nodes():
            assert node.est_cost >= node.est_self_cost >= 0.0
            for child in node.children:
                assert node.est_cost >= child.est_cost

    def test_index_scan_chosen_for_selective_filter(self, toy_db):
        toy_db.create_index("orders", "priority")
        try:
            query = Query(tables=("orders",),
                          filters={"orders": Comparison("orders", "priority",
                                                        PredOp.EQ, 0)},
                          aggregates=(AggregateSpec("count"),))
            config = PlannerConfig(index_selectivity_threshold=0.5,
                                   enable_parallel=False)
            plan = plan_query(toy_db, query, config=config)
            ops = [n.op_name for n in plan.iter_nodes()]
            assert "IndexScan" in ops
        finally:
            toy_db.drop_index("orders", "priority")

    def test_indexes_disabled(self, toy_db):
        toy_db.create_index("orders", "priority")
        try:
            query = Query(tables=("orders",),
                          filters={"orders": Comparison("orders", "priority",
                                                        PredOp.EQ, 0)},
                          aggregates=(AggregateSpec("count"),))
            plan = plan_query(toy_db, query,
                              config=PlannerConfig(enable_indexes=False))
            assert all(n.op_name != "IndexScan" for n in plan.iter_nodes())
        finally:
            toy_db.drop_index("orders", "priority")

    def test_nested_loop_for_small_outer(self, toy_db):
        toy_db.create_index("orders", "customer_id")
        try:
            query = Query(
                tables=("customers", "orders"),
                joins=(JoinEdge("orders", "customer_id", "customers", "id"),),
                filters={"customers": Comparison("customers", "category",
                                                 PredOp.EQ, "gold")},
                aggregates=(AggregateSpec("count"),))
            plan = plan_query(toy_db, query)
            ops = [n.op_name for n in plan.iter_nodes()]
            assert "NestedLoopJoin" in ops
            assert "IndexScan" in ops
        finally:
            toy_db.drop_index("orders", "customer_id")

    def test_group_by_uses_hash_aggregate(self, toy_db):
        query = Query(tables=("orders",),
                      aggregates=(AggregateSpec("count"),),
                      group_by=(("orders", "status"),))
        plan = plan_query(toy_db, query)
        assert plan.op_name == "HashAggregate"
        assert plan.est_rows <= 3.0

    def test_order_by_adds_sort(self, toy_db):
        query = Query(tables=("orders",),
                      aggregates=(AggregateSpec("count"),),
                      group_by=(("orders", "status"),),
                      order_by=(("orders", "status"),))
        plan = plan_query(toy_db, query)
        assert plan.op_name == "Sort"

    def test_parallel_scan_for_large_table(self, gen_db):
        fact = gen_db.schema.table_names[0]
        pages = gen_db.table_stats(fact).relpages
        config = PlannerConfig(min_parallel_pages=min(pages, 10))
        query = Query(tables=(fact,), aggregates=(AggregateSpec("count"),))
        plan = plan_query(gen_db, query, config=config)
        ops = {n.op_name: n for n in plan.iter_nodes()}
        assert "Gather" in ops
        assert ops["SeqScan"].workers >= 2

    def test_explain_smoke(self, toy_db, join_query):
        plan = plan_query(toy_db, join_query)
        text = plan.explain()
        assert "HashJoin" in text or "NestedLoopJoin" in text
        assert "rows=" in text

    def test_generated_db_plans(self, gen_db):
        """Planner handles every table of a generated database."""
        for table in gen_db.schema.table_names:
            query = Query(tables=(table,), aggregates=(AggregateSpec("count"),))
            plan = plan_query(gen_db, query)
            assert plan.est_cost > 0


class TestCostModel:
    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            PlanNode("FlumpScan")

    def test_bigger_table_costs_more(self, toy_db):
        small = plan_query(toy_db, Query(tables=("customers",),
                                         aggregates=(AggregateSpec("count"),)))
        large = plan_query(toy_db, Query(tables=("orders",),
                                         aggregates=(AggregateSpec("count"),)))
        assert large.est_cost > small.est_cost

    def test_cost_parameters_scale(self, toy_db, simple_count_query):
        cheap = plan_query(toy_db, simple_count_query,
                           config=PlannerConfig(cost_parameters=CostParameters()))
        expensive_params = CostParameters(seq_page_cost=10.0, cpu_tuple_cost=0.1)
        expensive = plan_query(toy_db, simple_count_query,
                               config=PlannerConfig(cost_parameters=expensive_params))
        assert expensive.est_cost > cheap.est_cost
