"""Tests for the synthetic data generator and the 20-database benchmark."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen import (BENCHMARK_NAMES, benchmark_spec, correlated_from,
                           generate_database, grow_database,
                           make_benchmark_database, make_vocabulary,
                           random_database_spec, zipf_codes)
from repro.storage import DataType


class TestDistributions:
    def test_zipf_uniform_when_no_skew(self):
        rng = np.random.default_rng(0)
        codes = zipf_codes(rng, 20_000, 10, skew=0.0)
        _, counts = np.unique(codes, return_counts=True)
        assert counts.min() > 1500  # roughly uniform

    def test_zipf_concentrates_with_skew(self):
        rng = np.random.default_rng(0)
        codes = zipf_codes(rng, 20_000, 100, skew=1.5)
        _, counts = np.unique(codes, return_counts=True)
        top = np.sort(counts)[::-1]
        assert top[0] > 0.2 * 20_000  # heavy head

    def test_zipf_rejects_bad_distinct(self):
        with pytest.raises(ValueError):
            zipf_codes(np.random.default_rng(0), 10, 0, 0.5)

    def test_correlated_strength(self):
        rng = np.random.default_rng(1)
        base = rng.normal(size=5000)
        strong = correlated_from(rng, base, strength=0.95)
        weak = correlated_from(rng, base, strength=0.05)
        assert abs(np.corrcoef(base, strong)[0, 1]) > 0.9
        assert abs(np.corrcoef(base, weak)[0, 1]) < 0.3

    def test_vocabulary_unique_and_sized(self):
        vocab = make_vocabulary(np.random.default_rng(0), 200)
        assert len(vocab) == 200
        assert len(set(vocab)) == 200


class TestGenerator:
    def test_deterministic_generation(self):
        spec = random_database_spec("db", seed=42, base_rows=500)
        db1 = generate_database(spec)
        db2 = generate_database(spec)
        for name in db1.tables:
            for col_name, col in db1.table(name).columns.items():
                np.testing.assert_array_equal(
                    col.values, db2.table(name).column(col_name).values)

    def test_fk_integrity(self):
        spec = random_database_spec("db", seed=7, layout="snowflake",
                                    base_rows=800, n_tables=6)
        db = generate_database(spec)
        for fk in db.schema.foreign_keys:
            child = db.column(fk.child_table, fk.child_column).values
            n_parent = len(db.table(fk.parent_table))
            valid = child[~np.isnan(child)]
            assert valid.min(initial=0) >= 0
            assert valid.max(initial=0) < n_parent

    def test_pk_is_rowid(self):
        db = generate_database(random_database_spec("db", seed=3, base_rows=300))
        for table in db.tables.values():
            np.testing.assert_array_equal(table.column("id").values,
                                          np.arange(len(table)))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000),
           layout=st.sampled_from(["star", "snowflake", "chain", "random"]))
    def test_layouts_are_connected(self, seed, layout):
        import networkx as nx
        spec = random_database_spec("db", seed=seed, layout=layout,
                                    base_rows=100, n_tables=5)
        db = generate_database(spec)
        graph = db.schema.join_graph()
        assert nx.is_connected(nx.Graph(graph))

    def test_star_layout_shape(self):
        spec = random_database_spec("db", seed=1, layout="star",
                                    base_rows=200, n_tables=5)
        fact = spec.tables[0]
        assert len(fact.parents) == 4
        assert all(not t.parents for t in spec.tables[1:])

    def test_chain_layout_shape(self):
        spec = random_database_spec("db", seed=1, layout="chain",
                                    base_rows=200, n_tables=4)
        assert [len(t.parents) for t in spec.tables] == [1, 1, 1, 0]

    def test_grow_database(self):
        db = generate_database(random_database_spec("db", seed=5, base_rows=400))
        db.create_index(db.schema.table_names[0], "id")
        grown = grow_database(db, 2.0)
        for name in db.tables:
            assert len(grown.table(name)) == 2 * len(db.table(name))
        assert grown.index_on(db.schema.table_names[0], "id") is not None

    def test_grow_requires_genspec(self):
        db = generate_database(random_database_spec("db", seed=5, base_rows=100))
        db.genspec = None
        with pytest.raises(ValueError):
            grow_database(db, 2.0)


class TestBenchmark20:
    def test_all_twenty_names(self):
        assert len(BENCHMARK_NAMES) == 20
        assert "imdb" in BENCHMARK_NAMES and "tpc_h" in BENCHMARK_NAMES

    def test_specs_vary_in_tables(self):
        sizes = {len(benchmark_spec(n, base_rows=100).tables)
                 for n in BENCHMARK_NAMES}
        assert len(sizes) >= 3

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            benchmark_spec("postgres_prod")

    def test_imdb_generation_and_types(self):
        db = make_benchmark_database("imdb", base_rows=400)
        assert db.name == "imdb"
        dtypes = {col.dtype for t in db.tables.values()
                  for col in t.columns.values()}
        assert DataType.INT in dtypes
        # benchmark profile guarantees several tables
        assert len(db.tables) == 8

    def test_synthetic_dbs_low_complexity(self):
        """SSB should have mild skew: its fact FK columns near-uniform."""
        db = make_benchmark_database("ssb", base_rows=2000)
        fact = db.table("fact")
        fk_cols = [fk.child_column for fk in db.schema.foreign_keys
                   if fk.child_table == "fact"]
        assert fk_cols
        for col_name in fk_cols:
            values = fact.column(col_name).non_null()
            _, counts = np.unique(values, return_counts=True)
            # max frequency should not dwarf the mean frequency too much
            assert counts.max() < 12 * counts.mean()


class TestCorrelatedFanouts:
    """The shared-popularity mechanism behind M:N join expansion."""

    def test_zipf_accepts_fixed_permutation(self):
        rng = np.random.default_rng(0)
        perm = np.arange(10)[::-1].copy()
        codes = zipf_codes(rng, 5000, 10, skew=1.2, permutation=perm)
        # rank 1 maps through perm[0] = 9: code 9 must be the most frequent
        values, counts = np.unique(codes, return_counts=True)
        assert values[np.argmax(counts)] == 9

    def test_zipf_rejects_bad_permutation(self):
        with pytest.raises(ValueError):
            zipf_codes(np.random.default_rng(0), 10, 5, 0.5,
                       permutation=np.arange(3))

    def test_children_share_hot_parents(self):
        """Two children of one parent are hot on the same parent rows."""
        spec = random_database_spec("hub", seed=202, layout="random",
                                    base_rows=1500, n_tables=5,
                                    complexity=0.9)
        db = generate_database(spec)
        by_parent = {}
        for fk in db.schema.foreign_keys:
            by_parent.setdefault(fk.parent_table, []).append(fk)
        shared = [(p, e) for p, e in by_parent.items() if len(e) >= 2]
        if not shared:
            pytest.skip("seed produced no shared parent")
        parent, edges = shared[0]

        def top_parents(fk, k=10):
            vals = db.column(fk.child_table, fk.child_column).non_null()
            values, counts = np.unique(vals, return_counts=True)
            return set(values[np.argsort(counts)[::-1][:k]])

        overlap = top_parents(edges[0]) & top_parents(edges[1])
        assert len(overlap) >= 3  # hot rows coincide across children

    def test_grown_database_same_distribution_per_column(self):
        """Per-column RNG streams: growth never perturbs other columns."""
        spec = random_database_spec("stable", seed=303, base_rows=400,
                                    n_tables=3, complexity=0.6)
        db = generate_database(spec)
        grown = grow_database(db, 2.0)
        for name, table in db.tables.items():
            for col_name, col in table.columns.items():
                if col_name == "id" or col_name.endswith("_id") \
                        or not col.dtype.is_numeric:
                    continue  # key domains scale with table size by design
                old, new = col.non_null(), grown.table(name).column(col_name).non_null()
                if old.size > 50 and new.size > 50:
                    assert abs(new.mean() - old.mean()) <= 0.5 * (old.std() + 1.0)
