"""Tests for predicates, queries, and vectorized predicate evaluation."""

import numpy as np
import pytest

from repro.sql import (AggregateSpec, BooleanPredicate, Comparison, JoinEdge,
                       PredOp, Query, conjunction, disjunction,
                       evaluate_predicate, iter_predicate_nodes,
                       like_pattern_complexity, like_to_regex,
                       matching_codes_for_like, predicate_columns)


class TestPredicateConstruction:
    def test_comparison_requires_literal(self):
        with pytest.raises(ValueError):
            Comparison("t", "c", PredOp.EQ)

    def test_null_tests_take_no_literal(self):
        pred = Comparison("t", "c", PredOp.IS_NULL)
        assert pred.literal is None

    def test_in_requires_list(self):
        with pytest.raises(ValueError):
            Comparison("t", "c", PredOp.IN, 5)

    def test_like_requires_string(self):
        with pytest.raises(ValueError):
            Comparison("t", "c", PredOp.LIKE, 7)

    def test_boolean_needs_two_children(self):
        with pytest.raises(ValueError):
            BooleanPredicate(PredOp.AND, (Comparison("t", "c", PredOp.EQ, 1),))

    def test_comparison_rejects_boolean_op(self):
        with pytest.raises(ValueError):
            Comparison("t", "c", PredOp.AND, 1)

    def test_conjunction_collapses(self):
        pred = Comparison("t", "c", PredOp.EQ, 1)
        assert conjunction([]) is None
        assert conjunction([pred]) is pred
        both = conjunction([pred, Comparison("t", "d", PredOp.GT, 0)])
        assert isinstance(both, BooleanPredicate) and both.op == PredOp.AND

    def test_disjunction(self):
        preds = [Comparison("t", "c", PredOp.EQ, i) for i in range(3)]
        either = disjunction(preds)
        assert either.op == PredOp.OR and len(either.children) == 3

    def test_literal_features(self):
        assert Comparison("t", "c", PredOp.IN, [1, 2, 3]).literal_feature == 3.0
        like = Comparison("t", "c", PredOp.LIKE, "%abc_")
        assert like.literal_feature == pytest.approx(2 + 0.5)
        assert like_pattern_complexity("abc") == pytest.approx(0.3)

    def test_iteration_and_columns(self):
        tree = conjunction([
            Comparison("a", "x", PredOp.EQ, 1),
            disjunction([Comparison("a", "y", PredOp.GT, 2),
                         Comparison("b", "z", PredOp.IS_NULL)]),
        ])
        nodes = list(iter_predicate_nodes(tree))
        assert len(nodes) == 5  # AND, x, OR, y, z
        assert predicate_columns(tree) == {("a", "x"), ("a", "y"), ("b", "z")}


class TestQueryValidation:
    def test_query_connectivity_enforced(self):
        with pytest.raises(ValueError):
            Query(tables=("a", "b"), joins=())

    def test_join_tables_must_exist(self):
        with pytest.raises(ValueError):
            Query(tables=("a",), joins=(JoinEdge("a", "x", "b", "id"),))

    def test_filter_table_must_exist(self):
        with pytest.raises(ValueError):
            Query(tables=("a",), filters={"b": Comparison("b", "c", PredOp.EQ, 1)})

    def test_aggregate_validation(self):
        with pytest.raises(ValueError):
            AggregateSpec("median")
        with pytest.raises(ValueError):
            AggregateSpec("sum")  # needs a column

    def test_referenced_columns(self, join_query):
        assert "customer_id" in join_query.referenced_columns("orders")
        assert "amount" in join_query.referenced_columns("orders")
        assert "id" in join_query.referenced_columns("customers")

    def test_describe_smoke(self, join_query):
        sql = join_query.describe()
        assert "SELECT AVG(orders.amount)" in sql
        assert "orders.customer_id=customers.id" in sql


class TestLikeMatching:
    def test_like_to_regex(self):
        assert like_to_regex("ab%").match("abcdef")
        assert not like_to_regex("ab%").match("xab")
        assert like_to_regex("a_c").match("abc")
        assert not like_to_regex("a_c").match("abbc")
        assert like_to_regex("100%").match("100x")  # % escaping sanity

    def test_matching_codes(self):
        codes = matching_codes_for_like(["apple", "apricot", "banana"], "ap%")
        assert list(codes) == [0, 1]


class TestEvaluation:
    def test_numeric_operators(self, toy_db):
        orders = toy_db.table("orders")
        for op, fn in [(PredOp.LT, np.less), (PredOp.LEQ, np.less_equal),
                       (PredOp.GT, np.greater), (PredOp.GEQ, np.greater_equal)]:
            mask = evaluate_predicate(Comparison("orders", "priority", op, 2), orders)
            values = orders.column("priority").values
            np.testing.assert_array_equal(mask, fn(values, 2))

    def test_null_comparisons_are_false(self, toy_db):
        orders = toy_db.table("orders")
        amount = orders.column("amount")
        mask = evaluate_predicate(
            Comparison("orders", "amount", PredOp.GT, -1e12), orders)
        assert not mask[amount.null_mask].any()
        assert mask[~amount.null_mask].all()

    def test_is_null(self, toy_db):
        orders = toy_db.table("orders")
        mask = evaluate_predicate(Comparison("orders", "amount", PredOp.IS_NULL), orders)
        np.testing.assert_array_equal(mask, orders.column("amount").null_mask)

    def test_categorical_eq_and_in(self, toy_db):
        customers = toy_db.table("customers")
        gold = evaluate_predicate(
            Comparison("customers", "category", PredOp.EQ, "gold"), customers)
        values = customers.column("category").values
        np.testing.assert_array_equal(gold, values == 0)
        both = evaluate_predicate(
            Comparison("customers", "category", PredOp.IN, ["gold", "silver"]),
            customers)
        np.testing.assert_array_equal(both, (values == 0) | (values == 1))

    def test_eq_unknown_literal_matches_nothing(self, toy_db):
        mask = evaluate_predicate(
            Comparison("customers", "category", PredOp.EQ, "platinum"),
            toy_db.table("customers"))
        assert not mask.any()

    def test_like_on_dictionary(self, toy_db):
        customers = toy_db.table("customers")
        mask = evaluate_predicate(
            Comparison("customers", "category", PredOp.LIKE, "%ol%"), customers)
        values = customers.column("category").values
        np.testing.assert_array_equal(mask, values == 0)  # only "gold"
        neg = evaluate_predicate(
            Comparison("customers", "category", PredOp.NOT_LIKE, "%ol%"), customers)
        np.testing.assert_array_equal(neg, ~mask)

    def test_boolean_combinations(self, toy_db):
        orders = toy_db.table("orders")
        p1 = Comparison("orders", "priority", PredOp.EQ, 1)
        p2 = Comparison("orders", "status", PredOp.EQ, "open")
        both = evaluate_predicate(conjunction([p1, p2]), orders)
        either = evaluate_predicate(disjunction([p1, p2]), orders)
        m1 = evaluate_predicate(p1, orders)
        m2 = evaluate_predicate(p2, orders)
        np.testing.assert_array_equal(both, m1 & m2)
        np.testing.assert_array_equal(either, m1 | m2)

    def test_none_predicate_matches_all(self, toy_db):
        mask = evaluate_predicate(None, toy_db.table("orders"))
        assert mask.all()

    def test_string_range_lexicographic(self, toy_db):
        customers = toy_db.table("customers")
        mask = evaluate_predicate(
            Comparison("customers", "category", PredOp.LT, "gold"), customers)
        decoded = np.array(customers.column("category").decode())
        expected = np.array([d is not None and d < "gold" for d in decoded])
        np.testing.assert_array_equal(mask, expected)
