"""Tests for the physical-design extension: index workloads + advisor."""

import numpy as np
import pytest

from repro.core import TrainingConfig, ZeroShotCostModel
from repro.design import IndexAdvisor
from repro.executor import execute_plan, simulate_runtime_ms
from repro.optimizer import PlannerConfig, plan_query
from repro.sql import AggregateSpec, Comparison, JoinEdge, PredOp, Query
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


@pytest.fixture(scope="module")
def index_world(request):
    """A database plus a zero-shot model trained on index-mode traces."""
    db = request.getfixturevalue("gen_db")
    gen = WorkloadGenerator(db, WorkloadConfig(max_joins=2), seed=61)
    trace = generate_trace(db, gen.generate(120), index_mode=True, seed=3)
    config = TrainingConfig(hidden_dim=32, epochs=30, validation_fraction=0.0)
    model = ZeroShotCostModel.train([trace], {db.name: db}, cards="exact",
                                    config=config)
    return db, model


class TestIndexRuntimeTradeoffs:
    def test_index_scan_faster_for_selective_query(self, toy_db):
        """The simulator rewards indexes on selective predicates."""
        query = Query(tables=("orders",),
                      filters={"orders": Comparison("orders", "id",
                                                    PredOp.EQ, 17)},
                      aggregates=(AggregateSpec("count"),))
        config = PlannerConfig(enable_parallel=False)
        seq_plan = plan_query(toy_db, query, config=config)
        execute_plan(toy_db, seq_plan)
        seq_ms = simulate_runtime_ms(toy_db, seq_plan)

        toy_db.create_index("orders", "id")
        try:
            idx_plan = plan_query(toy_db, query, config=config)
            assert any(n.op_name == "IndexScan" for n in idx_plan.iter_nodes())
            execute_plan(toy_db, idx_plan)
            idx_ms = simulate_runtime_ms(toy_db, idx_plan)
        finally:
            toy_db.drop_index("orders", "id")
        assert idx_ms < seq_ms


class TestIndexAdvisor:
    def _workload(self, db, n=12):
        return WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                 seed=62).generate(n)

    def test_candidates_cover_fks_and_filters(self, index_world):
        db, model = index_world
        queries = self._workload(db)
        advisor = IndexAdvisor(model, cards="optimizer")
        candidates = advisor.candidate_indexes(db, queries)
        fk_cols = {(fk.child_table, fk.child_column)
                   for fk in db.schema.foreign_keys}
        assert fk_cols <= set(candidates)

    def test_recommendation_runs_and_creates_indexes(self, index_world):
        db, model = index_world
        queries = self._workload(db)
        advisor = IndexAdvisor(model, cards="optimizer")
        before = dict(db.indexes)
        try:
            choices = advisor.recommend(db, queries, max_indexes=2,
                                        min_saving_fraction=0.0)
            assert len(choices) <= 2
            for choice in choices:
                assert choice.predicted_total_ms <= choice.baseline_total_ms
                assert db.index_on(*choice.index) is not None
        finally:
            for key in list(db.indexes):
                if key not in before:
                    db.drop_index(*key)

    def test_predicted_workload_cost_positive(self, index_world):
        db, model = index_world
        advisor = IndexAdvisor(model, cards="optimizer")
        total = advisor.predicted_workload_ms(db, self._workload(db, 5))
        assert total > 0

    def test_unseen_physical_design_accuracy(self, index_world):
        """§7.4: model trained on index workloads predicts runtimes under a
        *new* set of indexes with reasonable accuracy."""
        db, model = index_world
        fk = db.schema.foreign_keys[0]
        db.create_index(fk.child_table, fk.child_column)
        try:
            queries = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                        seed=63).generate(30)
            trace = generate_trace(db, queries, seed=4)
            metrics = model.evaluate(trace, {db.name: db}, cards="exact")
            assert metrics["median"] < 2.5
        finally:
            db.drop_index(fk.child_table, fk.child_column)
