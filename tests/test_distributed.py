"""Tests for the distributed cloud-DW extension (§5.1)."""

import numpy as np
import pytest

from repro.core import TrainingConfig, ZeroShotCostModel, featurize_records
from repro.distributed import (ClusterConfig, distributed_storage_formats,
                               generate_distributed_trace,
                               plan_distributed_query,
                               simulate_distributed_runtime_ms)
from repro.executor import execute_plan
from repro.workloads import WorkloadConfig, WorkloadGenerator


class TestDistributedPlanner:
    def test_columnar_scans_with_column_sets(self, toy_db, join_query):
        plan = plan_distributed_query(toy_db, join_query)
        scans = [n for n in plan.iter_nodes() if n.op_name == "ColumnarScan"]
        assert len(scans) == 3
        for scan in scans:
            assert scan.scanned_columns
            assert scan.storage_format == "column"

    def test_shuffles_inserted_per_join(self, toy_db, join_query):
        plan = plan_distributed_query(toy_db, join_query)
        shuffles = [n for n in plan.iter_nodes()
                    if n.op_name in ("Broadcast", "Repartition")]
        joins = [n for n in plan.iter_nodes() if n.is_join]
        assert len(joins) == 2
        assert len(shuffles) >= len(joins)

    def test_small_build_side_broadcast(self, toy_db, join_query):
        cluster = ClusterConfig(broadcast_threshold_bytes=1e12)
        plan = plan_distributed_query(toy_db, join_query, cluster)
        kinds = {n.op_name for n in plan.iter_nodes()}
        assert "Broadcast" in kinds and "Repartition" not in kinds

    def test_large_build_side_repartition(self, toy_db, join_query):
        cluster = ClusterConfig(broadcast_threshold_bytes=0.0)
        plan = plan_distributed_query(toy_db, join_query, cluster)
        kinds = {n.op_name for n in plan.iter_nodes()}
        assert "Repartition" in kinds and "Broadcast" not in kinds

    def test_gather_at_root(self, toy_db, simple_count_query):
        plan = plan_distributed_query(toy_db, simple_count_query)
        assert plan.op_name == "Gather"

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=0)

    def test_storage_formats_helper(self, toy_db):
        formats = distributed_storage_formats(toy_db)
        assert set(formats.values()) == {"column"}


class TestDistributedRuntime:
    def _executed_plan(self, db, query, cluster=None):
        plan = plan_distributed_query(db, query, cluster)
        execute_plan(db, plan)
        return plan

    def test_runtime_reproducible(self, toy_db, join_query):
        plan = self._executed_plan(toy_db, join_query)
        a = simulate_distributed_runtime_ms(toy_db, plan)
        b = simulate_distributed_runtime_ms(toy_db, plan)
        assert a == pytest.approx(b)
        assert a > 0

    def test_more_nodes_faster_compute(self, gen_db):
        from repro.sql import AggregateSpec, Query
        fact = gen_db.schema.table_names[0]
        query = Query(tables=(fact,), aggregates=(AggregateSpec("count"),))
        small = ClusterConfig(n_nodes=2)
        large = ClusterConfig(n_nodes=16)
        plan_small = self._executed_plan(gen_db, query, small)
        plan_large = self._executed_plan(gen_db, query, large)
        ms_small = simulate_distributed_runtime_ms(gen_db, plan_small, small)
        ms_large = simulate_distributed_runtime_ms(gen_db, plan_large, large)
        assert ms_large < ms_small

    def test_broadcast_costs_scale_with_nodes(self, toy_db, join_query):
        cluster_small = ClusterConfig(n_nodes=2, broadcast_threshold_bytes=1e12)
        cluster_big = ClusterConfig(n_nodes=64, broadcast_threshold_bytes=1e12,
                                    scale_efficiency=0.0)
        plan1 = self._executed_plan(toy_db, join_query, cluster_small)
        plan2 = self._executed_plan(toy_db, join_query, cluster_big)
        # With scale_efficiency=0 compute does not shrink, so the broadcast
        # over many nodes dominates and the big cluster is slower.
        ms_small = simulate_distributed_runtime_ms(toy_db, plan1, cluster_small)
        ms_big = simulate_distributed_runtime_ms(toy_db, plan2, cluster_big)
        assert ms_big > ms_small


class TestDistributedZeroShot:
    def test_trace_and_model_end_to_end(self, gen_db, toy_db):
        """Zero-shot model trains on distributed traces of one DB and
        transfers to another — with shuffle/columnar nodes in the graphs."""
        train_queries = WorkloadGenerator(
            gen_db, WorkloadConfig(max_joins=2), seed=41).generate(60)
        train_trace = generate_distributed_trace(gen_db, train_queries, seed=1)
        test_queries = WorkloadGenerator(
            toy_db, WorkloadConfig(max_joins=2), seed=42).generate(25)
        test_trace = generate_distributed_trace(toy_db, test_queries, seed=2)

        dbs = {gen_db.name: gen_db, toy_db.name: toy_db}
        config = TrainingConfig(hidden_dim=24, epochs=25,
                                validation_fraction=0.0)
        model = ZeroShotCostModel.train([train_trace], dbs, cards="exact",
                                        config=config)
        graphs = featurize_records(
            list(test_trace), dbs, cards="exact",
            storage_formats=distributed_storage_formats(toy_db))
        metrics = model.evaluate(test_trace, dbs, cards="exact", graphs=graphs)
        assert np.isfinite(metrics["median"])
        assert metrics["median"] < 5.0
