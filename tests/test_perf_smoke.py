"""Tier-1 smoke test for the perf harness: every fast path must dispatch.

Runs ``benchmarks/perf/harness.py`` on a tiny corpus and asserts — via the
``repro.perfstats`` dispatch counters and the cache hit counters — that the
public API actually took the vectorized featurizer, the batched annotation,
the fingerprint cache, the graph-free inference path, the flat-parameter
Adam step, the flat early-stopping snapshot, the serving layer's
micro-batcher, and (on a warm re-run) the disk artifact store.  A regression that silently falls back to a loop
implementation fails here instead of only showing up as a slow benchmark
number.
"""

import sys
from pathlib import Path

import pytest

from repro import perfstats

HARNESS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "perf"
sys.path.insert(0, str(HARNESS_DIR))

import harness  # noqa: E402  (benchmarks/perf/harness.py)


@pytest.fixture(scope="module")
def tiny_corpus():
    return harness.build_plan_corpus(n_queries=10, seed=1, base_rows=400)


class TestHarnessSmoke:
    def test_corpus_generation_uses_trace_engine(self):
        """``generate_trace`` (and hence every corpus build) must run the
        batched stage-0 path: trace-level execution and batched runtime
        simulation, never the per-plan reference loops."""
        perfstats.reset()
        db, records = harness.build_plan_corpus(n_queries=8, seed=2,
                                                base_rows=400)
        counters = perfstats.snapshot()
        assert counters.get("trace.generate.batched", 0) >= 1
        assert counters.get("trace.generate.reference", 0) == 0
        assert counters.get("execute.trace.plans", 0) >= 8
        assert counters.get("simulate.batched", 0) >= 8

    def test_trace_execution_dispatches_engine(self, tiny_corpus):
        db, records = tiny_corpus
        plans = [r.plan for r in records]
        perfstats.reset()
        rate = harness.bench_trace_execution(db, plans, repeats=2)
        assert rate > 0
        counters = perfstats.snapshot()
        assert counters.get("execute.trace.plans", 0) >= 2 * len(plans)
        assert counters.get("execute.scan_cache.hit", 0) > 0
        assert counters.get("execute.join_index.hit", 0) > 0

    def test_runtime_simulation_dispatches_batched(self, tiny_corpus):
        db, records = tiny_corpus
        plans = [r.plan for r in records]
        perfstats.reset()
        rate = harness.bench_runtime_simulation(db, plans, repeats=2)
        assert rate > 0
        assert perfstats.snapshot().get("simulate.batched", 0) >= 2 * len(plans)

    def test_spn_learning_dispatches_vectorized(self, tiny_corpus):
        db, _ = tiny_corpus
        perfstats.reset()
        rate = harness.bench_spn_learning(db, repeats=1, max_rows=400)
        assert rate > 0
        counters = perfstats.snapshot()
        assert counters.get("spn.learn.vectorized", 0) >= len(db.tables)
        assert counters.get("spn.learn.reference", 0) == 0

    def test_featurization_dispatches_vectorized(self, tiny_corpus):
        db, records = tiny_corpus
        perfstats.reset()
        rate = harness.bench_featurization(db, records, repeats=1)
        assert rate > 0
        counters = perfstats.snapshot()
        assert counters.get("featurize.vectorized", 0) >= len(records)
        assert counters.get("featurize.reference", 0) == 0

    def test_annotation_dispatches_batched(self, tiny_corpus):
        db, records = tiny_corpus
        perfstats.reset()
        rate = harness.bench_annotation(db, records, repeats=1,
                                        sample_size=128)
        assert rate > 0
        counters = perfstats.snapshot()
        assert counters.get("annotate.batched", 0) >= len(records)
        assert counters.get("annotate.reference", 0) == 0

    def test_fingerprint_cache_hits_warm(self, tiny_corpus):
        db, records = tiny_corpus
        rate, stats = harness.bench_featurization_cached(db, records,
                                                         repeats=2)
        assert rate > 0
        # Warm passes must be pure lookups: at least 2 full rounds of hits.
        assert stats["hits"] >= 2 * len(records)
        assert stats["misses"] <= len(records)

    def test_inference_runs_graph_free_with_batch_cache_hits(self,
                                                             tiny_corpus):
        db, records = tiny_corpus
        import numpy as np
        from repro.core import featurize_records
        graphs = featurize_records(records, {db.name: db}, cards="exact")
        runtimes = np.array([r.runtime_ms for r in records])
        perfstats.reset()
        rate, stats = harness.bench_inference(graphs, runtimes, hidden_dim=16,
                                              repeats=3, use_cache=True)
        assert rate > 0
        assert perfstats.snapshot().get("model.graph_free_inference", 0) >= 3
        assert stats["hits"] >= 2  # warm BatchCache after the first pass

    def test_run_pipeline_reference_exercises_loop_specs(self, tiny_corpus):
        db, records = tiny_corpus
        perfstats.reset()
        harness.bench_featurization(db, records, repeats=1,
                                    use_reference=True)
        harness.bench_annotation(db, records, repeats=1, use_reference=True,
                                 sample_size=128)
        harness.bench_spn_learning(db, repeats=1, max_rows=400,
                                   use_reference=True)
        counters = perfstats.snapshot()
        assert counters.get("featurize.reference", 0) >= len(records)
        assert counters.get("annotate.reference", 0) >= len(records)
        assert counters.get("spn.learn.reference", 0) >= len(db.tables)
        # The reference trace-execution bench must stay on the per-plan
        # loop, never the context engine.
        plans = [r.plan for r in records]
        perfstats.reset()
        harness.bench_trace_execution(db, plans, repeats=1,
                                      use_reference=True)
        assert perfstats.snapshot().get("execute.trace.plans", 0) == 0

    def test_training_step_dispatches_flat_adam(self, tiny_corpus):
        db, records = tiny_corpus
        import numpy as np
        from repro.core import featurize_records
        graphs = featurize_records(records, {db.name: db}, cards="exact")
        runtimes = np.array([r.runtime_ms for r in records])
        perfstats.reset()
        rate = harness.bench_training_step(graphs, runtimes, hidden_dim=16,
                                           repeats=1, epochs=1)
        assert rate > 0
        counters = perfstats.snapshot()
        # Every step must take the whole-buffer flat path (all node types
        # present per batch here), never the per-parameter loops.
        assert counters.get("optim.flat_step", 0) > 0
        assert counters.get("optim.reference_step", 0) == 0

    def test_train_epoch_uses_flat_snapshots(self, tiny_corpus):
        db, records = tiny_corpus
        import numpy as np
        from repro.core import featurize_records
        graphs = featurize_records(records, {db.name: db}, cards="exact")
        runtimes = np.array([r.runtime_ms for r in records])
        perfstats.reset()
        rate = harness.bench_train_epoch(graphs, runtimes, hidden_dim=16,
                                         repeats=1, epochs=2)
        assert rate > 0
        counters = perfstats.snapshot()
        assert counters.get("optim.flat_step", 0) > 0
        # Early-stopping bookkeeping must run the flat-buffer snapshot, not
        # the per-tensor state_dict copy.
        assert counters.get("training.flat_snapshot", 0) > 0

    def test_serving_bench_dispatches_micro_batches(self, tiny_corpus):
        """The serving bench must push every request through the server's
        micro-batch dispatch and the graph-free inference path, shedding
        nothing.  (The batched-vs-single speedup itself is wall-clock and
        scale-dependent, so it is recorded by the harness rather than
        asserted here; tests/test_serving.py pins coalescing behavior
        deterministically.)"""
        db, records = tiny_corpus
        perfstats.reset()
        single, batched, extras = harness.bench_serving(
            db, records, hidden_dim=16, n_clients=2, repeats=1,
            max_batch_size=8)
        assert single > 0 and batched > 0
        counters = perfstats.snapshot()
        assert counters.get("serve.batch.count", 0) > 0
        assert counters.get("serve.batch.requests", 0) >= 2 * len(records)
        assert counters.get("serve.cache.miss", 0) >= 2 * len(records)
        assert counters.get("model.graph_free_inference", 0) > 0
        assert counters.get("serve.shed.count", 0) == 0

    def test_experiment_warm_start_hits_artifact_store(self, tmp_path):
        perfstats.reset()
        cold_s, warm_s, stats = harness.bench_experiment_warm_start(
            store_dir=tmp_path, n_queries=6, epochs=2, hidden_dim=8)
        assert cold_s > 0 and warm_s > 0
        # The warm session must be served entirely from the store: database
        # generation, trace execution, featurization and training skipped.
        assert stats["misses"] == 0
        assert stats["hits"] >= 5
        counters = perfstats.snapshot()
        assert counters.get("store.hit.database", 0) >= 2
        assert counters.get("store.hit.trace", 0) >= 1
        assert counters.get("store.hit.graphs", 0) >= 1
        assert counters.get("store.hit.model", 0) >= 1


class TestFleetChaosSmoke:
    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="the serving fleet requires the fork start method")
    def test_fleet_chaos_bench_exercises_liveness_plane(self):
        """bench_fleet_chaos must drive every PR-9 mechanism: the hang is
        detected and killed (``fleet.hang.*``), stragglers are hedged
        (``fleet.hedge.*``), and the priority-classed overload plane
        sheds or browns out under 2x saturation
        (``serve.shed.priority.*`` / ``fleet.brownout.count``)."""
        db, records = harness.build_plan_corpus(n_queries=48, seed=3,
                                                base_rows=400)
        perfstats.reset()
        results = harness.bench_fleet_chaos(db, records, hidden_dim=16,
                                            rounds=2, seed=3, fault_seed=4)
        assert results["failures"] == []
        counters = perfstats.snapshot()
        assert counters.get("fleet.hang.detected", 0) >= 1
        assert counters.get("fleet.hang.killed", 0) >= 1
        assert counters.get("fleet.hedge.sent", 0) >= 1
        shed_or_brownout = (
            counters.get("serve.shed.priority.high", 0)
            + counters.get("serve.shed.priority.normal", 0)
            + counters.get("serve.shed.priority.low", 0)
            + counters.get("fleet.brownout.count", 0))
        assert shed_or_brownout >= 1
        assert results["chaos"]["availability"] >= 0.99
        assert results["overload"]["high_availability"] >= 0.99
