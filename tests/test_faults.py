"""Fault-injection plane and self-healing serving.

The chaos contract under test, end to end:

* the :class:`FaultSchedule` replays bit-identically (same seed + same
  per-point call sequences → same faults),
* corrupt store payloads are caught by checksum and quarantined — never
  returned, never deleted blind when forensics matter,
* registry hydration failures quarantine the damaged version and
  re-resolve the manifest to the previous good checkpoint,
* the hardened server retries with backoff, isolates poisoned requests by
  bisection, enforces deadlines, survives batcher crashes with exactly-once
  re-enqueue, and degrades to the flagged analytical fallback behind a
  per-deployment circuit breaker,
* every ``DONE`` value stays bit-identical to a direct
  ``predict_runtimes`` call no matter which faults fired on the way.
"""

import pickle
import time

import numpy as np
import pytest

from repro import perfstats
from repro.bench import ArtifactStore
from repro.core import TrainingConfig, ZeroShotCostModel, featurize_records
from repro.core.model import ZeroShotModel
from repro.core.training import predict_runtimes
from repro.datagen import generate_database, random_database_spec
from repro.featurization import FeatureScalers, TargetScaler
from repro.optimizer import AnalyticalCostModel
from repro.robustness.faults import (FaultSchedule, FaultSpec, InjectedFault,
                                     POINTS, check, corrupt, inject)
from repro.serving import (DeadlineExceededError, DegradedResponseError,
                           HydrationError, LoadConfig, ModelRegistry,
                           PredictorServer, RequestStatus, RoutingError,
                           ServerConfig, run_load)
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


# ----------------------------------------------------------------------
# Shared world: one database, one executed workload, one model
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def world():
    spec = random_database_spec("chaos_db", seed=31, layout="snowflake",
                                base_rows=400, n_tables=4, complexity=0.6)
    db = generate_database(spec)
    queries = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                seed=7).generate(14)
    records = list(generate_trace(db, queries, seed=7))
    dbs = {db.name: db}
    graphs = featurize_records(records, dbs, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records])
    model = ZeroShotModel(hidden_dim=24, seed=0).eval()
    model.to(np.dtype("float32"))
    cost_model = ZeroShotCostModel(
        model, FeatureScalers().fit(graphs), TargetScaler().fit(runtimes),
        TrainingConfig(hidden_dim=24, dtype="float32"))
    direct = predict_runtimes(cost_model.model, graphs,
                              cost_model.feature_scalers,
                              cost_model.target_scaler, batch_cache=False)
    return {"db": db, "dbs": dbs, "records": records, "graphs": graphs,
            "runtimes": runtimes, "model": cost_model,
            "direct": np.asarray(direct, dtype=float)}


def _registry(world, tmp_path):
    registry = ModelRegistry(ArtifactStore(tmp_path))
    registry.publish("chaos", world["model"], dbs=[world["db"]],
                     default=True)
    return registry


def _server(world, registry, **overrides):
    defaults = dict(max_batch_size=4, max_delay_ms=1.0,
                    retry_backoff_ms=0.2)
    defaults.update(overrides)
    return PredictorServer(registry, world["dbs"],
                           ServerConfig(**defaults))


# ----------------------------------------------------------------------
# The schedule itself
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_replays_bit_identically(self):
        """Same seed + same per-point call sequence → identical decisions,
        regardless of wall-clock or interleaving with other points."""
        specs = [FaultSpec("serve.infer", rate=0.3),
                 FaultSpec("serve.featurize", rate=0.2, max_faults=3)]
        decisions = []
        for _ in range(2):
            schedule = FaultSchedule(specs, seed=42)
            run = []
            for i in range(50):
                run.append(schedule.decide("serve.infer") is not None)
                if i % 3 == 0:  # interleaved calls at another point
                    run.append(
                        ("f", schedule.decide("serve.featurize") is not None))
            decisions.append((run, schedule.stats()))
        assert decisions[0] == decisions[1]
        assert decisions[0][1]["serve.infer"]["calls"] == 50

    def test_points_have_independent_streams(self):
        """Extra calls at one point never shift another point's stream."""
        spec = [FaultSpec("serve.infer", rate=0.5)]
        a = FaultSchedule(spec, seed=1)
        b = FaultSchedule(spec + [FaultSpec("serve.batcher", rate=0.5)],
                          seed=1)
        run_a = [a.decide("serve.infer") is not None for _ in range(40)]
        run_b = []
        for _ in range(40):
            b.decide("serve.batcher")
            run_b.append(b.decide("serve.infer") is not None)
        assert run_a == run_b

    def test_exhausted_spec_does_not_shift_later_draws(self):
        """A spec hitting max_faults keeps consuming draws, so the calls
        after exhaustion see the same faults as in a run without a cap."""
        uncapped = FaultSchedule([FaultSpec("serve.infer", rate=0.4)], seed=9)
        capped = FaultSchedule([FaultSpec("serve.infer", rate=0.4,
                                          max_faults=2)], seed=9)
        pattern_uncapped = [uncapped.decide("serve.infer") is not None
                            for _ in range(60)]
        pattern_capped = [capped.decide("serve.infer") is not None
                          for _ in range(60)]
        fired = 0
        for raw, seen in zip(pattern_uncapped, pattern_capped):
            if raw and fired < 2:
                assert seen
                fired += 1
            else:
                assert not seen

    def test_skip_calls_and_targeted_keys(self):
        schedule = FaultSchedule(
            [FaultSpec("serve.featurize", keys={"poison"}, skip_calls=2)],
            seed=0)
        assert schedule.decide("serve.featurize", keys=("poison",)) is None
        assert schedule.decide("serve.featurize", keys=("clean",)) is None
        assert schedule.decide("serve.featurize",
                               keys=("clean", "poison")) is not None
        assert schedule.decide("serve.featurize", keys=("clean",)) is None

    def test_corrupt_damages_deterministically(self):
        schedule = FaultSchedule(
            [FaultSpec("store.read", rate=1.0, action="corrupt")], seed=0)
        payload = bytes(range(64))
        with inject(schedule):
            damaged = corrupt("store.read", payload)
        assert damaged != payload
        assert len(damaged) == len(payload)
        assert damaged[0] == payload[0] ^ 0xFF
        assert damaged[32] == payload[32] ^ 0xFF

    def test_check_raises_typed_error(self):
        class CustomError(ConnectionError):
            pass

        schedule = FaultSchedule(
            [FaultSpec("serve.infer", rate=1.0, error=CustomError,
                       message="boom")], seed=0)
        with inject(schedule):
            with pytest.raises(CustomError, match="boom"):
                check("serve.infer")

    def test_no_schedule_is_a_noop(self):
        check("serve.infer")
        assert corrupt("store.read", b"abc") == b"abc"

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultSpec("serve.nope", rate=1.0)
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec("serve.infer", action="explode")
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("serve.infer", rate=1.5)
        assert "serve.infer" in POINTS


# ----------------------------------------------------------------------
# Store checksums and quarantine
# ----------------------------------------------------------------------
class TestStoreFaults:
    def test_checksum_catches_on_disk_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("trace", "k1", {"rows": 7})
        path = tmp_path / "trace" / "k1.pkl"
        raw = bytearray(path.read_bytes())
        raw[20] ^= 0xFF  # damage the payload, not just the header
        path.write_bytes(bytes(raw))
        assert store.load("trace", "k1") is None
        assert store.corrupt == 1
        assert not path.exists()  # default policy: delete and rebuild

    def test_quarantine_preserves_evidence(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("deploy", "k2", b"checkpoint-bytes")
        path = tmp_path / "deploy" / "k2.pkl"
        damaged = bytearray(path.read_bytes())
        damaged[-1] ^= 0xFF
        path.write_bytes(bytes(damaged))
        assert store.load("deploy", "k2", on_corrupt="quarantine") is None
        assert not path.exists()
        moved = tmp_path / "quarantine" / "deploy" / "k2.pkl"
        assert moved.read_bytes() == bytes(damaged)  # bytes preserved exactly

    def test_injected_read_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("spn", "k3", [1, 2, 3])
        schedule = FaultSchedule(
            [FaultSpec("store.read", rate=1.0, action="corrupt",
                       max_faults=1)], seed=0)
        with inject(schedule):
            assert store.load("spn", "k3") is None   # corrupted read
        assert store.load("spn", "k3") is None       # entry was discarded
        store.save("spn", "k3", [1, 2, 3])
        assert store.load("spn", "k3") == [1, 2, 3]  # rebuilt cleanly

    def test_truncated_file_detected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("model", "k4", {"weights": [1.0]})
        path = tmp_path / "model" / "k4.pkl"
        path.write_bytes(path.read_bytes()[:10])  # shorter than the header
        assert store.load("model", "k4") is None
        assert store.corrupt == 1


# ----------------------------------------------------------------------
# Registry: hydration verification, quarantine, re-resolution, audit
# ----------------------------------------------------------------------
def _damage_checkpoint(tmp_path, key):
    path = tmp_path / "deploy" / f"{key}.pkl"
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))
    return path


class TestRegistryQuarantine:
    def test_corrupt_active_falls_back_to_previous_good(self, world,
                                                        tmp_path):
        registry = ModelRegistry(ArtifactStore(tmp_path))
        m1 = world["model"]
        model2 = ZeroShotModel(hidden_dim=24, seed=1).eval()
        model2.to(np.dtype("float32"))
        m2 = ZeroShotCostModel(model2, m1.feature_scalers, m1.target_scaler,
                               TrainingConfig(hidden_dim=24,
                                              dtype="float32"))
        registry.publish("m", m1, dbs=[world["db"]], default=True)
        d2 = registry.publish("m", m2, dbs=[world["db"]])
        assert registry.active("m").version == 2
        _damage_checkpoint(tmp_path, d2.checkpoint_key)
        # A fresh registry over the same store has a cold LRU, so load()
        # must hydrate from the damaged file.
        fresh = ModelRegistry(ArtifactStore(tmp_path))
        generation = fresh.generation
        with pytest.raises(HydrationError, match="quarantined"):
            fresh.load("m")
        assert fresh.quarantined_versions("m") == (2,)
        assert fresh.active("m").version == 1          # re-resolved
        assert fresh.generation > generation            # servers re-route
        quarantined = (tmp_path / "quarantine" / "deploy"
                       / f"{d2.checkpoint_key}.pkl")
        assert quarantined.exists()                     # never deleted blind
        # v1 still hydrates and predicts.
        loaded = fresh.load("m")
        assert loaded.state_digest() == registry.active("m").checkpoint_key \
            or loaded.state_digest() == fresh.active("m").checkpoint_key

    def test_injected_hydration_corruption(self, world, tmp_path):
        registry = _registry(world, tmp_path)
        deployment = registry.active("chaos")
        fresh = ModelRegistry(ArtifactStore(tmp_path))
        schedule = FaultSchedule(
            [FaultSpec("registry.hydrate", rate=1.0, action="corrupt",
                       max_faults=1)], seed=0)
        with inject(schedule):
            with pytest.raises(HydrationError):
                fresh.load(deployment=deployment)
        assert fresh.quarantined_versions("chaos") == (1,)
        assert fresh.active("chaos") is None  # no other version to serve

    def test_route_and_manifest_errors_are_typed(self, world, tmp_path):
        registry = ModelRegistry(ArtifactStore(tmp_path))
        with pytest.raises(RoutingError):
            registry.deployments("ghost")
        with pytest.raises(RoutingError):
            registry.quarantined_versions("ghost")
        assert registry.route("ab" * 16) is None  # no default: unroutable

    def test_verify_audit(self, world, tmp_path):
        registry = ModelRegistry(ArtifactStore(tmp_path))
        m1 = world["model"]
        registry.publish("good", m1, dbs=[world["db"]], default=True)
        model2 = ZeroShotModel(hidden_dim=24, seed=3).eval()
        model2.to(np.dtype("float32"))
        m2 = ZeroShotCostModel(model2, m1.feature_scalers, m1.target_scaler,
                               TrainingConfig(hidden_dim=24,
                                              dtype="float32"))
        d_bad = registry.publish("bad", m2, dbs=[])
        _damage_checkpoint(tmp_path, d_bad.checkpoint_key)
        fresh = ModelRegistry(ArtifactStore(tmp_path))
        report = fresh.verify()
        assert report["good"] == {1: "ok"}
        assert report["bad"] == {1: "missing-or-corrupt"}
        assert fresh.quarantined_versions("bad") == (1,)
        # A second audit reports the quarantine without re-reading disk.
        assert fresh.verify()["bad"] == {1: "quarantined"}

    def test_verify_catches_digest_mismatch(self, world, tmp_path):
        """A payload that unpickles fine but holds the wrong state (e.g. a
        mis-addressed write) fails the content-address check."""
        registry = _registry(world, tmp_path)
        key = registry.active("chaos").checkpoint_key
        other = ZeroShotModel(hidden_dim=24, seed=9).eval()
        other.to(np.dtype("float32"))
        m_other = ZeroShotCostModel(
            other, world["model"].feature_scalers,
            world["model"].target_scaler,
            TrainingConfig(hidden_dim=24, dtype="float32"))
        store = ArtifactStore(tmp_path)
        store.save("deploy", key, m_other.to_bytes())  # wrong bytes, valid pickle
        fresh = ModelRegistry(ArtifactStore(tmp_path))
        assert fresh.verify()["chaos"] == {1: "digest-mismatch"}


# ----------------------------------------------------------------------
# Hardened server: retry, bisection, deadlines
# ----------------------------------------------------------------------
class TestServerRetryAndBisection:
    def test_transient_fault_retried_bit_identical(self, world, tmp_path):
        registry = _registry(world, tmp_path)
        server = _server(world, registry, max_retries=2)
        schedule = FaultSchedule(
            [FaultSpec("serve.infer", rate=1.0, max_faults=1)], seed=0)
        plan = world["records"][0].plan
        with inject(schedule), server:
            value = server.submit(plan, world["db"].name).result(30.0)
        assert value == float(world["direct"][0])
        stats = server.stats()
        assert stats["retries"] >= 1
        assert stats["failed"] == 0

    def test_poisoned_request_fails_alone(self, world, tmp_path):
        """Targeted poisoning of one plan digest: the group's other
        requests complete bit-identically via bisection."""
        registry = _registry(world, tmp_path)
        server = _server(world, registry, max_batch_size=8, max_retries=1)
        db_name = world["db"].name
        plans = [r.plan for r in world["records"][:6]]
        poison_digest = server._plan_digest(db_name, plans[2])
        schedule = FaultSchedule(
            [FaultSpec("serve.featurize", keys={poison_digest})], seed=0)
        with inject(schedule):
            # Queue everything before starting so it lands in one batch.
            handles = [server.submit(p, db_name) for p in plans]
            with server:
                for handle in handles:
                    handle.wait(30.0)
        for i, handle in enumerate(handles):
            if i == 2:
                assert handle.status is RequestStatus.FAILED
                assert isinstance(handle.error, InjectedFault)
            else:
                assert handle.status is RequestStatus.DONE
                assert handle.value == float(world["direct"][i])
        assert server.stats()["bisects"] >= 1

    def test_deadline_enforced(self, world, tmp_path):
        registry = _registry(world, tmp_path)
        server = _server(world, registry, request_timeout_ms=1.0,
                         max_retries=5, retry_backoff_ms=5.0)
        schedule = FaultSchedule(
            [FaultSpec("serve.infer", rate=1.0)], seed=0)
        with inject(schedule), server:
            handle = server.submit(world["records"][0].plan,
                                   world["db"].name)
            handle.wait(30.0)
        assert handle.status is RequestStatus.FAILED
        assert isinstance(handle.error, DeadlineExceededError)

    def test_counters_flow(self, world, tmp_path):
        perfstats.reset()
        registry = _registry(world, tmp_path)
        server = _server(world, registry, max_retries=2)
        schedule = FaultSchedule(
            [FaultSpec("serve.infer", rate=1.0, max_faults=1)], seed=0)
        with inject(schedule), server:
            server.submit(world["records"][0].plan,
                          world["db"].name).result(30.0)
        counters = perfstats.snapshot()
        assert counters["serve.retry.count"] >= 1
        assert counters["serve.fault.model_path"] >= 1
        assert counters["fault.injected.serve.infer"] == 1


# ----------------------------------------------------------------------
# Supervised batcher: crash, exactly-once re-enqueue, replay
# ----------------------------------------------------------------------
class TestBatcherSupervision:
    def _run_with_crashes(self, world, tmp_path, seed):
        registry = _registry(world, tmp_path)
        server = _server(world, registry, max_batch_size=4)
        schedule = FaultSchedule(
            [FaultSpec("serve.batcher", rate=1.0, skip_calls=1,
                       max_faults=2)], seed=seed)
        db_name = world["db"].name
        plans = [r.plan for r in world["records"]]
        with inject(schedule):
            # Pre-queue every request: batch composition — and therefore
            # the per-point call sequence — is deterministic, so two runs
            # of this schedule replay the same crashes.
            handles = [server.submit(p, db_name) for p in plans]
            with server:
                for handle in handles:
                    assert handle.wait(30.0)
        return server, schedule, handles

    def test_crash_recovers_without_loss_or_duplication(self, world,
                                                        tmp_path):
        server, schedule, handles = self._run_with_crashes(world, tmp_path,
                                                           seed=0)
        stats = server.stats()
        assert stats["batcher_crashes"] == 2
        assert stats["requeued"] > 0
        # No lost requests: every handle resolved DONE with the exact
        # direct-prediction value.  No duplicated work: per-status counts
        # add up to the submitted total.
        for i, handle in enumerate(handles):
            assert handle.status is RequestStatus.DONE
            assert handle.value == float(world["direct"][i])
        assert stats["completed"] == len(handles)
        assert stats["requests"] == len(handles)
        assert schedule.stats()["serve.batcher"]["faults"] == 2

    def test_same_schedule_replays_identically(self, world, tmp_path):
        results = []
        for run in range(2):
            server, schedule, handles = self._run_with_crashes(
                world, tmp_path / str(run), seed=0)
            results.append((
                [(h.status.value, h.value) for h in handles],
                schedule.stats(),
                server.stats()["batcher_crashes"],
                server.stats()["requeued"],
            ))
        assert results[0] == results[1]


# ----------------------------------------------------------------------
# Circuit breaker and graceful degradation
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_degrades_flagged_then_recovers(self, world, tmp_path):
        registry = _registry(world, tmp_path)
        server = _server(world, registry, max_retries=0,
                         breaker_threshold=2, breaker_reset_ms=150.0)
        db_name = world["db"].name
        plans = [r.plan for r in world["records"][:3]]
        analytical = AnalyticalCostModel(world["db"])
        schedule = FaultSchedule(
            [FaultSpec("serve.infer", rate=1.0, max_faults=10)], seed=0)
        with server:
            with inject(schedule):
                # Failure 1: below threshold — typed failure, no fallback.
                h1 = server.submit(plans[0], db_name)
                h1.wait(30.0)
                assert h1.status is RequestStatus.FAILED
                assert isinstance(h1.error, InjectedFault)
                # Failure 2: threshold reached — breaker opens, this and
                # later requests degrade to the analytical model, flagged.
                h2 = server.submit(plans[1], db_name)
                h2.wait(30.0)
                assert h2.status is RequestStatus.DEGRADED
                assert h2.degraded
                assert h2.value == analytical.predict_plan(plans[1])
                assert h2.served_by[0] == "analytical"
                h3 = server.submit(plans[2], db_name)
                h3.wait(30.0)
                assert h3.status is RequestStatus.DEGRADED
            # Faults gone; once the reset delay elapses the breaker
            # half-opens, probes the model path, and closes on success.
            time.sleep(0.2)
            h4 = server.submit(plans[0], db_name)
            h4.wait(30.0)
        assert h4.status is RequestStatus.DONE
        assert h4.value == float(world["direct"][0])
        stats = server.stats()
        assert stats["degraded"] == 2
        assert list(stats["breakers"].values()) == ["closed"]

    def test_degraded_values_never_enter_cache(self, world, tmp_path):
        registry = _registry(world, tmp_path)
        server = _server(world, registry, max_retries=0,
                         breaker_threshold=1, breaker_reset_ms=100.0)
        db_name = world["db"].name
        plan = world["records"][0].plan
        schedule = FaultSchedule(
            [FaultSpec("serve.infer", rate=1.0, max_faults=1)], seed=0)
        with server:
            with inject(schedule):
                degraded = server.submit(plan, db_name)
                degraded.wait(30.0)
                assert degraded.status is RequestStatus.DEGRADED
            time.sleep(0.15)
            # Same plan after recovery: must be a fresh DONE model
            # prediction, not a cache hit replaying the analytical value.
            again = server.submit(plan, db_name)
            again.wait(30.0)
        assert again.status is RequestStatus.DONE
        assert again.value == float(world["direct"][0])

    def test_predict_refuses_degraded_unless_opted_in(self, world,
                                                      tmp_path):
        registry = _registry(world, tmp_path)
        server = _server(world, registry, max_retries=0,
                         breaker_threshold=1, breaker_reset_ms=10_000.0)
        db_name = world["db"].name
        plans = [r.plan for r in world["records"][:2]]
        schedule = FaultSchedule(
            [FaultSpec("serve.infer", rate=1.0)], seed=0)
        with inject(schedule), server:
            with pytest.raises(DegradedResponseError):
                server.predict(plans, db_name, timeout=30.0)
            values = server.predict(plans, db_name, timeout=30.0,
                                    allow_degraded=True)
        analytical = AnalyticalCostModel(world["db"])
        assert list(values) == [analytical.predict_plan(p) for p in plans]

    def test_degradation_disabled_fails_typed(self, world, tmp_path):
        registry = _registry(world, tmp_path)
        server = _server(world, registry, max_retries=0,
                         breaker_threshold=1, breaker_reset_ms=10_000.0,
                         degraded_fallback=False)
        schedule = FaultSchedule(
            [FaultSpec("serve.infer", rate=1.0)], seed=0)
        with inject(schedule), server:
            for _ in range(2):
                handle = server.submit(world["records"][0].plan,
                                       world["db"].name)
                handle.wait(30.0)
                assert handle.status is RequestStatus.FAILED


# ----------------------------------------------------------------------
# Analytical fallback model
# ----------------------------------------------------------------------
class TestAnalyticalCostModel:
    def test_deterministic_and_positive(self, world):
        model = AnalyticalCostModel(world["db"])
        plans = [r.plan for r in world["records"]]
        values = model.predict_plans(plans)
        assert (values > 0).all()
        np.testing.assert_array_equal(values, model.predict_plans(plans))

    def test_fit_calibrates_on_records(self, world):
        model = AnalyticalCostModel(world["db"]).fit(world["records"])
        predictions = model.predict_plans([r.plan for r in world["records"]])
        # The calibrated log-log fit must beat the identity mapping on its
        # own training records (sanity, not a quality claim).
        truth = world["runtimes"]
        fitted_error = np.abs(np.log(predictions) - np.log(truth)).mean()
        identity_error = np.abs(
            np.log(AnalyticalCostModel(world["db"]).predict_plans(
                [r.plan for r in world["records"]])) - np.log(truth)).mean()
        assert fitted_error <= identity_error

    def test_never_mutates_planner_costed_plans(self, world):
        plan = world["records"][0].plan
        before = pickle.dumps(plan)
        AnalyticalCostModel(world["db"]).predict_plan(plan)
        assert pickle.dumps(plan) == before


# ----------------------------------------------------------------------
# Chaos integration: mixed schedule through the load generator, replayed
# ----------------------------------------------------------------------
class TestChaosIntegration:
    def _chaos_run(self, world, tmp_path, seed):
        registry = _registry(world, tmp_path)
        server = _server(world, registry, max_batch_size=4, max_retries=3,
                         result_cache_size=0,
                         queue_depth=len(world["records"]) + 4)
        schedule = FaultSchedule([
            FaultSpec("serve.batcher", rate=1.0, skip_calls=1, max_faults=1),
            FaultSpec("serve.infer", rate=0.25),
            FaultSpec("serve.featurize", rate=0.1),
        ], seed=seed)
        db_name = world["db"].name
        plans = [r.plan for r in world["records"]]
        with inject(schedule):
            handles = [server.submit(p, db_name) for p in plans]
            with server:
                for handle in handles:
                    assert handle.wait(60.0)
        return server, schedule, handles

    def test_no_wrong_values_under_chaos(self, world, tmp_path):
        server, schedule, handles = self._chaos_run(world, tmp_path, seed=3)
        assert schedule.total_faults() > 0
        wrong = 0
        for i, handle in enumerate(handles):
            if handle.status is RequestStatus.DONE:
                if handle.value != float(world["direct"][i]):
                    wrong += 1
            else:
                # Anything not DONE must be explicitly typed/flagged.
                assert handle.status in (RequestStatus.DEGRADED,
                                         RequestStatus.FAILED)
        assert wrong == 0
        stats = server.stats()
        assert (stats["completed"] + stats["cached"] + stats["degraded"]
                + stats["shed"] + stats["failed"]) == stats["requests"]

    def test_chaos_replays_bit_identically(self, world, tmp_path):
        outcomes = []
        for run in range(2):
            server, schedule, handles = self._chaos_run(
                world, tmp_path / str(run), seed=3)
            outcomes.append(([(h.status.value, h.value) for h in handles],
                             schedule.stats()))
        assert outcomes[0] == outcomes[1]

    def test_loadgen_chaos_mode_and_availability(self, world, tmp_path):
        registry = _registry(world, tmp_path)
        server = _server(world, registry, max_batch_size=4, max_retries=3,
                         queue_depth=64)
        requests = [(world["db"].name, r.plan) for r in world["records"]]
        schedule = FaultSchedule(
            [FaultSpec("serve.infer", rate=0.2)], seed=5)
        load = LoadConfig(n_clients=2, seed=0, block=True, faults=schedule)
        with server:
            report = run_load(server, requests, load)
        assert report.availability == 1.0
        assert report.n_requests == len(requests)
        assert report.fault_stats["serve.infer"]["calls"] > 0
        assert len(report.handles) == len(requests)
        # Chaos mode uninstalls its schedule when the run ends.
        from repro.robustness import faults as fault_plane
        assert fault_plane.active_schedule() is None

    def test_loadgen_excludes_shed_from_latency(self, world, tmp_path):
        registry = _registry(world, tmp_path)
        server = _server(world, registry, max_batch_size=2, queue_depth=1)
        requests = [(world["db"].name, r.plan)
                    for r in world["records"]] * 3
        load = LoadConfig(n_clients=4, seed=0, block=False)
        with server:
            report = run_load(server, requests, load)
        served = report.completed + report.cached + report.degraded
        assert report.shed > 0
        assert report.availability == served / report.n_requests
        assert report.availability < 1.0


# ----------------------------------------------------------------------
# Fleet IPC fault points and the drop/hang actions (PR 9)
# ----------------------------------------------------------------------
class TestFleetFaultActions:
    def test_fleet_points_registered(self):
        for point in ("fleet.pipe.send", "fleet.pipe.recv",
                      "fleet.worker.hang"):
            assert point in POINTS

    def test_drop_action_signals_without_raising(self):
        schedule = FaultSchedule(
            [FaultSpec("fleet.pipe.send", rate=1.0, max_faults=2,
                       action="drop")], seed=0)
        with inject(schedule):
            assert check("fleet.pipe.send") == "drop"
            assert check("fleet.pipe.send") == "drop"
            assert check("fleet.pipe.send") is None  # exhausted
        assert check("fleet.pipe.send") is None      # uninstalled

    def test_hang_action_sleeps_then_returns(self):
        schedule = FaultSchedule(
            [FaultSpec("fleet.worker.hang", rate=1.0, max_faults=1,
                       action="hang", delay_ms=30.0)], seed=0)
        start = time.perf_counter()
        with inject(schedule):
            assert check("fleet.worker.hang") == "hang"
            assert check("fleet.worker.hang") is None
        assert time.perf_counter() - start >= 0.025

    def test_drop_counts_as_injected(self):
        name = "fault.injected.fleet.pipe.recv"
        before = perfstats.snapshot([name])[name]
        schedule = FaultSchedule(
            [FaultSpec("fleet.pipe.recv", rate=1.0, max_faults=1,
                       action="drop")], seed=0)
        with inject(schedule):
            check("fleet.pipe.recv")
        assert perfstats.snapshot([name])[name] == before + 1
        assert schedule.stats()["fleet.pipe.recv"]["by_action"]["drop"] == 1

    def test_drop_and_hang_replay_bit_identically(self):
        def run():
            schedule = FaultSchedule([
                FaultSpec("fleet.pipe.send", rate=0.5, action="drop"),
                FaultSpec("fleet.pipe.recv", rate=0.25, action="drop"),
            ], seed=42)
            fired = []
            with inject(schedule):
                for _ in range(64):
                    fired.append((check("fleet.pipe.send"),
                                  check("fleet.pipe.recv")))
            return fired

        first, second = run(), run()
        assert first == second
        assert any(action == "drop" for pair in first for action in pair)
