"""Tests for plan execution (true cardinalities, aggregate correctness) and
the runtime simulator."""

import numpy as np
import pytest

from repro.executor import (DEFAULT_HARDWARE, HardwareProfile, execute_plan,
                            plan_signature, predicate_row_cost_ns,
                            simulate_runtime_ms)
from repro.optimizer import PlannerConfig, plan_query
from repro.sql import (AggregateSpec, Comparison, JoinEdge, PredOp, Query,
                       conjunction, disjunction, evaluate_predicate)


def run(db, query, **planner_kwargs):
    plan = plan_query(db, query, config=PlannerConfig(**planner_kwargs))
    result = execute_plan(db, plan)
    return plan, result


class TestExecutionCorrectness:
    def test_count_star(self, toy_db, simple_count_query):
        _, result = run(toy_db, simple_count_query)
        assert result.rows == [(2000,)]

    def test_filtered_count_matches_mask(self, toy_db, filtered_query):
        _, result = run(toy_db, filtered_query)
        expected = evaluate_predicate(filtered_query.filters["orders"],
                                      toy_db.table("orders")).sum()
        assert result.rows == [(int(expected),)]

    def test_fk_join_count_equals_child_count(self, toy_db):
        query = Query(
            tables=("orders", "customers"),
            joins=(JoinEdge("orders", "customer_id", "customers", "id"),),
            aggregates=(AggregateSpec("count"),))
        _, result = run(toy_db, query)
        assert result.rows == [(2000,)]  # every order has a customer

    def test_join_with_filter_matches_bruteforce(self, toy_db):
        query = Query(
            tables=("orders", "customers"),
            joins=(JoinEdge("orders", "customer_id", "customers", "id"),),
            filters={"customers": Comparison("customers", "category",
                                             PredOp.EQ, "gold")},
            aggregates=(AggregateSpec("count"),))
        _, result = run(toy_db, query)
        cust_mask = evaluate_predicate(query.filters["customers"],
                                       toy_db.table("customers"))
        gold_ids = set(np.nonzero(cust_mask)[0])
        orders_cust = toy_db.column("orders", "customer_id").values
        expected = sum(1 for c in orders_cust if c in gold_ids)
        assert result.rows == [(expected,)]

    def test_three_way_join_cardinality(self, toy_db, join_query):
        plan, result = run(toy_db, join_query)
        join_nodes = [n for n in plan.iter_nodes() if n.is_join]
        for node in join_nodes:
            assert node.true_rows is not None

    def test_avg_aggregate_value(self, toy_db):
        query = Query(tables=("orders",),
                      aggregates=(AggregateSpec("avg", "orders", "amount"),))
        _, result = run(toy_db, query)
        amounts = toy_db.column("orders", "amount").values
        expected = float(np.nanmean(amounts))
        assert result.rows[0][0] == pytest.approx(expected)

    def test_min_max_sum(self, toy_db):
        query = Query(tables=("orders",),
                      aggregates=(AggregateSpec("min", "orders", "amount"),
                                  AggregateSpec("max", "orders", "amount"),
                                  AggregateSpec("sum", "orders", "amount")))
        _, result = run(toy_db, query)
        amounts = toy_db.column("orders", "amount").values
        assert result.rows[0][0] == pytest.approx(np.nanmin(amounts))
        assert result.rows[0][1] == pytest.approx(np.nanmax(amounts))
        assert result.rows[0][2] == pytest.approx(np.nansum(amounts))

    def test_group_by_counts(self, toy_db):
        query = Query(tables=("orders",),
                      aggregates=(AggregateSpec("count"),),
                      group_by=(("orders", "status"),))
        _, result = run(toy_db, query)
        status = toy_db.column("orders", "status").values
        expected = {float(code): int((status == code).sum())
                    for code in np.unique(status)}
        got = {row[0]: row[1] for row in result.rows}
        assert got == expected

    def test_empty_result_count_zero(self, toy_db):
        query = Query(tables=("orders",),
                      filters={"orders": Comparison("orders", "priority",
                                                    PredOp.GT, 100)},
                      aggregates=(AggregateSpec("count"),))
        plan, result = run(toy_db, query)
        assert result.rows == [(0,)]
        scan = [n for n in plan.iter_nodes() if n.is_scan][0]
        assert scan.true_rows == 0.0

    def test_null_join_keys_do_not_match(self, toy_db):
        # Inject NULLs into a copy of the FK column.
        orders = toy_db.table("orders")
        original = orders.column("customer_id").values.copy()
        try:
            orders.column("customer_id").values[:100] = np.nan
            query = Query(
                tables=("orders", "customers"),
                joins=(JoinEdge("orders", "customer_id", "customers", "id"),),
                aggregates=(AggregateSpec("count"),))
            _, result = run(toy_db, query)
            assert result.rows == [(1900,)]
        finally:
            orders.column("customer_id").values[:] = original

    def test_nested_loop_inner_rows_per_loop(self, toy_db):
        toy_db.create_index("orders", "customer_id")
        try:
            query = Query(
                tables=("customers", "orders"),
                joins=(JoinEdge("orders", "customer_id", "customers", "id"),),
                filters={"customers": Comparison("customers", "category",
                                                 PredOp.EQ, "gold")},
                aggregates=(AggregateSpec("count"),))
            plan, result = run(toy_db, query)
            nl = [n for n in plan.iter_nodes() if n.op_name == "NestedLoopJoin"]
            if nl:  # planner picked NL (it should for this outer size)
                inner = nl[0].children[1]
                outer = nl[0].children[0]
                assert inner.true_rows == pytest.approx(
                    nl[0].true_rows / max(outer.true_rows, 1))
        finally:
            toy_db.drop_index("orders", "customer_id")

    def test_disjunctive_predicate_execution(self, toy_db):
        pred = disjunction([
            Comparison("orders", "priority", PredOp.EQ, 0),
            Comparison("orders", "amount", PredOp.IS_NULL),
        ])
        query = Query(tables=("orders",), filters={"orders": pred},
                      aggregates=(AggregateSpec("count"),))
        _, result = run(toy_db, query)
        expected = int(evaluate_predicate(pred, toy_db.table("orders")).sum())
        assert result.rows == [(expected,)]

    def test_generated_database_integration(self, gen_db):
        """Plans over a generated DB execute and annotate cardinalities."""
        tables = gen_db.schema.table_names
        fks = gen_db.schema.foreign_keys
        fk = fks[0]
        query = Query(
            tables=(fk.child_table, fk.parent_table),
            joins=(JoinEdge.from_foreign_key(fk),),
            aggregates=(AggregateSpec("count"),))
        plan, result = run(gen_db, query)
        for node in plan.iter_nodes():
            assert node.true_rows is not None


class TestRuntimeSimulator:
    def _runtime(self, db, query, **kwargs):
        plan = plan_query(db, query)
        execute_plan(db, plan)
        return simulate_runtime_ms(db, plan, **kwargs), plan

    def test_runtime_positive_and_reproducible(self, toy_db, join_query):
        ms1, _ = self._runtime(toy_db, join_query)
        ms2, _ = self._runtime(toy_db, join_query)
        assert ms1 > 0
        assert ms1 == pytest.approx(ms2)

    def test_seed_changes_noise(self, toy_db, join_query):
        ms1, _ = self._runtime(toy_db, join_query, seed=1)
        ms2, _ = self._runtime(toy_db, join_query, seed=2)
        assert ms1 != ms2
        assert ms1 == pytest.approx(ms2, rel=0.5)  # same mean, noise only

    def test_more_data_takes_longer(self, toy_db):
        q_small = Query(tables=("customers",), aggregates=(AggregateSpec("count"),))
        q_large = Query(tables=("orders",), aggregates=(AggregateSpec("count"),))
        small, _ = self._runtime(toy_db, q_small)
        large, _ = self._runtime(toy_db, q_large)
        assert large > small

    def test_expensive_predicates_cost_more(self, toy_db):
        cheap = Query(tables=("orders",),
                      filters={"orders": Comparison("orders", "priority",
                                                    PredOp.EQ, 1)},
                      aggregates=(AggregateSpec("count"),))
        pricey = Query(tables=("orders",),
                       filters={"orders": Comparison("orders", "status",
                                                     PredOp.LIKE, "%p_n%")},
                       aggregates=(AggregateSpec("count"),))
        cheap_ms, _ = self._runtime(toy_db, cheap)
        pricey_ms, _ = self._runtime(toy_db, pricey)
        assert pricey_ms > cheap_ms

    def test_predicate_row_cost_structure(self):
        hw = DEFAULT_HARDWARE
        simple = Comparison("t", "c", PredOp.EQ, 5)
        like = Comparison("t", "c", PredOp.LIKE, "%ab%cd%")
        in_pred = Comparison("t", "c", PredOp.IN, list(range(20)))
        assert predicate_row_cost_ns(like, hw) > predicate_row_cost_ns(in_pred, hw)
        assert predicate_row_cost_ns(in_pred, hw) > predicate_row_cost_ns(simple, hw)
        both = conjunction([simple, simple])
        assert (predicate_row_cost_ns(both, hw)
                < 2 * predicate_row_cost_ns(simple, hw))  # short circuit

    def test_spill_nonlinearity(self, toy_db):
        """A tiny work_mem makes hash joins disproportionately slower."""
        query = Query(
            tables=("orders", "customers"),
            joins=(JoinEdge("orders", "customer_id", "customers", "id"),),
            aggregates=(AggregateSpec("count"),))
        plan = plan_query(toy_db, query)
        execute_plan(toy_db, plan)
        normal = simulate_runtime_ms(toy_db, plan)
        tiny_mem = HardwareProfile(work_mem_bytes=256.0, noise_sigma=0.0)
        slow = simulate_runtime_ms(toy_db, plan, hardware=tiny_mem)
        assert slow > normal

    def test_plan_signature_distinguishes_plans(self, toy_db, join_query,
                                                simple_count_query):
        p1 = plan_query(toy_db, join_query)
        p2 = plan_query(toy_db, simple_count_query)
        execute_plan(toy_db, p1)
        execute_plan(toy_db, p2)
        assert plan_signature("toy", p1) != plan_signature("toy", p2)

    def test_parallel_startup_overhead(self, gen_db):
        """Parallel plans pay a startup cost visible at small scales."""
        fact = gen_db.schema.table_names[0]
        query = Query(tables=(fact,), aggregates=(AggregateSpec("count"),))
        serial_plan = plan_query(gen_db, query,
                                 config=PlannerConfig(enable_parallel=False))
        execute_plan(gen_db, serial_plan)
        parallel_plan = plan_query(
            gen_db, query, config=PlannerConfig(min_parallel_pages=1))
        execute_plan(gen_db, parallel_plan)
        hw = HardwareProfile(noise_sigma=0.0, parallel_startup_us=1e7)
        serial = simulate_runtime_ms(gen_db, serial_plan, hardware=hw)
        parallel = simulate_runtime_ms(gen_db, parallel_plan, hardware=hw)
        assert parallel > serial  # absurd startup dominates
