"""Serving subsystem: registry, micro-batching predictor, load harness.

The load-bearing contract is *serving equivalence*: for any request mix,
the value a request receives is bit-identical to a direct
``predict_runtimes`` call on the same model — across the batched path, the
result-cache path and hot-swaps.  That only holds because the graph-free
inference kernels are row-stable (``row_stable_matmul``), which the first
test class pins down at the numpy level.
"""

import threading

import numpy as np
import pytest

from repro import perfstats
from repro.core import TrainingConfig, ZeroShotCostModel, featurize_records
from repro.core.model import ZeroShotModel
from repro.core.training import predict_runtimes
from repro.datagen import generate_database, random_database_spec
from repro.featurization import (FeatureScalers, TargetScaler,
                                 database_digest, plan_fingerprint)
from repro.nn import row_stable_matmul
from repro.serving import (LoadConfig, ModelRegistry, PredictorServer,
                           RequestShedError, RequestStatus, RoutingError,
                           ServerClosedError, ServerConfig, run_load)
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


# ----------------------------------------------------------------------
# Row-stable inference kernels (the basis of serving equivalence)
# ----------------------------------------------------------------------
class TestRowStableMatmul:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_rows_independent_of_row_count(self, dtype):
        """A row's product is bitwise the same whether it travels alone,
        in a pair, or in a large batch — including the gemv-prone shapes
        (single row, single output column)."""
        rng = np.random.default_rng(0)
        for k, h in [(5, 1), (32, 1), (64, 1), (13, 32), (64, 64), (128, 48)]:
            x = rng.normal(size=(129, k)).astype(dtype)
            w = rng.normal(size=(k, h)).astype(dtype)
            full = row_stable_matmul(x, w)
            for n in (1, 2, 3, 7, 64, 128):
                np.testing.assert_array_equal(row_stable_matmul(x[:n], w),
                                              full[:n])

    def test_matches_blas_for_regular_shapes(self):
        """Away from the degenerate shapes the kernel is plain ``@``."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(40, 16))
        w = rng.normal(size=(16, 8))
        np.testing.assert_array_equal(row_stable_matmul(x, w), x @ w)

    def test_values_close_to_blas_on_degenerate_shapes(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(40, 16))
        w = rng.normal(size=(16, 1))
        np.testing.assert_allclose(row_stable_matmul(x, w), x @ w,
                                   rtol=1e-12)


# ----------------------------------------------------------------------
# Shared world: two databases, executed workloads, models
# ----------------------------------------------------------------------
def _make_db(name, seed, base_rows=500):
    spec = random_database_spec(name, seed=seed, layout="snowflake",
                                base_rows=base_rows, n_tables=4,
                                complexity=0.6)
    return generate_database(spec)


def _make_trace(db, n, seed):
    queries = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                seed=seed).generate(n)
    return list(generate_trace(db, queries, seed=seed))


def _make_model(graphs, runtimes, seed=0, hidden_dim=24, dtype="float32"):
    model = ZeroShotModel(hidden_dim=hidden_dim, seed=seed).eval()
    model.to(np.dtype(dtype))
    return ZeroShotCostModel(model, FeatureScalers().fit(graphs),
                             TargetScaler().fit(runtimes),
                             TrainingConfig(hidden_dim=hidden_dim,
                                            dtype=dtype))


@pytest.fixture(scope="module")
def world():
    db_a = _make_db("served_a", seed=11)
    db_b = _make_db("served_b", seed=22)
    dbs = {db_a.name: db_a, db_b.name: db_b}
    records_a = _make_trace(db_a, 18, seed=5)
    records_b = _make_trace(db_b, 12, seed=6)
    graphs_a = featurize_records(records_a, dbs, cards="exact")
    graphs_b = featurize_records(records_b, dbs, cards="exact")
    runtimes_a = np.array([r.runtime_ms for r in records_a])
    runtimes_b = np.array([r.runtime_ms for r in records_b])
    return {
        "dbs": dbs, "db_a": db_a, "db_b": db_b,
        "records_a": records_a, "records_b": records_b,
        "graphs_a": graphs_a, "graphs_b": graphs_b,
        "runtimes_a": runtimes_a, "runtimes_b": runtimes_b,
    }


def _direct(model, graphs):
    return predict_runtimes(model.model, graphs, model.feature_scalers,
                            model.target_scaler, batch_cache=False)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestModelRegistry:
    def test_publish_versions_and_active(self, world, tmp_path):
        registry = ModelRegistry(tmp_path)
        m1 = _make_model(world["graphs_a"], world["runtimes_a"], seed=0)
        m2 = _make_model(world["graphs_a"], world["runtimes_a"], seed=1)
        d1 = registry.publish("main", m1, dbs=[world["db_a"]])
        d2 = registry.publish("main", m2, dbs=[world["db_a"]])
        assert (d1.version, d2.version) == (1, 2)
        assert registry.active("main").version == 2  # publish auto-promotes
        assert [d.version for d in registry.deployments("main")] == [1, 2]
        # No silent fallback: a model is default only when declared so.
        assert registry.default_model is None
        registry.set_default("main")
        assert registry.default_model == "main"

    def test_content_addressing_dedupes_payloads(self, world, tmp_path):
        registry = ModelRegistry(tmp_path)
        model = _make_model(world["graphs_a"], world["runtimes_a"], seed=0)
        d1 = registry.publish("main", model)
        d2 = registry.publish("shadow", model)
        assert d1.checkpoint_key == d2.checkpoint_key
        payloads = list((tmp_path / "deploy").glob("*.pkl"))
        assert len(payloads) == 1  # one payload for identical state

    def test_promote_rollback(self, world, tmp_path):
        registry = ModelRegistry(tmp_path)
        m1 = _make_model(world["graphs_a"], world["runtimes_a"], seed=0)
        m2 = _make_model(world["graphs_a"], world["runtimes_a"], seed=1)
        registry.publish("main", m1)
        registry.publish("main", m2, activate=False)
        assert registry.active("main").version == 1
        assert registry.promote("main", 2).version == 2
        assert registry.rollback("main").version == 1
        with pytest.raises(ValueError):
            registry.rollback("main")  # no previous version left
        with pytest.raises(ValueError):
            registry.promote("main", 99)

    def test_routing_by_database_fingerprint(self, world, tmp_path):
        registry = ModelRegistry(tmp_path)
        m_a = _make_model(world["graphs_a"], world["runtimes_a"], seed=0)
        m_b = _make_model(world["graphs_b"], world["runtimes_b"], seed=1)
        registry.publish("model_a", m_a, dbs=[world["db_a"]])
        registry.publish("fallback", m_b, default=True)
        assert registry.route(
            database_digest(world["db_a"])).name == "model_a"
        # Unseen database -> the default model (the zero-shot case).
        assert registry.route(
            database_digest(world["db_b"])).name == "fallback"

    def test_fresh_registry_reads_manifests_from_disk(self, world, tmp_path):
        registry = ModelRegistry(tmp_path)
        m1 = _make_model(world["graphs_a"], world["runtimes_a"], seed=0)
        m2 = _make_model(world["graphs_a"], world["runtimes_a"], seed=1)
        registry.publish("main", m1, dbs=[world["db_a"]])
        registry.publish("main", m2)
        registry.rollback("main")
        reopened = ModelRegistry(tmp_path)
        assert reopened.names() == ("main",)
        assert reopened.active("main").version == 1
        assert reopened.route(
            database_digest(world["db_a"])).checkpoint_key == \
            registry.active("main").checkpoint_key

    def test_generation_bumps_on_every_mutation(self, world, tmp_path):
        registry = ModelRegistry(tmp_path)
        model = _make_model(world["graphs_a"], world["runtimes_a"], seed=0)
        generation = registry.generation
        registry.publish("main", model)
        assert registry.generation > generation
        generation = registry.generation
        registry.promote("main", 1)
        assert registry.generation > generation


class TestSerializationRoundTrip:
    """`nn/serialize` round-trips through the registry (float32 satellite)."""

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_published_checkpoint_reloads_bit_identically(self, world,
                                                          tmp_path, dtype):
        """A checkpoint published, hot-swapped away and back, and reloaded
        from disk by a *fresh* registry predicts bit-identically to the
        in-memory model — dtype intact."""
        graphs = world["graphs_a"]
        model = _make_model(graphs, world["runtimes_a"], seed=3, dtype=dtype)
        expected = _direct(model, graphs)

        registry = ModelRegistry(tmp_path)
        registry.publish("main", model, dbs=[world["db_a"]])
        other = _make_model(graphs, world["runtimes_a"], seed=4, dtype=dtype)
        registry.publish("main", other)   # hot-swap to v2
        registry.rollback("main")         # and back to v1

        reopened = ModelRegistry(tmp_path)  # no in-memory memo: disk path
        reloaded = reopened.load("main")
        assert reloaded is not model
        assert reloaded.config.dtype == dtype
        assert reloaded.model.param_dtype() == np.dtype(dtype)
        np.testing.assert_array_equal(_direct(reloaded, graphs), expected)


# ----------------------------------------------------------------------
# Predictor server
# ----------------------------------------------------------------------
@pytest.fixture()
def registry_a(world, tmp_path):
    registry = ModelRegistry(tmp_path)
    model = _make_model(world["graphs_a"], world["runtimes_a"], seed=0)
    registry.publish("main", model, dbs=[world["db_a"]], default=True)
    return registry, model


class TestPredictorServer:
    def test_bulk_predictions_bit_identical_to_direct(self, world,
                                                      registry_a):
        registry, model = registry_a
        expected = _direct(model, world["graphs_a"])
        plans = [r.plan for r in world["records_a"]]
        with PredictorServer(registry, world["dbs"]) as server:
            out = server.predict(plans, world["db_a"].name)
        np.testing.assert_array_equal(out, expected)

    def test_concurrent_mixed_requests_bit_identical(self, world,
                                                     registry_a):
        """Many client threads, interleaved submits, tiny micro-batches:
        whatever coalescing the batcher picks, every value equals the
        direct per-plan prediction."""
        registry, model = registry_a
        expected = _direct(model, world["graphs_a"])
        plans = [r.plan for r in world["records_a"]]
        config = ServerConfig(max_batch_size=4, max_delay_ms=0.5,
                              result_cache_size=0)
        results = {}
        with PredictorServer(registry, world["dbs"], config) as server:
            def client(offset):
                indices = list(range(offset, len(plans), 3))
                handles = [(i, server.submit(plans[i], world["db_a"].name,
                                             block=True))
                           for i in indices]
                for i, handle in handles:
                    results[i] = handle.result(30)

            threads = [threading.Thread(target=client, args=(offset,))
                       for offset in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        out = np.array([results[i] for i in range(len(plans))])
        np.testing.assert_array_equal(out, expected)

    def test_repeat_plans_hit_result_cache_bit_identically(self, world,
                                                           registry_a):
        registry, model = registry_a
        expected = _direct(model, world["graphs_a"])
        plans = [r.plan for r in world["records_a"]]
        # Equal-but-distinct plan objects: the same workload re-planned.
        replayed = [r.plan for r in _make_trace(world["db_a"], 18, seed=5)]
        assert replayed[0] is not plans[0]
        perfstats.reset()
        with PredictorServer(registry, world["dbs"]) as server:
            first = server.predict(plans, world["db_a"].name)
            repeats = server.submit_many(replayed, world["db_a"].name)
            values = [r.result(30) for r in repeats]
            stats = server.stats()
        np.testing.assert_array_equal(first, expected)
        np.testing.assert_array_equal(np.array(values), expected)
        assert all(r.status is RequestStatus.CACHED for r in repeats)
        assert stats["cached"] == len(plans)
        counters = perfstats.snapshot()
        assert counters.get("serve.cache.hit", 0) == len(plans)
        assert counters.get("serve.cache.miss", 0) == len(plans)

    def test_hot_swap_and_rollback_bit_identical(self, world, tmp_path):
        """Promotions take effect between micro-batches; every phase's
        predictions equal the direct calls on that phase's model, and the
        result cache never leaks values across checkpoints."""
        registry = ModelRegistry(tmp_path)
        m1 = _make_model(world["graphs_a"], world["runtimes_a"], seed=0)
        m2 = _make_model(world["graphs_a"], world["runtimes_a"], seed=1)
        registry.publish("main", m1, dbs=[world["db_a"]], default=True)
        plans = [r.plan for r in world["records_a"]]
        d1 = _direct(m1, world["graphs_a"])
        d2 = _direct(m2, world["graphs_a"])
        perfstats.reset()
        with PredictorServer(registry, world["dbs"]) as server:
            np.testing.assert_array_equal(
                server.predict(plans, world["db_a"].name), d1)
            registry.publish("main", m2)  # auto-promote: hot swap
            np.testing.assert_array_equal(
                server.predict(plans, world["db_a"].name), d2)
            registry.rollback("main")
            rolled = server.submit_many(plans, world["db_a"].name)
            values = np.array([r.result(30) for r in rolled])
            stats = server.stats()
        np.testing.assert_array_equal(values, d1)
        # The rollback answers arrive from the v1 cache entries, which
        # stayed valid because keys carry the checkpoint digest.
        assert all(r.status is RequestStatus.CACHED for r in rolled)
        assert stats["swaps"] >= 2
        assert perfstats.snapshot().get("serve.swap.count", 0) >= 2

    def test_admission_control_sheds_beyond_queue_depth(self, world,
                                                        registry_a):
        registry, model = registry_a
        plans = [r.plan for r in world["records_a"]][:6]
        config = ServerConfig(queue_depth=3, result_cache_size=0)
        server = PredictorServer(registry, world["dbs"], config)
        perfstats.reset()
        # Not started: submissions queue up against the bounded queue.
        handles = server.submit_many(plans, world["db_a"].name)
        statuses = [h.status for h in handles]
        assert statuses[:3] == [RequestStatus.PENDING] * 3
        assert statuses[3:] == [RequestStatus.SHED] * 3
        with pytest.raises(RequestShedError):
            handles[3].result()
        assert perfstats.snapshot().get("serve.shed.count", 0) == 3
        # Draining the queue completes the admitted requests correctly.
        server.start()
        expected = _direct(model, world["graphs_a"][:3])
        np.testing.assert_array_equal(
            np.array([h.result(30) for h in handles[:3]]), expected)
        server.stop()
        assert server.stats()["shed"] == 3

    def test_routing_multi_model_and_unseen_database(self, world, tmp_path):
        """BRAD-style routing: each database goes to its compatible model;
        an unseen database falls back to the default (zero-shot) model."""
        registry = ModelRegistry(tmp_path)
        m_a = _make_model(world["graphs_a"], world["runtimes_a"], seed=0)
        m_b = _make_model(world["graphs_b"], world["runtimes_b"], seed=1)
        registry.publish("model_a", m_a, dbs=[world["db_a"]])
        registry.publish("fallback", m_b, default=True)
        plans_a = [r.plan for r in world["records_a"]]
        plans_b = [r.plan for r in world["records_b"]]
        with PredictorServer(registry, world["dbs"]) as server:
            out_a = server.predict(plans_a, world["db_a"].name)
            out_b = server.predict(plans_b, world["db_b"].name)
        np.testing.assert_array_equal(out_a, _direct(m_a, world["graphs_a"]))
        np.testing.assert_array_equal(out_b, _direct(m_b, world["graphs_b"]))

    def test_unroutable_database_fails_fast(self, world, tmp_path):
        registry = ModelRegistry(tmp_path)
        model = _make_model(world["graphs_a"], world["runtimes_a"], seed=0)
        # Published but never activated: no active deployment anywhere.
        registry.publish("main", model, activate=False)
        with PredictorServer(registry, world["dbs"]) as server:
            handle = server.submit(world["records_a"][0].plan,
                                   world["db_a"].name)
            assert handle.status is RequestStatus.FAILED
            with pytest.raises(RoutingError):
                handle.result()

    def test_same_plan_object_across_databases_is_not_conflated(
            self, world, tmp_path):
        """The result cache must key on (checkpoint, plan, *database*): one
        plan object submitted against two databases gets two independent
        predictions, each bit-identical to the direct call on that
        database's featurization — never the other database's cached
        value."""
        from repro.serving import ServingRecord

        db_a = world["db_a"]
        # Same generator seed -> same schema/table names, but more rows:
        # the plan is valid against both databases while their stats (and
        # therefore features and predictions) differ.
        db_c = _make_db("served_c", seed=11, base_rows=800)
        dbs = {db_a.name: db_a, db_c.name: db_c}
        registry = ModelRegistry(tmp_path)
        model = _make_model(world["graphs_a"], world["runtimes_a"], seed=0)
        registry.publish("main", model, default=True)
        plan = world["records_a"][0].plan
        with PredictorServer(registry, dbs) as server:
            out_a = server.submit(plan, db_a.name, block=True).result(30)
            request_c = server.submit(plan, db_c.name, block=True)
            out_c = request_c.result(30)
        assert request_c.status is RequestStatus.DONE  # no bogus cache hit
        graphs_a = featurize_records([ServingRecord(db_a.name, plan)], dbs,
                                     cards="exact")
        graphs_c = featurize_records([ServingRecord(db_c.name, plan)], dbs,
                                     cards="exact")
        np.testing.assert_array_equal([out_a], _direct(model, graphs_a))
        np.testing.assert_array_equal([out_c], _direct(model, graphs_c))
        assert out_a != out_c  # the databases' stats genuinely differ

    def test_unregistered_database_raises(self, world, registry_a):
        registry, _ = registry_a
        with PredictorServer(registry, world["dbs"]) as server:
            with pytest.raises(KeyError):
                server.submit(world["records_a"][0].plan, "nope")

    def test_stats_are_consistent(self, world, registry_a):
        registry, _ = registry_a
        plans = [r.plan for r in world["records_a"]]
        with PredictorServer(registry, world["dbs"]) as server:
            server.predict(plans, world["db_a"].name)
            server.predict(plans[:5], world["db_a"].name)  # cache hits
            stats = server.stats()
        assert stats["requests"] == len(plans) + 5
        assert (stats["completed"] + stats["cached"]
                + stats["shed"] + stats["failed"]) == stats["requests"]
        assert sum(stats["batch_size_hist"].values()) == stats["batches"]
        assert stats["mean_batch_size"] > 0

    def test_queued_requests_coalesce_into_one_micro_batch(self, world,
                                                           registry_a):
        """Deterministic coalescing: requests queued before the batcher
        starts are dispatched as max_batch_size-bounded micro-batches, not
        one by one."""
        registry, model = registry_a
        plans = [r.plan for r in world["records_a"]][:10]
        config = ServerConfig(max_batch_size=8, result_cache_size=0)
        server = PredictorServer(registry, world["dbs"], config)
        handles = server.submit_many(plans, world["db_a"].name)
        server.start()
        expected = _direct(model, world["graphs_a"][:10])
        np.testing.assert_array_equal(
            np.array([h.result(30) for h in handles]), expected)
        server.stop()
        stats = server.stats()
        assert stats["batch_size_hist"] == {2: 1, 8: 1}
        assert stats["mean_batch_size"] == 5.0

    def test_submissions_after_stop_are_shed(self, world, registry_a):
        registry, _ = registry_a
        plans = [r.plan for r in world["records_a"]]
        config = ServerConfig(result_cache_size=0)
        server = PredictorServer(registry, world["dbs"], config)
        server.start()
        server.stop()
        handle = server.submit(plans[0], world["db_a"].name)
        assert handle.status is RequestStatus.SHED
        with pytest.raises(RequestShedError):
            handle.result()
        # start() re-opens admission.
        server.start()
        assert server.submit(plans[0],
                             world["db_a"].name).result(30) is not None
        server.stop()

    def test_result_cache_is_bounded(self, world, registry_a):
        registry, _ = registry_a
        plans = [r.plan for r in world["records_a"]]
        config = ServerConfig(result_cache_size=4)
        with PredictorServer(registry, world["dbs"], config) as server:
            server.predict(plans, world["db_a"].name)
            stats = server.stats()
        assert stats["result_cache_entries"] <= 4


# ----------------------------------------------------------------------
# Shutdown: queued handles must always resolve, never hang
# ----------------------------------------------------------------------
class TestShutdown:
    def test_stop_drains_queued_requests(self, world, registry_a):
        registry, model = registry_a
        expected = _direct(model, world["graphs_a"])
        config = ServerConfig(max_batch_size=4, result_cache_size=0)
        server = PredictorServer(registry, world["dbs"], config)
        # Queue everything before the batcher ever runs, then stop with
        # drain: every handle must still resolve to the exact value.
        handles = [server.submit(r.plan, world["db_a"].name)
                   for r in world["records_a"]]
        server.start()
        server.stop(drain=True)
        for handle, value in zip(handles, expected):
            assert handle.done()
            assert handle.status is RequestStatus.DONE
            assert handle.result() == float(value)

    def test_stop_without_drain_fails_queued_typed(self, world, registry_a):
        registry, _ = registry_a
        config = ServerConfig(max_batch_size=4, result_cache_size=0)
        server = PredictorServer(registry, world["dbs"], config)
        handles = [server.submit(r.plan, world["db_a"].name)
                   for r in world["records_a"]]
        server.start()
        server.stop(drain=False)
        for handle in handles:
            assert handle.done()  # resolved, not hanging
            assert handle.status in (RequestStatus.DONE,
                                     RequestStatus.FAILED)
            if handle.status is RequestStatus.FAILED:
                assert isinstance(handle.error, ServerClosedError)
                with pytest.raises(ServerClosedError):
                    handle.result()
        # At least the tail of the queue was dropped, typed.
        assert any(h.status is RequestStatus.FAILED for h in handles)

    def test_close_under_concurrent_submitters(self, world, registry_a):
        """close() races against live client threads: after it returns,
        every handle anyone got back has resolved — DONE, CACHED, SHED or
        typed-FAILED — and waiting on one never hangs."""
        registry, _ = registry_a
        config = ServerConfig(max_batch_size=4, result_cache_size=0,
                              queue_depth=8)
        server = PredictorServer(registry, world["dbs"], config)
        server.start()
        collected = [[] for _ in range(3)]
        stop_flag = threading.Event()

        def client(bucket):
            while not stop_flag.is_set():
                for record in world["records_a"]:
                    try:
                        bucket.append(server.submit(record.plan,
                                                    world["db_a"].name))
                    except RequestShedError:
                        pass

        threads = [threading.Thread(target=client, args=(bucket,),
                                    daemon=True)
                   for bucket in collected]
        for thread in threads:
            thread.start()
        server.close(drain=False)
        stop_flag.set()
        for thread in threads:
            thread.join(10.0)
            assert not thread.is_alive()
        resolved = {RequestStatus.DONE, RequestStatus.CACHED,
                    RequestStatus.SHED, RequestStatus.FAILED}
        for handle in (h for bucket in collected for h in bucket):
            assert handle.wait(5.0)
            assert handle.status in resolved

    def test_context_manager_reentry(self, world, registry_a):
        registry, _ = registry_a
        server = PredictorServer(registry, world["dbs"],
                                 ServerConfig(result_cache_size=0))
        plan = world["records_a"][0].plan
        with server:
            first = server.submit(plan, world["db_a"].name).result(30.0)
        with server:  # start() after stop() re-opens admission
            second = server.submit(plan, world["db_a"].name).result(30.0)
        assert first == second


# ----------------------------------------------------------------------
# Load harness
# ----------------------------------------------------------------------
class TestLoadHarness:
    def test_open_loop_run_reports_consistent_numbers(self, world,
                                                      registry_a):
        registry, model = registry_a
        requests = [(world["db_a"].name, r.plan)
                    for r in world["records_a"]] * 2
        config = ServerConfig(max_batch_size=8, max_delay_ms=1.0)
        with PredictorServer(registry, world["dbs"], config) as server:
            report = run_load(server, requests,
                              LoadConfig(n_clients=3, rate_per_s=3000,
                                         seed=7))
        assert report.n_requests == len(requests)
        assert report.completed + report.cached == len(requests)
        assert report.shed == 0 and report.failed == 0
        assert report.throughput_rps > 0
        latency = report.latency_ms
        assert latency["p50"] <= latency["p95"] <= latency["p99"] \
            <= latency["max"]
        assert sum(report.batch_size_hist.values()) == \
            report.server_stats["batches"]
        # Duplicated plans hit the result cache unless both copies land in
        # the same micro-batch (a scheduling race), so the guaranteed facts
        # are: some hits, and exactly one cache entry per unique plan.
        assert report.cached > 0
        assert report.server_stats["result_cache_entries"] == \
            len(world["records_a"])
        assert report.availability == 1.0
        assert report.as_dict()["n_requests"] == len(requests)

    def test_saturation_mode_and_values_still_exact(self, world,
                                                    registry_a):
        registry, model = registry_a
        expected = _direct(model, world["graphs_a"])
        requests = [(world["db_a"].name, r.plan)
                    for r in world["records_a"]]
        config = ServerConfig(max_batch_size=16, max_delay_ms=2.0,
                              result_cache_size=0,
                              queue_depth=len(requests) + 4)
        with PredictorServer(registry, world["dbs"], config) as server:
            report = run_load(server, requests,
                              LoadConfig(n_clients=4, rate_per_s=None,
                                         seed=0, block=True))
            # Every plan predicted under load equals the direct call.
            out = server.predict([r.plan for r in world["records_a"]],
                                 world["db_a"].name)
        assert report.completed == len(requests)
        np.testing.assert_array_equal(out, expected)


# ----------------------------------------------------------------------
# Fingerprint plumbing added for serving
# ----------------------------------------------------------------------
class TestServingFingerprints:
    def test_database_digest_tracks_fingerprint(self, world):
        db = world["db_a"]
        assert database_digest(db) == database_digest(db.fingerprint())
        assert database_digest(db) != database_digest(world["db_b"])

    def test_plan_fingerprint_accepts_precomputed_db_fingerprint(self,
                                                                 world):
        db = world["db_a"]
        plan = world["records_a"][0].plan
        assert plan_fingerprint(db, plan, "exact") == plan_fingerprint(
            db, plan, "exact", db_fingerprint=db.fingerprint())
