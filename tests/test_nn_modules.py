"""Tests for layers, optimizers, losses and serialization."""

import numpy as np
import pytest

from repro.nn import (Adam, Dropout, Linear, MLP, Module, QErrorLoss, SGD,
                      Sequential, Tensor, clip_grad_norm, huber_loss,
                      load_state, mse_loss, q_error, q_error_metrics,
                      save_state)


class TestLinearAndMLP:
    def test_linear_shapes(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_linear_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert sum(1 for _ in layer.parameters()) == 1

    def test_mlp_structure_and_forward(self):
        mlp = MLP(6, [16, 16], 1, dropout=0.1, seed=1)
        out = mlp(Tensor(np.zeros((3, 6))))
        assert out.shape == (3, 1)

    def test_mlp_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP(2, [4], 1, activation="swishy")

    def test_parameter_count(self):
        mlp = MLP(4, [8], 2, seed=0)
        # (4*8 + 8) + (8*2 + 2)
        assert mlp.num_parameters() == 40 + 18

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5), Linear(2, 1))
        model.eval()
        assert not model.layers[1].training
        model.train()
        assert model.layers[1].training

    def test_state_dict_roundtrip(self, tmp_path):
        model = MLP(3, [5], 2, seed=3)
        state = model.state_dict()
        clone = MLP(3, [5], 2, seed=99)
        clone.load_state_dict(state)
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

        path = tmp_path / "model.npz"
        save_state(path, state, metadata={"kind": "mlp"})
        loaded, meta = load_state(path)
        assert meta["kind"] == "mlp"
        clone2 = MLP(3, [5], 2, seed=123)
        clone2.load_state_dict(loaded)
        np.testing.assert_allclose(model(x).data, clone2(x).data)

    def test_load_state_dict_rejects_mismatch(self):
        model = MLP(3, [5], 2, seed=0)
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        model = MLP(3, [5], 2, seed=0)
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_default_rng_gives_distinct_weights(self):
        """Layers built without an explicit rng must not share weights
        (regression: every default-rng layer used seed 0)."""
        a = Linear(4, 3)
        b = Linear(4, 3)
        assert not np.allclose(a.weight.data, b.weight.data)

    def test_explicit_rng_is_reproducible(self):
        a = Linear(4, 3, rng=np.random.default_rng(7))
        b = Linear(4, 3, rng=np.random.default_rng(7))
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_to_casts_parameters(self):
        model = MLP(3, [5], 2, seed=0)
        model.to(np.float32)
        assert all(p.data.dtype == np.float32 for p in model.parameters())
        assert model.param_dtype() == np.float32
        model.to(np.float64)
        assert model.param_dtype() == np.float64

    def test_load_state_dict_adopts_stored_dtype(self):
        """A float32 checkpoint loads as float32 even into a float64 model
        (bit-identical predictions after a save/load roundtrip)."""
        model = MLP(3, [5], 2, seed=3).to(np.float32)
        clone = MLP(3, [5], 2, seed=9)  # float64 construction
        clone.load_state_dict(model.state_dict())
        assert clone.param_dtype() == np.float32
        x = np.ones((2, 3), dtype=np.float32)
        np.testing.assert_array_equal(model(Tensor(x)).data,
                                      clone(Tensor(x)).data)

    def test_load_state_dict_migrates_legacy_mlp_keys(self):
        """Checkpoints saved by the pre-fused MLP (Sequential layout with
        sparse `net.layers.N` indices) still load."""
        model = MLP(3, [5, 5], 2, seed=3)
        legacy = {}
        for name, values in model.state_dict().items():
            # linears.K -> net.layers.{2K} (activations sat at odd indices)
            k = int(name.split(".")[1])
            leaf = name.split(".")[2]
            legacy[f"net.layers.{2 * k}.{leaf}"] = values
        clone = MLP(3, [5, 5], 2, seed=42)
        clone.load_state_dict(legacy)
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_forward_numpy_matches_tensor_path(self):
        model = MLP(4, [8, 8], 2, seed=5).eval()
        x = np.random.default_rng(2).normal(size=(6, 4))
        np.testing.assert_allclose(model.forward_numpy(x),
                                   model(Tensor(x)).data, atol=1e-12)


class TestOptimizers:
    def _quadratic_problem(self):
        # min ||Xw - y||^2 with known solution w*=(1,-2)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(128, 2))
        y = x @ np.array([1.0, -2.0])
        return x, y

    def _fit(self, optimizer_factory, steps=400):
        x, y = self._quadratic_problem()
        w = Tensor(np.zeros(2), requires_grad=True)
        opt = optimizer_factory([w])
        for _ in range(steps):
            opt.zero_grad()
            pred = Tensor(x) @ w
            loss = mse_loss(pred, y)
            loss.backward()
            opt.step()
        return w.data

    def test_sgd_converges(self):
        w = self._fit(lambda p: SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(w, [1.0, -2.0], atol=1e-3)

    def test_adam_converges(self):
        w = self._fit(lambda p: Adam(p, lr=0.05))
        np.testing.assert_allclose(w, [1.0, -2.0], atol=1e-3)

    def test_weight_decay_shrinks_solution(self):
        w_plain = self._fit(lambda p: Adam(p, lr=0.05))
        w_decay = self._fit(lambda p: Adam(p, lr=0.05, weight_decay=0.5))
        assert np.linalg.norm(w_decay) < np.linalg.norm(w_plain)

    def test_clip_grad_norm(self):
        w = Tensor(np.zeros(4), requires_grad=True)
        w.grad = np.full(4, 10.0)
        norm = clip_grad_norm([w], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0)

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_step_skips_none_grads(self):
        w = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([w], lr=0.1)
        opt.step()  # no grad set: should be a no-op, not an error
        np.testing.assert_allclose(w.data, [1.0, 1.0])


class TestLosses:
    def test_q_error_metric_basics(self):
        np.testing.assert_allclose(q_error([2.0], [1.0]), [2.0])
        np.testing.assert_allclose(q_error([1.0], [2.0]), [2.0])
        np.testing.assert_allclose(q_error([5.0], [5.0]), [1.0])

    def test_q_error_handles_zero(self):
        assert np.isfinite(q_error([0.0], [1.0]))[0]

    def test_q_error_metrics_summary(self):
        metrics = q_error_metrics([1, 2, 4], [1, 1, 1])
        assert metrics["median"] == 2.0
        assert metrics["max"] == 4.0
        assert metrics["count"] == 3

    def test_qerror_loss_value_and_gradient_direction(self):
        loss_fn = QErrorLoss()
        pred = Tensor(np.log([2.0, 8.0]), requires_grad=True)
        true = np.log([4.0, 4.0])
        loss = loss_fn(pred, true)
        # per-element q-errors are 2 and 2 -> mean 2
        assert loss.item() == pytest.approx(2.0)
        loss.backward()
        assert pred.grad[0] < 0  # underestimate: push prediction up
        assert pred.grad[1] > 0  # overestimate: push prediction down

    def test_qerror_loss_is_capped(self):
        loss_fn = QErrorLoss(log_cap=np.log(100))
        pred = Tensor(np.array([50.0]), requires_grad=True)
        loss = loss_fn(pred, np.array([0.0]))
        assert loss.item() == pytest.approx(100.0)

    def test_huber_matches_mse_inside_delta(self):
        pred = Tensor(np.array([0.5]))
        assert huber_loss(pred, np.array([0.0]), delta=1.0).item() == pytest.approx(0.125)

    def test_huber_linear_outside_delta(self):
        pred = Tensor(np.array([3.0]))
        assert huber_loss(pred, np.array([0.0]), delta=1.0).item() == pytest.approx(0.5 + 2.0)


class TestEndToEndTraining:
    def test_mlp_fits_nonlinear_function(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(-1, 1, size=(256, 2))
        y = np.sin(2 * x[:, 0]) + x[:, 1] ** 2
        model = MLP(2, [32, 32], 1, seed=2)
        opt = Adam(model.parameters(), lr=3e-3)
        for _ in range(300):
            opt.zero_grad()
            pred = model(Tensor(x)).reshape(-1)
            loss = mse_loss(pred, y)
            loss.backward()
            opt.step()
        final = mse_loss(model(Tensor(x)).reshape(-1), y).item()
        assert final < 0.02
