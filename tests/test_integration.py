"""Cross-module integration tests: the paper's qualitative claims in
miniature, plus failure-injection paths."""

import numpy as np
import pytest

from repro.baselines import ScaledOptimizerModel
from repro.cardest import DataDrivenEstimator, ExactEstimator
from repro.core import TrainingConfig, ZeroShotCostModel
from repro.datagen import generate_database, random_database_spec
from repro.executor import execute_plan, simulate_runtime_ms
from repro.nn import q_error
from repro.optimizer import PlanNode, plan_query
from repro.sql import AggregateSpec, JoinEdge, Query
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


@pytest.fixture(scope="module")
def mn_world():
    """Databases with M:N expansion potential (random layout) + traces."""
    dbs, traces = {}, []
    for seed in (101, 102, 103, 104):
        spec = random_database_spec(f"mn{seed}", seed=seed, layout="random",
                                    base_rows=1200, n_tables=5,
                                    complexity=0.8)
        db = generate_database(spec)
        dbs[db.name] = db
        queries = WorkloadGenerator(db, WorkloadConfig(max_joins=3),
                                    seed=seed).generate(80)
        traces.append(generate_trace(db, queries, seed=seed))
    return dbs, traces


class TestPaperShapeMiniature:
    def test_zero_shot_beats_scaled_optimizer_on_unseen_db(self, mn_world):
        """Figure 5's core claim at unit-test scale."""
        dbs, traces = mn_world
        held_out = traces[-1]
        train = traces[:-1]
        model = ZeroShotCostModel.train(
            train, dbs, cards="exact",
            config=TrainingConfig(hidden_dim=32, epochs=30, seed=0))
        scaled = ScaledOptimizerModel().fit(train)
        zs = model.evaluate(held_out, dbs, cards="exact")["median"]
        so = scaled.evaluate(held_out)["median"]
        assert zs < so

    def test_mn_joins_expand(self, mn_world):
        """Random-layout DBs produce join results larger than any input."""
        dbs, traces = mn_world
        expanded = 0
        for trace in traces:
            for record in trace:
                for node in record.plan.iter_nodes():
                    if node.is_join and node.true_rows is not None:
                        child_max = max(
                            (c.true_rows or 0) for c in node.children)
                        if node.true_rows > child_max * 1.5:
                            expanded += 1
        assert expanded > 0

    def test_join_sample_unbiased_for_unfiltered_join(self, mn_world):
        """Horvitz-Thompson weights estimate the unfiltered join size."""
        dbs, _ = mn_world
        db = next(iter(dbs.values()))
        fks = db.schema.foreign_keys
        if not fks:
            pytest.skip("no FK in generated schema")
        fk = fks[0]
        tables = {fk.child_table, fk.parent_table}
        joins = [JoinEdge.from_foreign_key(fk)]
        true = ExactEstimator().join_rows(db, tables, joins, {})
        estimator = DataDrivenEstimator(db, sample_size=2048, seed=0)
        sample, weights, root, size = estimator.join_sample(tables, joins,
                                                            seed=1)
        estimate = weights.sum() * len(db.table(root)) / size
        assert q_error([estimate], [max(true, 1)])[0] < 1.3


class TestFailureInjection:
    def test_executor_rejects_unknown_operator(self, toy_db):
        node = PlanNode("SeqScan", table="orders")
        node.op_name = "MergeJoin"  # joins need children; executor must fail
        with pytest.raises((ValueError, IndexError)):
            execute_plan(toy_db, node)

    def test_runtime_model_requires_execution(self, toy_db,
                                              simple_count_query):
        """Simulating an unexecuted plan still works via estimates (no crash),
        and a plan with impossible operator fails loudly."""
        plan = plan_query(toy_db, simple_count_query)
        ms = simulate_runtime_ms(toy_db, plan)  # true_rows None -> est fallback
        assert ms > 0

    def test_evaluate_with_missing_database_raises(self, mn_world):
        dbs, traces = mn_world
        model = ZeroShotCostModel.train(
            traces[:1], dbs, cards="exact",
            config=TrainingConfig(hidden_dim=16, epochs=2,
                                  validation_fraction=0.0))
        with pytest.raises(KeyError):
            model.evaluate(traces[1], {}, cards="exact")

    def test_fine_tune_empty_records_raises(self, mn_world):
        dbs, traces = mn_world
        model = ZeroShotCostModel.train(
            traces[:1], dbs, cards="exact",
            config=TrainingConfig(hidden_dim=16, epochs=2,
                                  validation_fraction=0.0))
        with pytest.raises(ValueError):
            model.fine_tune([], dbs)

    def test_single_row_table_pipeline(self):
        """Degenerate tables flow through the whole pipeline."""
        spec = random_database_spec("degenerate", seed=7, base_rows=30,
                                    n_tables=2, complexity=0.2)
        db = generate_database(spec)
        query = Query(tables=(db.schema.table_names[0],),
                      aggregates=(AggregateSpec("count"),))
        trace = generate_trace(db, [query])
        assert len(trace) == 1
        assert trace[0].runtime_ms > 0


class TestDeterminismEndToEnd:
    def test_identical_training_is_reproducible(self, mn_world):
        dbs, traces = mn_world
        config = TrainingConfig(hidden_dim=16, epochs=4, seed=9,
                                validation_fraction=0.0)
        m1 = ZeroShotCostModel.train(traces[:2], dbs, cards="exact",
                                     config=config)
        m2 = ZeroShotCostModel.train(traces[:2], dbs, cards="exact",
                                     config=config)
        records = list(traces[2])[:10]
        p1 = m1.predict_records(records, dbs, cards="exact")
        p2 = m2.predict_records(records, dbs, cards="exact")
        np.testing.assert_allclose(p1, p2)

    def test_trace_noise_differs_across_seeds_not_structure(self, mn_world):
        dbs, _ = mn_world
        db = next(iter(dbs.values()))
        queries = WorkloadGenerator(db, WorkloadConfig(max_joins=1),
                                    seed=5).generate(10)
        t1 = generate_trace(db, queries, seed=1)
        t2 = generate_trace(db, queries, seed=2)
        # Same plans (same cardinalities), different noise draws.
        for r1, r2 in zip(t1, t2):
            assert r1.plan.true_rows == r2.plan.true_rows
        assert not np.allclose(t1.runtimes(), t2.runtimes())
