"""Tests for the baseline cost models (scaled optimizer, flattened+GBDT,
E2E, MSCN) and the paper's qualitative orderings between them."""

import numpy as np
import pytest

from repro.baselines import (E2EModel, FlattenedPlanModel, MSCNModel,
                             ScaledOptimizerModel, flatten_plan)
from repro.cardest import annotate_cardinalities
from repro.datagen import generate_database, random_database_spec
from repro.executor import execute_plan
from repro.optimizer import plan_query
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


@pytest.fixture(scope="module")
def world():
    """One database with a training and a test trace."""
    spec = random_database_spec("bench", seed=55, layout="snowflake",
                                base_rows=1200, n_tables=5, complexity=0.6)
    db = generate_database(spec)
    gen = WorkloadGenerator(db, WorkloadConfig(max_joins=3), seed=10)
    train_trace = generate_trace(db, gen.generate(160), seed=0)
    test_trace = generate_trace(db, gen.generate(60), seed=0)
    return db, train_trace, test_trace


class TestScaledOptimizer:
    def test_fit_predict(self, world):
        db, train, test = world
        model = ScaledOptimizerModel().fit(train)
        metrics = model.evaluate(test)
        assert metrics["median"] < 10.0
        preds = model.predict(list(test))
        assert (preds > 0).all()

    def test_requires_fit(self, world):
        _, _, test = world
        with pytest.raises(RuntimeError):
            ScaledOptimizerModel().predict(list(test))

    def test_empty_training_rejected(self):
        from repro.workloads import Trace
        with pytest.raises(ValueError):
            ScaledOptimizerModel().fit(Trace("x"))

    def test_multiple_traces(self, world):
        db, train, test = world
        half = len(train) // 2
        model = ScaledOptimizerModel().fit([train[:half], train[half:]])
        assert model.evaluate(test)["median"] < 10.0


class TestFlattened:
    def test_vector_shape_and_content(self, world):
        db, train, _ = world
        record = train[0]
        cards = annotate_cardinalities(db, record.plan, "exact")
        vec = flatten_plan(record.plan, cards)
        from repro.optimizer import OPERATOR_NAMES
        assert len(vec) == 2 * len(OPERATOR_NAMES)
        n_ops = record.plan.n_nodes
        assert vec[:len(OPERATOR_NAMES)].sum() == n_ops

    def test_fit_and_evaluate(self, world):
        db, train, test = world
        model = FlattenedPlanModel(cards="exact", n_estimators=60)
        model.fit(train, {db.name: db})
        metrics = model.evaluate(test, {db.name: db})
        assert metrics["median"] < 5.0

    def test_requires_fit(self, world):
        db, _, test = world
        with pytest.raises(RuntimeError):
            FlattenedPlanModel().predict(list(test), {db.name: db})


class TestE2E:
    @pytest.fixture(scope="class")
    def fitted(self, world):
        db, train, _ = world
        return E2EModel(db, hidden_dim=32, seed=0).fit(train, epochs=40)

    def test_learns_training_distribution(self, world, fitted):
        db, train, test = world
        metrics = fitted.evaluate(test)
        assert metrics["median"] < 2.5

    def test_bound_to_database(self, world):
        db, train, _ = world
        other = generate_database(random_database_spec(
            "other", seed=77, base_rows=300, n_tables=3))
        other_trace = generate_trace(
            other, WorkloadGenerator(other, seed=1).generate(5))
        model = E2EModel(db, hidden_dim=16)
        with pytest.raises(ValueError):
            model.fit(other_trace)

    def test_feature_dim_depends_on_db(self, world):
        """The non-transferability: feature dims differ across databases."""
        db, _, _ = world
        other = generate_database(random_database_spec(
            "other2", seed=78, base_rows=200, n_tables=3))
        from repro.baselines import E2EFeaturizer
        assert E2EFeaturizer(db).feature_dim != E2EFeaturizer(other).feature_dim

    def test_accuracy_improves_with_more_queries(self, world):
        """More training queries -> better accuracy (the Fig. 6 x-axis)."""
        db, train, test = world
        few = E2EModel(db, hidden_dim=32, seed=1).fit(train[:15], epochs=40)
        many = E2EModel(db, hidden_dim=32, seed=1).fit(train, epochs=40)
        assert many.evaluate(test)["median"] <= few.evaluate(test)["median"] * 1.2


class TestMSCN:
    @pytest.fixture(scope="class")
    def fitted(self, world):
        db, train, _ = world
        return MSCNModel(db, hidden_dim=32, seed=0).fit(train, epochs=40)

    def test_fit_predict(self, world, fitted):
        db, _, test = world
        metrics = fitted.evaluate(test)
        assert metrics["median"] < 4.0

    def test_plan_oblivious_worse_than_e2e(self, world, fitted):
        """MSCN ignores the physical plan; E2E should beat it (Fig. 6)."""
        db, train, test = world
        e2e = E2EModel(db, hidden_dim=32, seed=0).fit(train, epochs=40)
        assert (e2e.evaluate(test)["median"]
                <= fitted.evaluate(test)["median"] * 1.15)

    def test_requires_fit(self, world):
        db, _, test = world
        with pytest.raises(RuntimeError):
            MSCNModel(db).predict(list(test))

    def test_empty_sets_handled(self, world, fitted):
        """Single-table queries without predicates have empty join/pred sets."""
        db, _, _ = world
        from repro.sql import AggregateSpec, Query
        table = db.schema.table_names[0]
        simple = Query(tables=(table,), aggregates=(AggregateSpec("count"),))
        trace = generate_trace(db, [simple])
        preds = fitted.predict(list(trace))
        assert preds.shape == (1,) and preds[0] > 0
