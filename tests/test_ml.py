"""Tests for the classic-ML substrate (linear, trees, GBDT)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import GradientBoostedTrees, LinearRegression, RegressionTree


class TestLinearRegression:
    def test_exact_fit(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        y = x @ np.array([2.0, -1.0, 0.5]) + 3.0
        model = LinearRegression().fit(x, y)
        np.testing.assert_allclose(model.weights, [2.0, -1.0, 0.5], atol=1e-8)
        assert model.intercept == pytest.approx(3.0)

    def test_1d_features(self):
        x = np.arange(50, dtype=float)
        model = LinearRegression().fit(x, 2 * x + 1)
        np.testing.assert_allclose(model.predict([10.0]), [21.0])

    def test_ridge_shrinks(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 2))
        y = x @ np.array([5.0, 5.0])
        plain = LinearRegression().fit(x, y)
        ridge = LinearRegression(ridge=100.0).fit(x, y)
        assert np.linalg.norm(ridge.weights) < np.linalg.norm(plain.weights)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict([1.0])

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.ones((3, 1)), np.ones(4))


class TestRegressionTree:
    def test_step_function(self):
        x = np.linspace(0, 1, 300)[:, None]
        y = (x[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2).fit(x, y)
        assert tree.predict([[0.2]])[0] == pytest.approx(0.0, abs=0.05)
        assert tree.predict([[0.9]])[0] == pytest.approx(1.0, abs=0.05)

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).normal(size=(100, 2))
        tree = RegressionTree().fit(x, np.full(100, 7.0))
        assert tree._root.is_leaf
        np.testing.assert_allclose(tree.predict(x[:5]), 7.0)

    def test_respects_min_samples(self):
        x = np.arange(10, dtype=float)[:, None]
        y = np.arange(10, dtype=float)
        tree = RegressionTree(min_samples_leaf=6).fit(x, y)
        assert tree._root.is_leaf  # cannot split 10 rows into 6+6

    def test_input_validation(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.ones(5), np.ones(5))
        with pytest.raises(RuntimeError):
            RegressionTree().predict([[1.0]])


class TestGBDT:
    def test_fits_nonlinear(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-2, 2, size=(400, 2))
        y = np.sin(x[:, 0]) + 0.5 * x[:, 1] ** 2
        model = GradientBoostedTrees(n_estimators=80, max_depth=3,
                                     seed=0).fit(x, y)
        mse = np.mean((model.predict(x) - y) ** 2)
        assert mse < 0.02

    def test_beats_single_tree(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-2, 2, size=(300, 2))
        y = np.sin(2 * x[:, 0]) * np.cos(x[:, 1])
        tree = RegressionTree(max_depth=4).fit(x, y)
        gbdt = GradientBoostedTrees(n_estimators=60, max_depth=4,
                                    seed=0).fit(x, y)
        tree_mse = np.mean((tree.predict(x) - y) ** 2)
        gbdt_mse = np.mean((gbdt.predict(x) - y) ** 2)
        assert gbdt_mse < tree_mse

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(100, 2))
        y = x[:, 0] * x[:, 1]
        p1 = GradientBoostedTrees(n_estimators=20, seed=5).fit(x, y).predict(x)
        p2 = GradientBoostedTrees(n_estimators=20, seed=5).fit(x, y).predict(x)
        np.testing.assert_allclose(p1, p2)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.ones((2, 2)))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_predictions_bounded_by_target_range(self, seed):
        """Averaging trees cannot extrapolate beyond the target range much."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(120, 2))
        y = rng.uniform(0, 1, size=120)
        model = GradientBoostedTrees(n_estimators=25, seed=seed).fit(x, y)
        preds = model.predict(x)
        assert preds.min() > -0.5 and preds.max() < 1.5
