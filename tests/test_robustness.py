"""Tests for generalization-error estimation and drift detection."""

import numpy as np
import pytest

from repro.core import TrainingConfig
from repro.datagen import generate_database, random_database_spec
from repro.robustness import (DriftDetector, DriftObservationError,
                              estimate_generalization_error,
                              sufficiency_curve)
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


@pytest.fixture(scope="module")
def cv_world():
    dbs, traces = {}, []
    for seed in (11, 12, 13, 14):
        spec = random_database_spec(f"cv{seed}", seed=seed, base_rows=600,
                                    n_tables=4, complexity=0.6)
        db = generate_database(spec)
        dbs[db.name] = db
        queries = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                    seed=seed).generate(50)
        traces.append(generate_trace(db, queries, seed=seed))
    return dbs, traces


FAST = TrainingConfig(hidden_dim=24, epochs=15, batch_size=32,
                      validation_fraction=0.0)


class TestGeneralizationEstimation:
    def test_leave_one_out(self, cv_world):
        dbs, traces = cv_world
        estimate = estimate_generalization_error(
            traces, dbs, config=FAST, n_splits=2, seed=0)
        assert len(estimate.per_split) == 2
        assert estimate.mean >= 1.0
        assert estimate.mean < 5.0
        summary = estimate.summary()
        assert summary["splits"] == 2

    def test_held_out_names_recorded(self, cv_world):
        dbs, traces = cv_world
        estimate = estimate_generalization_error(
            traces, dbs, config=FAST, n_splits=2, seed=1)
        assert all(name.startswith("cv") for name in estimate.held_out)

    def test_sufficiency_curve_shape(self, cv_world):
        dbs, traces = cv_world
        eval_trace = traces[-1]
        curve = sufficiency_curve(traces[:-1], dbs, eval_trace,
                                  n_databases_list=[1, 3], config=FAST)
        assert [n for n, _ in curve] == [1, 3]
        assert all(q >= 1.0 for _, q in curve)


class TestDriftDetector:
    def test_no_drift_on_accurate_predictions(self):
        detector = DriftDetector(threshold=2.0, min_observations=5)
        for _ in range(20):
            detector.observe(100.0, 105.0)
        assert not detector.drifted
        assert detector.rolling_median < 1.1

    def test_drift_detected_on_bad_predictions(self):
        detector = DriftDetector(threshold=2.0, min_observations=5)
        for _ in range(20):
            detector.observe(10.0, 100.0)
        assert detector.drifted
        assert detector.rolling_median == pytest.approx(10.0)

    def test_needs_min_observations(self):
        detector = DriftDetector(threshold=1.5, min_observations=10)
        for _ in range(5):
            detector.observe(1.0, 100.0)
        assert not detector.drifted

    def test_window_forgets_old_errors(self):
        detector = DriftDetector(threshold=2.0, window=10, min_observations=5)
        for _ in range(10):
            detector.observe(1.0, 100.0)  # terrible
        for _ in range(10):
            detector.observe(100.0, 100.0)  # perfect, fills the window
        assert not detector.drifted

    def test_records_collected_for_few_shot(self):
        detector = DriftDetector()
        detector.observe(1.0, 2.0, record="r1")
        detector.observe(1.0, 2.0, record="r2")
        assert detector.fine_tuning_records() == ["r1", "r2"]
        detector.reset()
        assert detector.fine_tuning_records() == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(threshold=0.5)

    def test_median_exactly_at_threshold_does_not_trip(self):
        # ``drifted`` is strictly-above: a rolling median sitting exactly
        # on the threshold keeps monitoring instead of triggering a
        # retrain storm on borderline workloads.
        detector = DriftDetector(threshold=2.0, min_observations=5)
        for _ in range(10):
            detector.observe(50.0, 100.0)  # q-error exactly 2.0
        assert detector.rolling_median == pytest.approx(2.0)
        assert not detector.drifted
        for _ in range(11):  # a majority of worse observations tips it
            detector.observe(10.0, 100.0)
        assert detector.drifted

    def test_min_observations_gates_even_terrible_errors(self):
        detector = DriftDetector(threshold=2.0, min_observations=10)
        for _ in range(9):
            detector.observe(1.0, 1000.0)
        assert not detector.drifted  # 9 < 10, however bad they look
        detector.observe(1.0, 1000.0)
        assert detector.drifted

    def test_rejects_unusable_observations(self):
        detector = DriftDetector(min_observations=1)
        for predicted, actual in [(0.0, 10.0), (-5.0, 10.0), (10.0, 0.0),
                                  (10.0, -1.0), (float("nan"), 10.0),
                                  (10.0, float("inf"))]:
            with pytest.raises(DriftObservationError):
                detector.observe(predicted, actual, record="poison")
        # Nothing entered the window or the record buffer.
        assert detector.stats()["window_fill"] == 0
        assert detector.observed_total == 0
        assert detector.fine_tuning_records() == []

    def test_observation_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            DriftDetector().observe(0.0, 1.0)

    def test_record_buffer_keeps_latest(self):
        detector = DriftDetector(max_records=3)
        for i in range(8):
            detector.observe(1.0, 2.0, record=f"r{i}")
        assert detector.fine_tuning_records() == ["r5", "r6", "r7"]
        stats = detector.stats()
        assert stats["observed_total"] == 8
        assert stats["retained_records"] == 3
        assert stats["max_records"] == 3

    def test_reset_clears_window_records_and_counters(self):
        detector = DriftDetector(threshold=2.0, min_observations=2,
                                 max_records=4)
        for i in range(6):
            detector.observe(1.0, 100.0, record=f"r{i}")
        assert detector.drifted and detector.observed_total == 6
        detector.reset()
        assert not detector.drifted
        assert detector.rolling_median == 1.0  # empty window
        assert detector.fine_tuning_records() == []
        assert detector.observed_total == 0
        assert detector.stats()["window_fill"] == 0

    def test_stats_surface(self):
        detector = DriftDetector(threshold=3.0, window=4,
                                 min_observations=2, max_records=2)
        detector.observe(10.0, 100.0, record="a")
        stats = detector.stats()
        assert stats == {"observed_total": 1, "retained_records": 1,
                         "max_records": 2, "window_fill": 1,
                         "rolling_median": pytest.approx(10.0),
                         "drifted": False}
