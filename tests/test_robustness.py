"""Tests for generalization-error estimation and drift detection."""

import numpy as np
import pytest

from repro.core import TrainingConfig
from repro.datagen import generate_database, random_database_spec
from repro.robustness import (DriftDetector, estimate_generalization_error,
                              sufficiency_curve)
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


@pytest.fixture(scope="module")
def cv_world():
    dbs, traces = {}, []
    for seed in (11, 12, 13, 14):
        spec = random_database_spec(f"cv{seed}", seed=seed, base_rows=600,
                                    n_tables=4, complexity=0.6)
        db = generate_database(spec)
        dbs[db.name] = db
        queries = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                    seed=seed).generate(50)
        traces.append(generate_trace(db, queries, seed=seed))
    return dbs, traces


FAST = TrainingConfig(hidden_dim=24, epochs=15, batch_size=32,
                      validation_fraction=0.0)


class TestGeneralizationEstimation:
    def test_leave_one_out(self, cv_world):
        dbs, traces = cv_world
        estimate = estimate_generalization_error(
            traces, dbs, config=FAST, n_splits=2, seed=0)
        assert len(estimate.per_split) == 2
        assert estimate.mean >= 1.0
        assert estimate.mean < 5.0
        summary = estimate.summary()
        assert summary["splits"] == 2

    def test_held_out_names_recorded(self, cv_world):
        dbs, traces = cv_world
        estimate = estimate_generalization_error(
            traces, dbs, config=FAST, n_splits=2, seed=1)
        assert all(name.startswith("cv") for name in estimate.held_out)

    def test_sufficiency_curve_shape(self, cv_world):
        dbs, traces = cv_world
        eval_trace = traces[-1]
        curve = sufficiency_curve(traces[:-1], dbs, eval_trace,
                                  n_databases_list=[1, 3], config=FAST)
        assert [n for n, _ in curve] == [1, 3]
        assert all(q >= 1.0 for _, q in curve)


class TestDriftDetector:
    def test_no_drift_on_accurate_predictions(self):
        detector = DriftDetector(threshold=2.0, min_observations=5)
        for _ in range(20):
            detector.observe(100.0, 105.0)
        assert not detector.drifted
        assert detector.rolling_median < 1.1

    def test_drift_detected_on_bad_predictions(self):
        detector = DriftDetector(threshold=2.0, min_observations=5)
        for _ in range(20):
            detector.observe(10.0, 100.0)
        assert detector.drifted
        assert detector.rolling_median == pytest.approx(10.0)

    def test_needs_min_observations(self):
        detector = DriftDetector(threshold=1.5, min_observations=10)
        for _ in range(5):
            detector.observe(1.0, 100.0)
        assert not detector.drifted

    def test_window_forgets_old_errors(self):
        detector = DriftDetector(threshold=2.0, window=10, min_observations=5)
        for _ in range(10):
            detector.observe(1.0, 100.0)  # terrible
        for _ in range(10):
            detector.observe(100.0, 100.0)  # perfect, fills the window
        assert not detector.drifted

    def test_records_collected_for_few_shot(self):
        detector = DriftDetector()
        detector.observe(1.0, 2.0, record="r1")
        detector.observe(1.0, 2.0, record="r2")
        assert detector.fine_tuning_records() == ["r1", "r2"]
        detector.reset()
        assert detector.fine_tuning_records() == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(threshold=0.5)
