"""Tests for the storage engine: columns, stats, indexes, tables, databases."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.storage import (Column, Database, DataType, ForeignKey, Index,
                           NULL_CODE, PAGE_SIZE_BYTES, Schema, Table,
                           compute_column_stats)


def int_column(name, values):
    return Column(name, DataType.INT, np.asarray(values, dtype=np.float64))


class TestColumn:
    def test_numeric_null_handling(self):
        col = int_column("a", [1.0, np.nan, 3.0, np.nan])
        assert col.null_frac == 0.5
        np.testing.assert_allclose(col.non_null(), [1.0, 3.0])

    def test_dictionary_column(self):
        col = Column("s", DataType.STRING, [0, 1, NULL_CODE, 0],
                     dictionary=["ab", "cdef"])
        assert col.null_frac == 0.25
        assert col.n_distinct() == 2
        assert col.decode() == ["ab", "cdef", None, "ab"]

    def test_byte_width_string_average(self):
        col = Column("s", DataType.STRING, [0, 1, 1], dictionary=["ab", "cdef"])
        assert col.byte_width == pytest.approx((2 + 4 + 4) / 3)

    def test_dictionary_required_for_strings(self):
        with pytest.raises(ValueError):
            Column("s", DataType.STRING, [0, 1])

    def test_numeric_rejects_dictionary(self):
        with pytest.raises(ValueError):
            Column("a", DataType.INT, [1.0], dictionary=["x"])

    def test_code_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Column("s", DataType.CATEGORICAL, [0, 5], dictionary=["only"])

    def test_take_preserves_dictionary(self):
        col = Column("s", DataType.STRING, [0, 1, 0], dictionary=["x", "y"])
        sub = col.take(np.array([2, 1]))
        assert sub.decode() == ["x", "y"]


class TestColumnStats:
    def test_sorted_column_correlation_one(self):
        stats = compute_column_stats(int_column("a", np.arange(100)))
        assert stats.correlation == pytest.approx(1.0)

    def test_reversed_column_correlation_minus_one(self):
        stats = compute_column_stats(int_column("a", np.arange(100)[::-1]))
        assert stats.correlation == pytest.approx(-1.0)

    def test_shuffled_column_correlation_near_zero(self):
        rng = np.random.default_rng(0)
        stats = compute_column_stats(int_column("a", rng.permutation(2000)))
        assert abs(stats.correlation) < 0.1

    def test_ndistinct_and_bounds(self):
        stats = compute_column_stats(int_column("a", [5, 5, 7, 9, np.nan]))
        assert stats.ndistinct == 3
        assert stats.min_value == 5
        assert stats.max_value == 9
        assert stats.null_frac == pytest.approx(0.2)

    def test_mcvs_capture_skew(self):
        values = np.concatenate([np.zeros(900), np.arange(1, 101)])
        stats = compute_column_stats(int_column("a", values))
        assert 0.0 in stats.mcv_values
        idx = list(stats.mcv_values).index(0.0)
        assert stats.mcv_fractions[idx] == pytest.approx(0.9)

    def test_histogram_is_monotone(self):
        rng = np.random.default_rng(1)
        stats = compute_column_stats(int_column("a", rng.normal(size=5000)))
        bounds = stats.histogram_bounds
        assert np.all(np.diff(bounds) >= 0)

    def test_empty_column(self):
        stats = compute_column_stats(int_column("a", []))
        assert stats.ndistinct == 0
        assert np.isnan(stats.min_value)


class TestIndex:
    def test_eq_lookup(self):
        idx = Index("t", "a", np.array([3.0, 1.0, 3.0, 2.0]))
        assert sorted(idx.lookup_eq(3.0)) == [0, 2]
        assert list(idx.lookup_eq(9.0)) == []

    def test_range_lookup_inclusive_exclusive(self):
        idx = Index("t", "a", np.array([1.0, 2.0, 3.0, 4.0]))
        assert sorted(idx.lookup_range(2.0, 3.0)) == [1, 2]
        assert sorted(idx.lookup_range(2.0, 3.0, low_inclusive=False)) == [2]
        assert sorted(idx.lookup_range(2.0, 3.0, high_inclusive=False)) == [1]

    def test_open_ranges(self):
        idx = Index("t", "a", np.array([1.0, 2.0, 3.0]))
        assert sorted(idx.lookup_range(low=2.0)) == [1, 2]
        assert sorted(idx.lookup_range(high=2.0)) == [0, 1]
        assert sorted(idx.lookup_range()) == [0, 1, 2]

    def test_nulls_never_match(self):
        idx = Index("t", "a", np.array([1.0, np.nan, 2.0]))
        assert sorted(idx.lookup_range()) == [0, 2]

    def test_in_lookup(self):
        idx = Index("t", "a", np.array([5.0, 6.0, 5.0, 7.0]))
        assert sorted(idx.lookup_in([5.0, 7.0])) == [0, 2, 3]

    def test_height_grows_with_size(self):
        small = Index("t", "a", np.arange(100, dtype=float))
        large = Index("t", "a", np.arange(100_000, dtype=float))
        assert large.height > small.height

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=200),
           st.integers(-60, 60), st.integers(-60, 60))
    def test_range_matches_bruteforce(self, values, lo, hi):
        low, high = min(lo, hi), max(lo, hi)
        arr = np.array(values, dtype=np.float64)
        idx = Index("t", "a", arr)
        got = sorted(idx.lookup_range(low, high))
        expected = [i for i, v in enumerate(values) if low <= v <= high]
        assert got == expected


class TestTableAndDatabase:
    def _make_db(self):
        parent = Table("parent", [
            int_column("id", np.arange(10)),
            int_column("v", np.arange(10) * 2),
        ])
        child = Table("child", [
            int_column("id", np.arange(30)),
            int_column("parent_id", np.arange(30) % 10),
        ])
        schema = Schema(["parent", "child"],
                        [ForeignKey("child", "parent_id", "parent", "id")])
        return Database("toy", schema, [parent, child])

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [int_column("a", [1]), int_column("b", [1, 2])])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [int_column("a", [1]), int_column("a", [2])])

    def test_missing_table_rejected(self):
        schema = Schema(["a", "b"], [])
        with pytest.raises(ValueError):
            Database("x", schema, [Table("a", [int_column("c", [1])])])

    def test_schema_rejects_unknown_fk(self):
        with pytest.raises(ValueError):
            Schema(["a"], [ForeignKey("a", "x", "zz", "id")])

    def test_table_stats_pages(self):
        table = Table("t", [int_column("a", np.arange(10_000))])
        expected_pages = int(np.ceil(10_000 * (8 + 24) / PAGE_SIZE_BYTES))
        assert table.stats.relpages == expected_pages

    def test_append_and_analyze(self):
        db = self._make_db()
        before = db.table_stats("parent").reltuples
        db.table("parent").append({"id": np.arange(10, 20), "v": np.zeros(10)})
        db.analyze()
        assert db.table_stats("parent").reltuples == before + 10

    def test_append_missing_column_rejected(self):
        db = self._make_db()
        with pytest.raises(ValueError):
            db.table("parent").append({"id": np.arange(3)})

    def test_create_and_rebuild_index(self):
        db = self._make_db()
        idx = db.create_index("child", "parent_id")
        assert len(idx.lookup_eq(3.0)) == 3
        db.table("child").append({"id": [99], "parent_id": [3]})
        db.rebuild_indexes()
        assert len(db.index_on("child", "parent_id").lookup_eq(3.0)) == 4

    def test_join_graph_and_subsets(self):
        db = self._make_db()
        graph = db.schema.join_graph()
        assert graph.number_of_edges() == 1
        rng = np.random.default_rng(0)
        tables, fks = db.schema.connected_subsets("child", 2, rng)
        assert set(tables) == {"child", "parent"}
        assert len(fks) == 1

    def test_column_stats_lookup_errors(self):
        db = self._make_db()
        with pytest.raises(KeyError):
            db.column_stats("parent", "nope")
        with pytest.raises(KeyError):
            db.table("nope")
