"""Cross-module property-based tests on core invariants.

These exercise the pipeline end to end on randomly generated databases and
queries: execution correctness against brute force, estimator sanity,
simulator determinism, and featurization/batching invariants.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cardest import ExactEstimator, annotate_cardinalities
from repro.datagen import generate_database, random_database_spec
from repro.executor import execute_plan, simulate_runtime_ms
from repro.featurization import build_query_graph, make_batch
from repro.nn import q_error
from repro.optimizer import PlannerConfig, plan_query
from repro.sql import evaluate_predicate
from repro.workloads import WorkloadConfig, WorkloadGenerator

_DB_CACHE = {}


def db_for(seed):
    if seed not in _DB_CACHE:
        spec = random_database_spec(f"prop{seed}", seed=seed,
                                    base_rows=400, n_tables=4,
                                    complexity=0.7)
        _DB_CACHE[seed] = generate_database(spec)
    return _DB_CACHE[seed]


def brute_force_count(db, query):
    """Reference implementation: nested-loop join + predicate masks."""
    masks = {t: evaluate_predicate(query.filters.get(t), db.table(t))
             for t in query.tables}
    rows = {t: set(np.nonzero(masks[t])[0]) for t in query.tables}
    # Start from the first table, expand along joins (brute force).
    tuples = [{query.tables[0]: r} for r in rows[query.tables[0]]]
    remaining = list(query.joins)
    done = {query.tables[0]}
    while remaining:
        for edge in list(remaining):
            sides = edge.tables()
            if len(sides & done) == 1:
                new_table = next(iter(sides - done))
                child_vals = db.column(edge.child_table, edge.child_column).values
                parent_vals = db.column(edge.parent_table, edge.parent_column).values
                extended = []
                for combo in tuples:
                    for r in rows[new_table]:
                        probe = dict(combo)
                        probe[new_table] = r
                        child_value = child_vals[probe[edge.child_table]]
                        parent_value = parent_vals[probe[edge.parent_table]]
                        if not np.isnan(child_value) and child_value == parent_value:
                            extended.append(probe)
                tuples = extended
                done.add(new_table)
                remaining.remove(edge)
                break
        else:
            raise AssertionError("disconnected join graph")
    return len(tuples)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 4), query_seed=st.integers(0, 200))
def test_executor_matches_brute_force(seed, query_seed):
    """Top-join cardinality equals a nested-loop reference implementation."""
    db = db_for(seed)
    config = WorkloadConfig(min_joins=1, max_joins=2, group_by_prob=0.0)
    query = WorkloadGenerator(db, config, seed=query_seed).generate_query()
    plan = plan_query(db, query)
    execute_plan(db, plan)
    joins = [n for n in plan.iter_nodes() if n.is_join]
    top = joins[-1]
    expected = brute_force_count(db, query)
    assert top.true_rows == expected


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 4), query_seed=st.integers(0, 300))
def test_exact_estimator_matches_executor(seed, query_seed):
    db = db_for(seed)
    config = WorkloadConfig(min_joins=0, max_joins=3, group_by_prob=0.0)
    query = WorkloadGenerator(db, config, seed=query_seed).generate_query()
    plan = plan_query(db, query)
    execute_plan(db, plan)
    joins = [n for n in plan.iter_nodes() if n.is_join]
    exact = ExactEstimator().query_rows(db, query)
    if joins:
        assert exact == joins[-1].true_rows
    else:
        scans = [n for n in plan.iter_nodes() if n.is_scan]
        assert exact == scans[0].true_rows


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 4), query_seed=st.integers(0, 300),
       noise_seed=st.integers(0, 50))
def test_runtime_simulation_deterministic(seed, query_seed, noise_seed):
    db = db_for(seed)
    query = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                              seed=query_seed).generate_query()
    plan = plan_query(db, query)
    execute_plan(db, plan)
    a = simulate_runtime_ms(db, plan, seed=noise_seed)
    b = simulate_runtime_ms(db, plan, seed=noise_seed)
    assert a == b and a > 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 4), query_seed=st.integers(0, 300))
def test_featurization_invariants(seed, query_seed):
    """Every plan yields a valid graph; batching preserves structure."""
    db = db_for(seed)
    query = WorkloadGenerator(db, WorkloadConfig(max_joins=3),
                              seed=query_seed).generate_query()
    plan = plan_query(db, query)
    execute_plan(db, plan)
    cards = annotate_cardinalities(db, plan, "exact")
    graph = build_query_graph(db, plan, cards)
    graph.validate()
    # one plan node per operator; root is the last plan node
    n_plan_nodes = sum(1 for t in graph.node_types if t == "plan")
    assert n_plan_nodes == plan.n_nodes
    assert graph.node_types[graph.root] == "plan"
    batch = make_batch([graph, graph])
    assert batch.n_nodes == 2 * graph.n_nodes
    # every non-root node feeds exactly >=1 parent; all features finite
    for features in graph.features:
        assert np.isfinite(features).all()


@settings(max_examples=20, deadline=None)
@given(predicted=st.floats(0.001, 1e6), actual=st.floats(0.001, 1e6))
def test_q_error_properties(predicted, actual):
    """Q-error is symmetric, >= 1, and 1 iff prediction is exact."""
    err = q_error([predicted], [actual])[0]
    err_swapped = q_error([actual], [predicted])[0]
    assert err == pytest.approx(err_swapped)
    assert err >= 1.0
    assert q_error([actual], [actual])[0] == pytest.approx(1.0)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 4), factor=st.sampled_from([2.0, 3.0]))
def test_grow_database_preserves_distributions(seed, factor):
    """Grown databases keep schema and roughly keep value distributions."""
    db = db_for(seed)
    grown = __import__("repro.datagen", fromlist=["grow_database"]) \
        .grow_database(db, factor)
    assert set(grown.tables) == set(db.tables)
    for name, table in db.tables.items():
        assert len(grown.table(name)) == int(len(table) * factor)
        for col_name, col in table.columns.items():
            if col_name == "id" or col_name.endswith("_id"):
                continue  # key domains scale with table size by design
            if col.dtype.is_numeric:
                old = col.non_null()
                new = grown.table(name).column(col_name).non_null()
                if old.size > 50 and new.size > 50:
                    # Means are stable for multi-modal mixtures (medians can
                    # flip between modes for identical distributions).
                    spread = old.std() + 1.0
                    assert abs(new.mean() - old.mean()) <= 0.5 * spread
