"""Continuous-learning control plane: observe -> detect -> retrain ->
shadow-evaluate -> promote -> probation.

The contract under test, end to end:

* the serving core's observation tap sees every DONE/CACHED delivery (and
  nothing else), peek-then-commit, bounded with a drop counter,
* a calibrated drift scenario (train on small-join queries, shift traffic
  to an unseen database) drives the full loop: drift detected, candidate
  fine-tuned on the observed drift window and published *unactivated*,
  shadow-evaluated against the active model, promoted behind the Q-error
  margin gate, and graduated from probation,
* the same scenario replayed from scratch produces *bit-identical*
  controller decisions — same detect tick, same candidate digest, same
  event stream,
* a promoted candidate that regresses (traffic shifts again, to a heavy
  database it never learned) is auto-rolled-back inside the probation
  window,
* a controller crash at any fault point (observation ingest, retrain
  start, pre-publish, shadow evaluation) loses no observations and never
  double-publishes or double-promotes — retry converges,
* daemon mode is supervised: an injected crash bumps the crash counter,
  the loop restarts, and the scenario still completes.
"""

import dataclasses
import time

import numpy as np
import pytest

from repro import perfstats
from repro.bench import ArtifactStore
from repro.core import TrainingConfig, ZeroShotCostModel
from repro.datagen import generate_database, random_database_spec
from repro.executor import simulate_runtime_ms_batch
from repro.optimizer import plan_query
from repro.robustness.faults import (FaultSchedule, FaultSpec, InjectedFault,
                                     POINTS, inject)
from repro.serving import (ContinuousLearningController, ControllerConfig,
                           ControllerEvent, ControllerJournal, LoadConfig,
                           ModelRegistry, Observation, ObservationTap,
                           PredictorServer, RequestStatus, ServerConfig,
                           run_load)
from repro.serving.core import ServingCore
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


# ----------------------------------------------------------------------
# Shared world: a small training database, a drift database the base
# model has never seen, and a heavy database the *candidate* never learns
# (regression traffic).  Calibrated so the base model's Q-error on drift
# traffic (~3x) clears the 2.0 threshold, the fine-tuned candidate's
# (~1.3-1.7x) stays under it, and the candidate's on heavy traffic
# (~4-12x) clears the 2.5 probation threshold — with margin to spare
# under cross-process (hash-seed) training jitter.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def world():
    db = generate_database(random_database_spec(
        "ctl_db", seed=31, layout="snowflake", base_rows=400, n_tables=4,
        complexity=0.6))
    drift_db = generate_database(random_database_spec(
        "drift_db", seed=77, layout="star", base_rows=900, n_tables=5,
        complexity=0.9))
    heavy_db = generate_database(random_database_spec(
        "heavy_db", seed=5, layout="star", base_rows=20000, n_tables=6,
        complexity=0.9))
    dbs = {d.name: d for d in (db, drift_db, heavy_db)}
    queries_a = WorkloadGenerator(db, WorkloadConfig(max_joins=1),
                                  seed=7).generate(40)
    trace_a = list(generate_trace(db, queries_a, seed=7))
    queries_b = WorkloadGenerator(drift_db,
                                  WorkloadConfig(min_joins=2, max_joins=4),
                                  seed=99).generate(120)
    trace_b = list(generate_trace(drift_db, queries_b, seed=7))
    queries_c = WorkloadGenerator(heavy_db,
                                  WorkloadConfig(min_joins=3, max_joins=5),
                                  seed=13).generate(32)
    trace_c = list(generate_trace(heavy_db, queries_c, seed=7))
    base = ZeroShotCostModel.train(
        [trace_a], dbs, cards="exact",
        config=TrainingConfig(hidden_dim=24, epochs=12, dtype="float32",
                              seed=0))
    return {"dbs": dbs, "trace_a": trace_a, "trace_b": trace_b,
            "trace_c": trace_c, "base": base}


CTL_CONFIG = ControllerConfig(
    truth_seed=7, drift_threshold=2.0, drift_window=16, min_observations=8,
    max_fine_tune_records=16, fine_tune_epochs=20, fine_tune_lr=1e-3,
    shadow_margin=1.05, min_shadow_samples=16,
    probation_observations=64, probation_threshold=2.5,
    max_observations_per_tick=16)

LOAD = LoadConfig(n_clients=1, block=True)


def _stack(world, tmp_path, config=CTL_CONFIG, **server_overrides):
    registry = ModelRegistry(ArtifactStore(tmp_path))
    registry.publish("zs", world["base"],
                     dbs=list(world["dbs"].values()), default=True)
    defaults = dict(max_batch_size=8, max_delay_ms=1.0, result_cache_size=0)
    defaults.update(server_overrides)
    server = PredictorServer(registry, world["dbs"],
                             ServerConfig(**defaults)).start()
    controller = ContinuousLearningController(registry, server, config)
    return registry, server, controller


def _phases(world, regression=False):
    """The scenario's traffic phases, as (db_name, plans) lists."""
    a, b, c = world["trace_a"], world["trace_b"], world["trace_c"]
    last = ([("heavy_db", r.plan) for r in c] if regression
            else [("drift_db", r.plan) for r in b[80:120]])
    return [
        [("ctl_db", r.plan) for r in a[:24]],        # in-distribution
        [("drift_db", r.plan) for r in b[:48]],      # drift hits
        [("drift_db", r.plan) for r in b[48:80]],    # recovery traffic
        last,                                        # graduation / regression
    ]


def _run_scenario(world, tmp_path, regression=False, schedule=None,
                  max_retries=3):
    """Drive the scenario synchronously; returns (registry, controller,
    faults raised out of drain)."""
    registry, server, controller = _stack(world, tmp_path)
    raised = 0

    def drain():
        nonlocal raised
        for _ in range(max_retries):
            try:
                controller.drain()
                return
            except InjectedFault:
                raised += 1
        raise AssertionError("drain kept faulting")

    try:
        if schedule is not None:
            with inject(schedule):
                for phase in _phases(world, regression):
                    run_load(server, phase, LOAD)
                    drain()
        else:
            for phase in _phases(world, regression):
                run_load(server, phase, LOAD)
                drain()
    finally:
        server.stop()
    return registry, controller, raised


# ----------------------------------------------------------------------
# Observation tap
# ----------------------------------------------------------------------
class TestObservationTap:
    def test_peek_then_commit(self):
        tap = ObservationTap(max_pending=8)
        for i in range(3):
            assert tap.record(("obs", i))
        assert tap.peek(2) == [("obs", 0), ("obs", 1)]
        assert len(tap) == 3  # peek does not consume
        tap.commit(2)
        assert tap.peek() == [("obs", 2)]
        tap.commit(5)  # over-commit is clamped
        assert len(tap) == 0

    def test_bounded_drops_incoming(self):
        perfstats.reset()
        tap = ObservationTap(max_pending=2)
        assert tap.record("a") and tap.record("b")
        assert not tap.record("c")  # full: incoming dropped, not oldest
        assert tap.peek() == ["a", "b"]
        stats = tap.stats()
        assert stats == {"pending": 2, "recorded": 2, "dropped": 1,
                         "max_pending": 2}
        assert perfstats.snapshot()["controller.observe.dropped"] == 1

    def test_fault_points_registered(self):
        for point in ("controller.observe", "controller.retrain",
                      "controller.shadow"):
            assert point in POINTS


# ----------------------------------------------------------------------
# Serving-core observation plumbing
# ----------------------------------------------------------------------
class TestObservationPlumbing:
    def test_done_and_cached_observed(self, world, tmp_path):
        registry, server, controller = _stack(world, tmp_path,
                                              result_cache_size=64)
        try:
            plans = [("ctl_db", r.plan) for r in world["trace_a"][:6]]
            run_load(server, plans + plans[:2], LOAD)
        finally:
            server.stop()
        tap = controller.tap
        assert tap.stats()["recorded"] == 8  # 6 DONE + 2 CACHED
        observations = tap.peek()
        assert all(isinstance(o, Observation) for o in observations)
        assert all(o.served_by == ("zs", 1) for o in observations)
        assert all(o.db_name == "ctl_db" for o in observations)
        assert all(o.predicted_ms > 0 for o in observations)
        # Cache hits observe the same value as the original prediction.
        by_digest = {}
        for o in observations:
            by_digest.setdefault(o.digest, []).append(o.predicted_ms)
        repeats = [vals for vals in by_digest.values() if len(vals) > 1]
        assert repeats and all(len(set(vals)) == 1 for vals in repeats)

    def test_failed_requests_not_observed(self, world, tmp_path):
        registry, server, controller = _stack(world, tmp_path,
                                              max_retries=1,
                                              retry_backoff_ms=0.2)
        schedule = FaultSchedule(
            [FaultSpec("serve.infer", rate=1.0)], seed=3)
        try:
            with inject(schedule):
                handle = server.submit(world["trace_a"][0].plan, "ctl_db")
                handle.wait(10.0)
            assert handle.status in (RequestStatus.FAILED,
                                     RequestStatus.DEGRADED)
        finally:
            server.stop()
        assert controller.tap.stats()["recorded"] == 0

    def test_core_without_observer_unchanged(self, world, tmp_path):
        registry, server, _ = _stack(world, tmp_path)
        core = ServingCore(registry, world["dbs"])
        assert core.observer is None  # opt-in: no tap, no observation work
        server.stop()


# ----------------------------------------------------------------------
# Registry content-addressed lookup (the idempotent-publish primitive)
# ----------------------------------------------------------------------
class TestFindVersion:
    def test_finds_by_checkpoint_key(self, world, tmp_path):
        registry = ModelRegistry(ArtifactStore(tmp_path))
        deployment = registry.publish("zs", world["base"],
                                      dbs=[world["dbs"]["ctl_db"]])
        assert registry.find_version("zs", deployment.checkpoint_key) == 1
        assert registry.find_version("zs", "no-such-digest") is None
        assert registry.find_version("ghost", deployment.checkpoint_key) is None


# ----------------------------------------------------------------------
# Ground-truth join
# ----------------------------------------------------------------------
class TestGroundTruthJoin:
    def test_truth_matches_trace_runtime(self, world, tmp_path):
        # The seeded simulator is a pure function of the executed plan, so
        # the controller's online ground truth for a served plan equals the
        # runtime the trace recorded at generation time.
        registry, server, controller = _stack(world, tmp_path)
        server.stop()
        records = world["trace_a"][:5]
        batch = [Observation("ctl_db", r.plan, f"d{i}", 1.0, ("zs", 1))
                 for i, r in enumerate(records)]
        truths = controller._ground_truths(batch)
        assert truths == [pytest.approx(r.runtime_ms) for r in records]

    def test_fresh_plans_executed_first(self, world, tmp_path):
        perfstats.reset()
        registry, server, controller = _stack(world, tmp_path)
        server.stop()
        db = world["dbs"]["ctl_db"]
        query = WorkloadGenerator(db, WorkloadConfig(max_joins=1),
                                  seed=123).generate(1)[0]
        plan = plan_query(db, query)
        assert plan.true_rows is None  # planned, never executed
        tap = controller.tap
        tap.record(Observation("ctl_db", plan, "fresh", 5.0, ("zs", 1)))
        controller.tick()
        assert plan.true_rows is not None  # executed through the engine
        counters = perfstats.snapshot()
        assert counters["controller.observe.executed"] == 1
        assert controller.detector_for(1).observed_total == 1


# ----------------------------------------------------------------------
# The full loop, deterministically replayed
# ----------------------------------------------------------------------
class TestControllerScenario:
    def test_happy_path_promotes_and_graduates(self, world, tmp_path):
        perfstats.reset()
        registry, controller, raised = _run_scenario(world, tmp_path)
        assert raised == 0
        events = controller.journal.events()
        assert [e.kind for e in events] == [
            "drift-detected", "candidate-published", "promoted",
            "probation-passed"]
        drift, published, promoted, graduated = events
        assert drift.version == 1
        assert dict(drift.detail)["rolling_median"] > 2.0
        assert dict(published.detail)["records"] == 16
        assert published.candidate_version == 2
        detail = dict(promoted.detail)
        assert (detail["candidate_median"] * CTL_CONFIG.shadow_margin
                <= detail["active_median"])
        assert dict(graduated.detail)["probation_seen"] == 64
        assert registry.active("zs").version == 2
        assert len(registry.deployments("zs")) == 2
        assert controller.state == "monitoring"
        assert len(controller.tap) == 0
        counters = perfstats.snapshot()
        assert counters["controller.promote.count"] == 1
        assert counters.get("controller.rollback.count", 0) == 0
        assert counters["controller.retrain.count"] == 1

    def test_replay_is_bit_identical(self, world, tmp_path):
        _, first, _ = _run_scenario(world, tmp_path / "run1")
        _, second, _ = _run_scenario(world, tmp_path / "run2")
        # Typed events compare with == — same seq, tick, kind, versions,
        # digest and detail.  Identical digests mean the retrain produced
        # bit-identical candidate checkpoints.
        assert first.journal.events() == second.journal.events()
        digests = [e.digest for e in first.journal.events("candidate-published")]
        assert digests and digests == [
            e.digest for e in second.journal.events("candidate-published")]

    def test_regression_rolls_back_within_probation(self, world, tmp_path):
        perfstats.reset()
        registry, controller, _ = _run_scenario(world, tmp_path,
                                                regression=True)
        events = controller.journal.events()
        assert [e.kind for e in events] == [
            "drift-detected", "candidate-published", "promoted",
            "rolled-back"]
        rollback = dict(events[-1].detail)
        assert rollback["restored_version"] == 1
        # Inside the window: the regression tripped before graduation.
        assert rollback["probation_seen"] < CTL_CONFIG.probation_observations
        assert rollback["rolling_median"] > 2.5
        assert registry.active("zs").version == 1
        assert controller.state == "monitoring"
        assert perfstats.snapshot()["controller.rollback.count"] == 1

    def test_stats_surface(self, world, tmp_path):
        registry, controller, _ = _run_scenario(world, tmp_path)
        stats = controller.stats()
        assert stats["state"] == "monitoring"
        assert stats["active_version"] == 2
        assert stats["crashes"] == 0
        assert stats["tap"]["pending"] == 0
        assert stats["detector"]["observed_total"] > 0


# ----------------------------------------------------------------------
# Crash-recovery: the loop converges through injected faults
# ----------------------------------------------------------------------
class TestControllerChaos:
    @pytest.mark.parametrize("spec_kwargs", [
        dict(point="controller.observe", rate=1.0, max_faults=1),
        dict(point="controller.retrain", rate=1.0, max_faults=1),
        dict(point="controller.retrain", rate=1.0, max_faults=1,
             skip_calls=1),  # after training, before publication
        dict(point="controller.shadow", rate=1.0, max_faults=1),
    ], ids=["observe", "retrain-start", "retrain-pre-publish", "shadow"])
    def test_crash_then_retry_converges(self, world, tmp_path, spec_kwargs):
        schedule = FaultSchedule([FaultSpec(**spec_kwargs)], seed=3)
        registry, controller, raised = _run_scenario(world, tmp_path,
                                                     schedule=schedule)
        assert raised == 1  # the fault did fire, out of tick/drain
        # Exactly-once everything: one candidate version, one publication,
        # one promotion — and the scenario still completes.
        assert [e.kind for e in controller.journal.events()] == [
            "drift-detected", "candidate-published", "promoted",
            "probation-passed"]
        assert len(registry.deployments("zs")) == 2
        assert registry.active("zs").version == 2
        # No observation was lost or double-ingested: every delivery for
        # the v1 deployment (24 in-distribution + 48 drift) is accounted.
        assert controller.detector_for(1).observed_total == 72
        assert len(controller.tap) == 0

    def test_crashed_chaos_run_replays_identically(self, world, tmp_path):
        runs = []
        for name in ("c1", "c2"):
            schedule = FaultSchedule(
                [FaultSpec("controller.retrain", rate=1.0, max_faults=1)],
                seed=5)
            _, controller, raised = _run_scenario(world, tmp_path / name,
                                                  schedule=schedule)
            assert raised == 1
            runs.append(controller.journal.events())
        assert runs[0] == runs[1]

    def test_extra_ticks_never_double_promote(self, world, tmp_path):
        registry, controller, _ = _run_scenario(world, tmp_path)
        for _ in range(5):
            controller.tick()  # idle ticks after convergence
        assert len(controller.journal.events("promoted")) == 1
        assert len(registry.deployments("zs")) == 2


# ----------------------------------------------------------------------
# Supervised daemon mode
# ----------------------------------------------------------------------
class TestControllerDaemon:
    def _await(self, predicate, timeout_s=30.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.02)
        return False

    def _pump_until_graduated(self, world, server, controller):
        """Drive the drift scenario under a live daemon.

        Unlike the synchronous tests, the daemon ticks *while* load runs,
        so the promotion can land anywhere inside a phase and the number
        of post-promotion deliveries a fixed phase list produces is not
        deterministic.  After the drift phases, keep pumping recovery
        traffic until the controller graduates probation (bounded).
        """
        for phase in _phases(world)[:2]:
            run_load(server, phase, LOAD)
            assert self._await(lambda: len(controller.tap) == 0)
        recovery = [("drift_db", r.plan) for r in world["trace_b"][48:80]]
        for _ in range(20):
            if controller.journal.events("probation-passed"):
                return True
            run_load(server, recovery, LOAD)
            assert self._await(lambda: len(controller.tap) == 0)
        return bool(controller.journal.events("probation-passed"))

    def test_daemon_closes_the_loop(self, world, tmp_path):
        config = dataclasses.replace(CTL_CONFIG, cadence_s=0.01)
        registry, server, controller = _stack(world, tmp_path, config=config)
        try:
            with controller:
                assert self._pump_until_graduated(world, server, controller)
        finally:
            server.stop()
        assert registry.active("zs").version == 2
        assert controller.stats()["crashes"] == 0

    def test_daemon_survives_injected_crash(self, world, tmp_path):
        config = dataclasses.replace(CTL_CONFIG, cadence_s=0.01)
        registry, server, controller = _stack(world, tmp_path, config=config)
        schedule = FaultSchedule(
            [FaultSpec("controller.observe", rate=1.0, max_faults=1)],
            seed=9)
        try:
            with inject(schedule):
                with controller:
                    assert self._pump_until_graduated(world, server,
                                                      controller)
        finally:
            server.stop()
        # The crash was real (supervisor restarted the loop) and harmless
        # (peek-then-commit re-read the batch; the scenario completed).
        stats = controller.stats()
        assert stats["crashes"] == 1, stats["last_crash"]
        assert schedule.stats()["controller.observe"]["faults"] == 1
        assert registry.active("zs").version == 2

    def test_stop_is_idempotent_and_restartable(self, world, tmp_path):
        registry, server, controller = _stack(world, tmp_path)
        controller.start()
        with pytest.raises(RuntimeError):
            controller.start()  # already running
        controller.stop()
        controller.stop()  # no-op
        controller.start()  # restartable after a clean stop
        controller.stop()
        server.stop()


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestControllerJournal:
    def test_jsonl_mirror_round_trips(self, world, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ControllerJournal(path=str(path))
        events = [
            ControllerEvent(seq=0, tick=3, kind="drift-detected", model="zs",
                            version=1, detail=(("rolling_median", 3.1),)),
            ControllerEvent(seq=1, tick=3, kind="candidate-published",
                            model="zs", version=1, candidate_version=2,
                            digest="abc123", detail=(("records", 16),)),
        ]
        for event in events:
            journal.append(event)
        assert ControllerJournal.read_jsonl(str(path)) == events
        assert journal.events("drift-detected") == events[:1]
        assert len(journal) == 2

    def test_scenario_journal_mirrors_to_disk(self, world, tmp_path):
        path = tmp_path / "ctl.jsonl"
        config = dataclasses.replace(CTL_CONFIG, journal_path=str(path))
        registry, server, controller = _stack(world, tmp_path, config=config)
        try:
            for phase in _phases(world):
                run_load(server, phase, LOAD)
                controller.drain()
        finally:
            server.stop()
        assert ControllerJournal.read_jsonl(str(path)) == \
            controller.journal.events()


# ----------------------------------------------------------------------
# Per-phase Q-error reporting (drift scenarios' recovery curves)
# ----------------------------------------------------------------------
class TestQErrorByPhase:
    def test_phase_summaries(self, world, tmp_path):
        registry, server, _ = _stack(world, tmp_path)
        try:
            plans = [("ctl_db", r.plan) for r in world["trace_a"][:12]]
            report = run_load(server, plans, LOAD)
        finally:
            server.stop()
        dbs = world["dbs"]

        def truth_for(handle):
            return float(simulate_runtime_ms_batch(
                dbs[handle.db_name], [handle.plan], seed=7)[0])

        summary = report.compute_q_error_phases(
            truth_for, {"first": (0, 6), "second": (6, 12), "empty": (12, 12)})
        assert report.q_error_by_phase is summary
        assert summary["first"]["count"] == 6
        assert summary["second"]["count"] == 6
        assert summary["empty"] == {"count": 0}
        for name in ("first", "second"):
            phase = summary[name]
            assert 1.0 <= phase["median"] <= phase["p95"] <= phase["max"]
        assert "q_error_by_phase" in report.as_dict()


# ----------------------------------------------------------------------
# Journal memory bound (PR 9): keep-latest in memory, complete on disk
# ----------------------------------------------------------------------
class TestJournalBound:
    def test_keeps_latest_in_memory_jsonl_complete(self, tmp_path):
        path = tmp_path / "bounded.jsonl"
        journal = ControllerJournal(path=str(path), max_events=5)
        events = [ControllerEvent(seq=i, tick=i, kind="drift-detected",
                                  model="zs", version=1)
                  for i in range(12)]
        for event in events:
            journal.append(event)
        # Memory keeps the latest 5; the JSONL mirror keeps everything.
        assert journal.events() == events[-5:]
        assert len(journal) == 5
        assert journal.total_appended == 12
        assert journal.dropped == 7
        assert ControllerJournal.read_jsonl(str(path)) == events

    def test_default_bound_is_generous(self):
        journal = ControllerJournal()
        assert journal.max_events == 4096
        journal.append(ControllerEvent(seq=0, tick=0, kind="drift-detected",
                                       model="zs"))
        assert journal.dropped == 0

    def test_config_threads_bound_to_controller(self, world, tmp_path):
        config = dataclasses.replace(CTL_CONFIG, journal_max_events=7)
        registry, server, controller = _stack(world, tmp_path, config=config)
        try:
            assert controller.journal.max_events == 7
        finally:
            server.stop()
