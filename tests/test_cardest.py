"""Tests for SPNs, the data-driven estimator, exact estimation and plan
annotation — including the accuracy ordering the paper relies on."""

import numpy as np
import pytest

from repro.cardest import (CARD_SOURCES, DataDrivenEstimator, ExactEstimator,
                           TraditionalEstimator, UnsupportedPredicate,
                           annotate_cardinalities, learn_spn,
                           predicate_to_constraints)
from repro.executor import execute_plan
from repro.nn import q_error
from repro.optimizer import plan_query
from repro.sql import (AggregateSpec, Comparison, JoinEdge, PredOp, Query,
                       conjunction, disjunction, evaluate_predicate)
from repro.workloads import WorkloadConfig, WorkloadGenerator


class TestConstraintMapping:
    def test_conjunction_maps(self):
        pred = conjunction([Comparison("t", "a", PredOp.EQ, 1),
                            Comparison("t", "b", PredOp.GT, 2),
                            Comparison("t", "a", PredOp.LT, 9)])
        constraints = predicate_to_constraints(pred)
        assert set(constraints) == {"a", "b"}
        assert len(constraints["a"]) == 2

    def test_disjunction_unsupported(self):
        pred = disjunction([Comparison("t", "a", PredOp.EQ, 1),
                            Comparison("t", "a", PredOp.EQ, 2)])
        with pytest.raises(UnsupportedPredicate):
            predicate_to_constraints(pred)

    def test_like_unsupported(self):
        with pytest.raises(UnsupportedPredicate):
            predicate_to_constraints(Comparison("t", "a", PredOp.LIKE, "%x%"))


class TestSPN:
    def _selectivity(self, spn, table, preds):
        constraints = {}
        for p in preds:
            constraints.setdefault(p.column, []).append(p)
        return spn.selectivity(constraints, lambda node, lit: float(lit))

    def test_uniform_equality(self):
        rng = np.random.default_rng(0)
        data = {"a": rng.integers(0, 10, 20_000).astype(float)}
        spn = learn_spn(data)
        sel = self._selectivity(spn, "t", [Comparison("t", "a", PredOp.EQ, 3)])
        assert sel == pytest.approx(0.1, rel=0.15)

    def test_range_on_continuous(self):
        rng = np.random.default_rng(1)
        data = {"a": rng.uniform(0, 100, 30_000)}
        spn = learn_spn(data)
        sel = self._selectivity(spn, "t", [Comparison("t", "a", PredOp.LT, 25.0)])
        assert sel == pytest.approx(0.25, abs=0.05)

    def test_null_mass(self):
        values = np.concatenate([np.full(3000, np.nan), np.arange(7000).astype(float)])
        spn = learn_spn({"a": values})
        sel = self._selectivity(spn, "t", [Comparison("t", "a", PredOp.IS_NULL)])
        assert sel == pytest.approx(0.3, abs=0.03)
        sel_not = self._selectivity(spn, "t",
                                    [Comparison("t", "a", PredOp.IS_NOT_NULL)])
        assert sel_not == pytest.approx(0.7, abs=0.03)

    def test_correlated_columns_beat_independence(self):
        """SPN captures a strong correlation that independence misses."""
        rng = np.random.default_rng(2)
        a = rng.integers(0, 10, 30_000).astype(float)
        b = a.copy()  # perfectly correlated
        spn = learn_spn({"a": a, "b": b})
        sel = self._selectivity(spn, "t",
                                [Comparison("t", "a", PredOp.EQ, 3),
                                 Comparison("t", "b", PredOp.EQ, 3)])
        # True selectivity 0.1; independence would give 0.01.
        assert sel > 0.05

    def test_in_predicate(self):
        rng = np.random.default_rng(3)
        spn = learn_spn({"a": rng.integers(0, 4, 20_000).astype(float)})
        sel = self._selectivity(spn, "t", [Comparison("t", "a", PredOp.IN, [0, 1])])
        assert sel == pytest.approx(0.5, rel=0.15)

    def test_unknown_column_rejected(self):
        spn = learn_spn({"a": np.arange(100).astype(float)})
        with pytest.raises(KeyError):
            spn.selectivity({"zz": []}, lambda n, v: v)

    def test_empty_constraints(self):
        spn = learn_spn({"a": np.arange(100).astype(float)})
        assert spn.selectivity({}, lambda n, v: v) == 1.0


class TestExactEstimator:
    def test_scan(self, toy_db, filtered_query):
        exact = ExactEstimator()
        pred = filtered_query.filters["orders"]
        expected = evaluate_predicate(pred, toy_db.table("orders")).sum()
        assert exact.scan_rows(toy_db, "orders", pred) == expected

    def test_join_matches_executor(self, toy_db, join_query):
        exact = ExactEstimator()
        rows = exact.query_rows(toy_db, join_query)
        plan = plan_query(toy_db, join_query)
        execute_plan(toy_db, plan)
        top_join = [n for n in plan.iter_nodes() if n.is_join][-1]
        assert rows == top_join.true_rows


class TestDataDrivenEstimator:
    @pytest.fixture(scope="class")
    def estimator(self, toy_db):
        return DataDrivenEstimator(toy_db, sample_size=512, seed=0)

    def test_scan_estimate_close(self, toy_db, estimator):
        pred = Comparison("orders", "status", PredOp.EQ, "open")
        est = estimator.scan_rows(toy_db, "orders", pred)
        true = evaluate_predicate(pred, toy_db.table("orders")).sum()
        assert q_error([est], [true])[0] < 1.5

    def test_join_estimate_close(self, toy_db, estimator):
        joins = [JoinEdge("orders", "customer_id", "customers", "id")]
        filters = {"customers": Comparison("customers", "category",
                                           PredOp.EQ, "gold")}
        est = estimator.join_rows(toy_db, {"orders", "customers"}, joins, filters)
        true = ExactEstimator().join_rows(toy_db, {"orders", "customers"},
                                          joins, filters)
        assert q_error([est], [true])[0] < 2.0

    def test_unsupported_falls_back(self, toy_db, estimator):
        pred = Comparison("orders", "status", PredOp.LIKE, "%pen%")
        est = estimator.scan_rows(toy_db, "orders", pred)
        fallback = TraditionalEstimator().scan_rows(toy_db, "orders", pred)
        assert est == pytest.approx(fallback)

    def test_more_accurate_than_traditional_on_correlation(self, toy_db,
                                                           estimator):
        """Correlated conjunction: data-driven beats independence (median)."""
        orders = toy_db.table("orders")
        # amount > 120 is highly correlated with status != open (by design).
        pred = conjunction([
            Comparison("orders", "amount", PredOp.GT, 120.0),
            Comparison("orders", "status", PredOp.EQ, "returned"),
        ])
        true = evaluate_predicate(pred, orders).sum()
        dd = estimator.scan_rows(toy_db, "orders", pred)
        trad = TraditionalEstimator().scan_rows(toy_db, "orders", pred)
        assert q_error([dd], [true])[0] < q_error([trad], [true])[0]

    def test_accuracy_ordering_on_workload(self, gen_db):
        """Median q-error: traditional >= data-driven >= exact(=1)."""
        estimator = DataDrivenEstimator(gen_db, sample_size=1024, seed=1)
        traditional = TraditionalEstimator()
        exact = ExactEstimator()
        queries = WorkloadGenerator(
            gen_db, WorkloadConfig(max_joins=2), seed=31).generate(40)
        errors = {"trad": [], "dd": []}
        for query in queries:
            true = exact.query_rows(gen_db, query)
            if true < 1:
                continue
            errors["trad"].append(q_error(
                [traditional.query_rows(gen_db, query)], [true])[0])
            errors["dd"].append(q_error(
                [estimator.query_rows(gen_db, query)], [true])[0])
        assert np.median(errors["dd"]) <= np.median(errors["trad"]) + 0.05
        assert np.median(errors["dd"]) < 3.0

    def test_refresh_after_update(self, toy_db):
        estimator = DataDrivenEstimator(toy_db, sample_size=256, seed=2)
        estimator.refresh(seed=3)
        est = estimator.scan_rows(toy_db, "orders", None)
        assert est == pytest.approx(2000, rel=0.01)


class TestAnnotation:
    def _plan(self, db, query):
        plan = plan_query(db, query)
        execute_plan(db, plan)
        return plan

    def test_sources_validated(self, toy_db, join_query):
        plan = self._plan(toy_db, join_query)
        with pytest.raises(ValueError):
            annotate_cardinalities(toy_db, plan, "psychic")

    def test_exact_source_uses_true_rows(self, toy_db, join_query):
        plan = self._plan(toy_db, join_query)
        cards = annotate_cardinalities(toy_db, plan, "exact")
        for node in plan.iter_nodes():
            assert cards[id(node)] == pytest.approx(node.true_rows)

    def test_optimizer_source_uses_estimates(self, toy_db, join_query):
        plan = self._plan(toy_db, join_query)
        cards = annotate_cardinalities(toy_db, plan, "optimizer")
        for node in plan.iter_nodes():
            assert cards[id(node)] == pytest.approx(node.est_rows)

    def test_deepdb_source_complete_and_positive(self, toy_db, join_query):
        estimator = DataDrivenEstimator(toy_db, sample_size=512, seed=4)
        plan = self._plan(toy_db, join_query)
        cards = annotate_cardinalities(toy_db, plan, "deepdb",
                                       estimator=estimator)
        assert len(cards) == plan.n_nodes
        for node in plan.iter_nodes():
            assert cards[id(node)] >= 0.0

    def test_all_sources_on_generated_db(self, gen_db):
        estimator = DataDrivenEstimator(gen_db, sample_size=512, seed=5)
        queries = WorkloadGenerator(gen_db, WorkloadConfig(max_joins=2),
                                    seed=32).generate(5)
        for query in queries:
            plan = self._plan(gen_db, query)
            for source in CARD_SOURCES:
                cards = annotate_cardinalities(gen_db, plan, source,
                                               estimator=estimator)
                assert len(cards) == plan.n_nodes
