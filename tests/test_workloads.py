"""Tests for the workload generator and trace generation."""

import numpy as np
import pytest

from repro.sql import BooleanPredicate, Comparison, PredOp, iter_predicate_nodes
from repro.workloads import (Trace, WorkloadConfig, WorkloadGenerator,
                             generate_trace, imdb_workload,
                             imdb_workload_names)


def all_predicate_ops(queries):
    ops = set()
    for query in queries:
        for pred in query.filters.values():
            for node in iter_predicate_nodes(pred):
                ops.add(node.op)
    return ops


class TestWorkloadGenerator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(mode="weird")
        with pytest.raises(ValueError):
            WorkloadConfig(min_joins=3, max_joins=1)

    def test_queries_valid_and_join_bounded(self, gen_db):
        config = WorkloadConfig(min_joins=0, max_joins=3)
        queries = WorkloadGenerator(gen_db, config, seed=1).generate(50)
        assert len(queries) == 50
        for query in queries:
            assert query.n_joins <= 3
            assert len(query.tables) == query.n_joins + 1

    def test_deterministic_given_seed(self, gen_db):
        a = WorkloadGenerator(gen_db, seed=9).generate(10)
        b = WorkloadGenerator(gen_db, seed=9).generate(10)
        assert [q.describe() for q in a] == [q.describe() for q in b]

    def test_standard_mode_is_conjunctive(self, gen_db):
        config = WorkloadConfig(mode="standard", max_joins=2)
        queries = WorkloadGenerator(gen_db, config, seed=3).generate(80)
        ops = all_predicate_ops(queries)
        assert PredOp.OR not in ops
        assert PredOp.LIKE not in ops
        assert PredOp.IS_NULL not in ops

    def test_complex_mode_uses_rich_operators(self, gen_db):
        config = WorkloadConfig(mode="complex", max_joins=2)
        queries = WorkloadGenerator(gen_db, config, seed=3).generate(300)
        ops = all_predicate_ops(queries)
        assert PredOp.IN in ops
        assert (PredOp.IS_NULL in ops) or (PredOp.IS_NOT_NULL in ops)
        assert PredOp.OR in ops

    def test_complex_mode_generates_string_patterns(self, toy_db):
        config = WorkloadConfig(mode="complex", max_joins=1,
                                string_pred_prob=1.0, filter_table_prob=1.0)
        queries = WorkloadGenerator(toy_db, config, seed=5).generate(200)
        ops = all_predicate_ops(queries)
        assert PredOp.LIKE in ops or PredOp.NOT_LIKE in ops

    def test_literals_come_from_data(self, toy_db):
        config = WorkloadConfig(mode="standard", max_joins=0,
                                filter_table_prob=1.0)
        queries = WorkloadGenerator(toy_db, config, seed=7).generate(60)
        for query in queries:
            for pred in query.filters.values():
                for node in iter_predicate_nodes(pred):
                    if isinstance(node, Comparison) and isinstance(node.literal, str):
                        column = toy_db.column(node.table, node.column)
                        assert node.literal in column.dictionary

    def test_group_by_appears(self, gen_db):
        config = WorkloadConfig(group_by_prob=1.0, max_joins=1)
        queries = WorkloadGenerator(gen_db, config, seed=11).generate(30)
        assert any(q.group_by for q in queries)


class TestImdbWorkloads:
    def test_names(self):
        assert set(imdb_workload_names()) == {"scale", "synthetic",
                                              "job_light", "job_full"}

    def test_sizes_default(self, gen_db):
        assert len(imdb_workload(gen_db, "job_light")) == 70
        assert len(imdb_workload(gen_db, "job_full")) == 113

    def test_unknown_workload(self, gen_db):
        with pytest.raises(KeyError):
            imdb_workload(gen_db, "job_medium")

    def test_job_full_is_complex(self, gen_db):
        queries = imdb_workload(gen_db, "job_full")
        ops = all_predicate_ops(queries)
        assert PredOp.IN in ops or PredOp.OR in ops


class TestTraceGeneration:
    def test_trace_records_complete(self, gen_db):
        queries = WorkloadGenerator(gen_db, WorkloadConfig(max_joins=2),
                                    seed=21).generate(25)
        trace = generate_trace(gen_db, queries, seed=1)
        assert len(trace) == 25
        for record in trace:
            assert record.runtime_ms > 0
            assert record.plan.true_rows is not None
            assert record.db_name == gen_db.name

    def test_trace_reproducible(self, gen_db):
        queries = WorkloadGenerator(gen_db, seed=22).generate(10)
        t1 = generate_trace(gen_db, queries, seed=5)
        t2 = generate_trace(gen_db, queries, seed=5)
        np.testing.assert_allclose(t1.runtimes(), t2.runtimes())

    def test_timeout_exclusion(self, gen_db):
        queries = WorkloadGenerator(gen_db, seed=23).generate(10)
        trace = generate_trace(gen_db, queries, timeout_ms=0.0)
        assert len(trace) == 0
        assert trace.excluded_timeouts == 10

    def test_split_and_sample(self, gen_db):
        queries = WorkloadGenerator(gen_db, seed=24).generate(20)
        trace = generate_trace(gen_db, queries)
        train, test = trace.split(0.75, seed=0)
        assert len(train) == 15 and len(test) == 5
        sampled = trace.sample(7, seed=1)
        assert len(sampled) == 7
        assert len(trace.sample(999)) == 20

    def test_filter_by_joins(self, gen_db):
        config = WorkloadConfig(min_joins=0, max_joins=3)
        queries = WorkloadGenerator(gen_db, config, seed=25).generate(40)
        trace = generate_trace(gen_db, queries)
        small = trace.filter(lambda r: r.n_joins <= 1)
        assert all(r.n_joins <= 1 for r in small)

    def test_execution_hours(self, gen_db):
        queries = WorkloadGenerator(gen_db, seed=26).generate(5)
        trace = generate_trace(gen_db, queries)
        expected = trace.runtimes().sum() / 3.6e6
        assert trace.total_execution_hours() == pytest.approx(expected)

    def test_index_mode_varies_physical_design(self, gen_db):
        queries = WorkloadGenerator(gen_db, WorkloadConfig(mode="standard"),
                                    seed=27).generate(40)
        before = dict(gen_db.indexes)
        trace = generate_trace(gen_db, queries, index_mode=True, seed=3)
        designs = {record.indexes for record in trace}
        assert len(designs) > 1  # physical design changed during the run
        assert gen_db.indexes == before  # cleanup restored the initial state

    def test_trace_slicing(self, gen_db):
        queries = WorkloadGenerator(gen_db, seed=28).generate(12)
        trace = generate_trace(gen_db, queries)
        head = trace[:4]
        assert isinstance(head, Trace) and len(head) == 4
        assert trace[0].runtime_ms == head[0].runtime_ms
