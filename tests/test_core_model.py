"""Tests for the zero-shot model: forward pass, training, few-shot mode,
persistence, and the core zero-shot property (transfer to an unseen DB)."""

import numpy as np
import pytest

from repro.core import (EstimatorCache, TrainingConfig, ZeroShotCostModel,
                        ZeroShotModel, featurize_records)
from repro.datagen import generate_database, random_database_spec
from repro.featurization import (FEATURE_DIMS, FeatureScalers, QueryGraph,
                                 make_batch, make_batch_reference)
from repro.nn import no_grad, q_error
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


def make_db(seed, layout="random", rows=900, tables=4):
    spec = random_database_spec(f"db{seed}", seed=seed, layout=layout,
                                base_rows=rows, n_tables=tables,
                                complexity=0.6)
    return generate_database(spec)


@pytest.fixture(scope="module")
def training_world():
    """Four small training databases + one unseen test database."""
    dbs = {}
    traces = []
    layouts = ["random", "star", "chain", "snowflake"]
    for seed in (1, 2, 3, 4):
        db = make_db(seed, layout=layouts[seed - 1])
        dbs[db.name] = db
        queries = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                    seed=seed).generate(90)
        traces.append(generate_trace(db, queries, seed=seed))
    unseen = make_db(9, layout="snowflake")
    dbs[unseen.name] = unseen
    queries = WorkloadGenerator(unseen, WorkloadConfig(max_joins=2),
                                seed=9).generate(50)
    unseen_trace = generate_trace(unseen, queries, seed=9)
    return dbs, traces, unseen_trace


@pytest.fixture(scope="module")
def trained(training_world):
    dbs, traces, _ = training_world
    config = TrainingConfig(hidden_dim=32, epochs=50, batch_size=32,
                            seed=0, validation_fraction=0.1)
    return ZeroShotCostModel.train(traces, dbs, cards="exact", config=config)


class TestForwardPass:
    def test_output_shape(self, training_world):
        dbs, traces, _ = training_world
        records = list(traces[0])[:5]
        graphs = featurize_records(records, dbs, cards="exact")
        scalers = FeatureScalers().fit(graphs)
        model = ZeroShotModel(hidden_dim=16, seed=0)
        out = model(make_batch(graphs, scalers))
        assert out.shape == (5,)

    def test_deterministic_in_eval_mode(self, training_world):
        dbs, traces, _ = training_world
        records = list(traces[0])[:3]
        graphs = featurize_records(records, dbs, cards="exact")
        model = ZeroShotModel(hidden_dim=16, dropout=0.2, seed=0).eval()
        batch = make_batch(graphs)
        np.testing.assert_allclose(model(batch).numpy(), model(batch).numpy())

    def test_batching_equals_single(self, training_world):
        """Batched predictions equal per-graph predictions (no cross-talk)."""
        dbs, traces, _ = training_world
        records = list(traces[0])[:4]
        graphs = featurize_records(records, dbs, cards="exact")
        model = ZeroShotModel(hidden_dim=16, seed=1).eval()
        batched = model(make_batch(graphs)).numpy()
        singles = np.concatenate([model(make_batch([g])).numpy()
                                  for g in graphs])
        np.testing.assert_allclose(batched, singles, atol=1e-9)


def tiny_graph(seed=0):
    """Hand-built multi-level DAG exercising every node type."""
    rng = np.random.default_rng(seed)
    g = QueryGraph()
    attr = g.add_node("attribute", rng.normal(size=FEATURE_DIMS["attribute"]))
    table = g.add_node("table", rng.normal(size=FEATURE_DIMS["table"]))
    pred = g.add_node("predicate", rng.normal(size=FEATURE_DIMS["predicate"]))
    out = g.add_node("output", rng.normal(size=FEATURE_DIMS["output"]))
    scan = g.add_node("plan", rng.normal(size=FEATURE_DIMS["plan"]))
    root = g.add_node("plan", rng.normal(size=FEATURE_DIMS["plan"]))
    g.add_edge(attr, pred)
    g.add_edge(table, scan)
    g.add_edge(pred, scan)
    g.add_edge(scan, root)
    g.add_edge(out, root)
    g.root = root
    g.validate()
    return g


class TestFastPathEquivalence:
    """Block-assembly forward, graph-free inference and the vectorized
    batcher must agree with each other and with numerics."""

    def _batch(self):
        return make_batch([tiny_graph(0), tiny_graph(1), tiny_graph(2)])

    def test_forward_inference_matches_tensor_path(self):
        model = ZeroShotModel(hidden_dim=8, seed=4).eval()
        batch = self._batch()
        tensor_out = model(batch).numpy()
        numpy_out = model.forward_inference(batch)
        np.testing.assert_allclose(numpy_out, tensor_out, atol=1e-12)

    def test_no_grad_dispatches_to_inference_path(self):
        model = ZeroShotModel(hidden_dim=8, seed=4).eval()
        batch = self._batch()
        with no_grad():
            out = model(batch)
        assert not out.requires_grad
        np.testing.assert_allclose(out.numpy(), model(batch).numpy(),
                                   atol=1e-12)

    def test_forward_agrees_on_reference_batches(self):
        graphs = [tiny_graph(0), tiny_graph(1)]
        model = ZeroShotModel(hidden_dim=8, seed=2).eval()
        fast = model(make_batch(graphs)).numpy()
        ref = model(make_batch_reference(graphs)).numpy()
        np.testing.assert_allclose(fast, ref, atol=1e-12)

    def test_float32_model_tracks_float64(self):
        import copy
        batch = self._batch()
        model64 = ZeroShotModel(hidden_dim=8, seed=4).eval()
        model32 = copy.deepcopy(model64).to(np.float32)
        out64 = model64(batch).numpy()
        out32 = model32(batch).numpy()
        assert out32.dtype == np.float32
        np.testing.assert_allclose(out32, out64, rtol=1e-3, atol=1e-3)

    def test_message_passing_gradcheck(self):
        """Central-difference check of the block-assembly forward w.r.t.
        encoder, combiner and estimator weights."""
        batch = make_batch([tiny_graph(0), tiny_graph(1)])
        model = ZeroShotModel(hidden_dim=3, seed=6)
        row_weights = np.array([1.0, -2.0])

        def loss():
            return float((model(batch).numpy() * row_weights).sum())

        checked = [
            model.encoders["plan"].linears[0].weight,
            model.combiners["plan"].linears[0].weight,
            model.combiners["predicate"].linears[-1].bias,
            model.estimator.linears[0].weight,
        ]
        from repro.nn import Tensor
        model.zero_grad()
        (model(batch) * Tensor(row_weights)).sum().backward()
        eps = 1e-6
        for param in checked:
            grad = param.grad
            assert grad is not None
            flat = param.data.reshape(-1)
            numeric = np.zeros_like(flat)
            for i in range(flat.size):
                orig = flat[i]
                flat[i] = orig + eps
                upper = loss()
                flat[i] = orig - eps
                lower = loss()
                flat[i] = orig
                numeric[i] = (upper - lower) / (2 * eps)
            np.testing.assert_allclose(grad.reshape(-1), numeric, atol=1e-4)


class TestTraining:
    def test_loss_decreases(self, trained):
        losses = trained.history["train_loss"]
        assert losses[-1] < losses[0]

    def test_fits_training_data(self, trained, training_world):
        dbs, traces, _ = training_world
        metrics = trained.evaluate(traces[0], dbs, cards="exact")
        assert metrics["median"] < 1.6

    def test_zero_shot_transfer_to_unseen_db(self, trained, training_world):
        """The core claim: decent accuracy on a database never trained on."""
        dbs, _, unseen_trace = training_world
        metrics = trained.evaluate(unseen_trace, dbs, cards="exact")
        assert metrics["median"] < 2.5

    def test_few_shot_improves_on_unseen_db(self, trained, training_world):
        dbs, _, unseen_trace = training_world
        train_part, test_part = unseen_trace.split(0.6, seed=1)
        before = trained.evaluate(test_part, dbs, cards="exact")
        few_shot = trained.fine_tune(list(train_part), dbs, cards="exact",
                                     epochs=12)
        after = few_shot.evaluate(test_part, dbs, cards="exact")
        assert after["median"] <= before["median"] * 1.1  # no regression
        # original model untouched
        again = trained.evaluate(test_part, dbs, cards="exact")
        assert again["median"] == pytest.approx(before["median"])

    def test_training_validates_inputs(self):
        from repro.core.training import train_model
        model = ZeroShotModel(hidden_dim=8)
        with pytest.raises(ValueError):
            train_model(model, [], [], TrainingConfig(epochs=1))

    def test_deepdb_cards_inference(self, trained, training_world):
        dbs, _, unseen_trace = training_world
        cache = EstimatorCache(sample_size=256, seed=0)
        small = unseen_trace[:10]
        metrics = trained.evaluate(small, dbs, cards="deepdb",
                                   estimator_cache=cache)
        assert metrics["median"] < 4.0

    def test_optimizer_cards_inference(self, trained, training_world):
        dbs, _, unseen_trace = training_world
        metrics = trained.evaluate(unseen_trace[:10], dbs, cards="optimizer")
        assert np.isfinite(metrics["median"])


class TestPersistence:
    def test_save_load_roundtrip(self, trained, training_world, tmp_path):
        dbs, _, unseen_trace = training_world
        path = tmp_path / "zero_shot.npz"
        trained.save(path)
        loaded = ZeroShotCostModel.load(path)
        records = list(unseen_trace)[:8]
        graphs = featurize_records(records, dbs, cards="exact")
        original = trained.predict_records(records, dbs, graphs=graphs)
        restored = loaded.predict_records(records, dbs, graphs=graphs)
        np.testing.assert_allclose(original, restored, rtol=1e-9)


class TestPredictionQuality:
    def test_predictions_positive(self, trained, training_world):
        dbs, _, unseen_trace = training_world
        preds = trained.predict_trace(unseen_trace[:20], dbs, cards="exact")
        assert (preds > 0).all()

    def test_correlation_with_actuals(self, trained, training_world):
        """Predicted and actual log-runtimes correlate on the unseen DB."""
        dbs, _, unseen_trace = training_world
        records = list(unseen_trace)
        preds = trained.predict_records(records, dbs, cards="exact")
        actual = np.array([r.runtime_ms for r in records])
        rho = np.corrcoef(np.log(preds), np.log(actual))[0, 1]
        assert rho > 0.7
