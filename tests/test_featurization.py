"""Tests for query graphs, Table-1 features, scalers, and batching."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cardest import annotate_cardinalities
from repro.executor import execute_plan
from repro.featurization import (BatchCache, FEATURE_DIMS, FeatureScalers,
                                 NODE_TYPES, QueryGraph, TargetScaler,
                                 attribute_features, build_query_graph,
                                 make_batch, make_batch_reference,
                                 output_features, plan_features,
                                 predicate_features, table_features)
from repro.optimizer import plan_query
from repro.sql import PredOp
from repro.storage import DataType


def graph_for(db, query, source="exact"):
    plan = plan_query(db, query)
    execute_plan(db, plan)
    cards = annotate_cardinalities(db, plan, source)
    return build_query_graph(db, plan, cards), plan


class TestFeatureVectors:
    def test_dims_match_builders(self):
        assert len(plan_features("SeqScan", 10, 1, 8, 1)) == FEATURE_DIMS["plan"]
        assert len(predicate_features(PredOp.EQ, 1.0)) == FEATURE_DIMS["predicate"]
        assert len(table_features(100, 10)) == FEATURE_DIMS["table"]
        assert len(attribute_features(8, 0.5, 10, 0.0, DataType.INT)) \
            == FEATURE_DIMS["attribute"]
        assert len(output_features("count")) == FEATURE_DIMS["output"]

    def test_log_transforms(self):
        features = plan_features("SeqScan", np.e - 1, 0, 0, 2)
        assert features[0] == pytest.approx(1.0)
        assert features[3] == 2.0

    def test_opname_one_hot(self):
        a = plan_features("SeqScan", 1, 1, 1, 1)
        b = plan_features("HashJoin", 1, 1, 1, 1)
        assert not np.allclose(a[4:], b[4:])
        assert a[4:].sum() == 1.0

    def test_storage_format(self):
        row = table_features(10, 1, "row")
        col = table_features(10, 1, "column")
        assert not np.allclose(row, col)

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ValueError):
            output_features("median")


class TestQueryGraphStructure:
    def test_single_table_graph(self, toy_db, simple_count_query):
        graph, plan = graph_for(toy_db, simple_count_query)
        counts = {t: graph.node_types.count(t) for t in NODE_TYPES}
        assert counts["plan"] == plan.n_nodes
        assert counts["table"] == 1
        assert counts["output"] == 1  # COUNT(*)
        assert graph.node_types[graph.root] == "plan"
        graph.validate()

    def test_filter_produces_predicate_and_attribute_nodes(self, toy_db,
                                                           filtered_query):
        graph, _ = graph_for(toy_db, filtered_query)
        counts = {t: graph.node_types.count(t) for t in NODE_TYPES}
        assert counts["predicate"] == 3  # AND + two comparisons
        assert counts["attribute"] == 2  # priority, status

    def test_join_graph_has_join_predicates(self, toy_db, join_query):
        graph, plan = graph_for(toy_db, join_query)
        counts = {t: graph.node_types.count(t) for t in NODE_TYPES}
        n_joins = sum(1 for n in plan.iter_nodes() if n.is_join)
        # one join predicate per join + the customers filter comparison
        assert counts["predicate"] >= n_joins + 1
        assert counts["table"] >= 2  # scans (NL inner shares no table node)

    def test_attribute_nodes_shared(self, toy_db, join_query):
        graph, _ = graph_for(toy_db, join_query)
        # customers.id is used by two join predicates at most once as a node:
        # attribute count must be <= distinct referenced columns.
        attrs = graph.node_types.count("attribute")
        assert attrs <= 7

    def test_cards_flow_into_features(self, toy_db, filtered_query):
        graph_exact, plan = graph_for(toy_db, filtered_query, source="exact")
        graph_opt, _ = graph_for(toy_db, filtered_query, source="optimizer")
        # Find a scan plan node and compare the cardout feature.
        scan_positions = [i for i, t in enumerate(graph_exact.node_types)
                          if t == "plan"]
        diffs = [not np.allclose(graph_exact.features[i][0],
                                 graph_opt.features[i][0])
                 for i in scan_positions]
        assert any(diffs)  # optimizer estimate differs from the exact count

    def test_levels_topological(self, toy_db, join_query):
        graph, _ = graph_for(toy_db, join_query)
        levels = graph.levels()
        for child, parent in graph.edges:
            assert levels[child] < levels[parent]

    def test_graph_validation_errors(self):
        graph = QueryGraph()
        a = graph.add_node("plan", np.zeros(FEATURE_DIMS["plan"]))
        with pytest.raises(ValueError):
            graph.add_node("banana", np.zeros(3))
        with pytest.raises(ValueError):
            graph.add_edge(a, a)
        b = graph.add_node("plan", np.zeros(FEATURE_DIMS["plan"]))
        graph.root = b
        with pytest.raises(ValueError):  # a disconnected from root
            graph.add_edge(b, a)  # wrong direction (topological violation)
            graph.validate()


class TestScalers:
    def test_feature_scalers_standardize(self, toy_db, join_query,
                                         filtered_query):
        graphs = [graph_for(toy_db, join_query)[0],
                  graph_for(toy_db, filtered_query)[0]]
        scalers = FeatureScalers().fit(graphs)
        matrix = np.stack([f for g in graphs
                           for t, f in zip(g.node_types, g.features)
                           if t == "plan"])
        scaled = scalers.transform("plan", matrix)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)

    def test_target_scaler_roundtrip(self):
        runtimes = np.array([1.0, 10.0, 100.0, 1000.0])
        scaler = TargetScaler().fit(runtimes)
        scaled = scaler.to_scaled(runtimes)
        np.testing.assert_allclose(scaler.to_runtime_ms(scaled), runtimes,
                                   rtol=1e-9)
        assert abs(scaled.mean()) < 1e-9

    def test_unfitted_scaler_raises(self):
        from repro.featurization import StandardScaler
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))


class TestBatching:
    def test_batch_preserves_node_counts(self, toy_db, join_query,
                                         filtered_query):
        g1, _ = graph_for(toy_db, join_query)
        g2, _ = graph_for(toy_db, filtered_query)
        batch = make_batch([g1, g2])
        assert batch.n_nodes == g1.n_nodes + g2.n_nodes
        assert batch.n_graphs == 2
        total = sum(batch.type_counts.values())
        assert total == batch.n_nodes

    def test_roots_are_plan_nodes(self, toy_db, join_query):
        g, _ = graph_for(toy_db, join_query)
        batch = make_batch([g, g])
        for root in batch.roots:
            # Roots lie inside the "plan" block of global ids.
            offset = batch.type_offsets["plan"]
            assert offset <= root < offset + batch.type_counts["plan"]

    def test_level_edges_reference_lower_levels(self, toy_db, join_query):
        g, _ = graph_for(toy_db, join_query)
        batch = make_batch([g])
        seen = set()
        for level_groups in batch.levels:
            newly = set()
            for group in level_groups:
                for child in group.edge_children:
                    assert int(child) in seen
                newly.update(int(i) for i in group.node_indices)
            seen |= newly
        assert len(seen) == batch.n_nodes

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            make_batch([])

    @settings(max_examples=10, deadline=None)
    @given(sizes=st.lists(st.integers(1, 3), min_size=1, max_size=4))
    def test_batch_group_slots_consistent(self, toy_db, sizes):
        from repro.workloads import WorkloadConfig, WorkloadGenerator
        queries = WorkloadGenerator(toy_db, WorkloadConfig(max_joins=2),
                                    seed=sum(sizes)).generate(len(sizes))
        graphs = [graph_for(toy_db, q)[0] for q in queries]
        batch = make_batch(graphs)
        for level_groups in batch.levels:
            for group in level_groups:
                if group.edge_parent_slots.size:
                    assert group.edge_parent_slots.max() < len(group.node_indices)

    @settings(max_examples=10, deadline=None)
    @given(n_queries=st.integers(1, 5), seed=st.integers(0, 500))
    def test_vectorized_batch_equals_reference(self, toy_db, n_queries, seed):
        """The vectorized construction is bit-identical to the loop-based
        reference implementation on arbitrary workloads."""
        from repro.workloads import WorkloadConfig, WorkloadGenerator
        queries = WorkloadGenerator(toy_db, WorkloadConfig(max_joins=2),
                                    seed=seed).generate(n_queries)
        graphs = [graph_for(toy_db, q)[0] for q in queries]
        scalers = FeatureScalers().fit(graphs)
        fast = make_batch(graphs, scalers)
        ref = make_batch_reference(graphs, scalers)

        assert fast.n_nodes == ref.n_nodes
        assert fast.type_offsets == ref.type_offsets
        assert fast.type_counts == ref.type_counts
        for node_type in ref.features:
            np.testing.assert_array_equal(fast.features[node_type],
                                          ref.features[node_type])
            np.testing.assert_array_equal(fast.init_positions[node_type],
                                          ref.init_positions[node_type])
        np.testing.assert_array_equal(fast.roots, ref.roots)
        np.testing.assert_array_equal(fast.mp_positions, ref.mp_positions)
        np.testing.assert_array_equal(fast.root_positions, ref.root_positions)
        assert len(fast.levels) == len(ref.levels)
        for fast_groups, ref_groups in zip(fast.levels, ref.levels):
            assert len(fast_groups) == len(ref_groups)
            for fg, rg in zip(fast_groups, ref_groups):
                assert fg.node_type == rg.node_type
                np.testing.assert_array_equal(fg.node_indices, rg.node_indices)
                np.testing.assert_array_equal(fg.edge_children,
                                              rg.edge_children)
                np.testing.assert_array_equal(fg.edge_parent_slots,
                                              rg.edge_parent_slots)
                np.testing.assert_array_equal(fg.child_positions,
                                              rg.child_positions)

    def test_packed_cache_invalidates_on_growth(self, toy_db,
                                                simple_count_query):
        graph, _ = graph_for(toy_db, simple_count_query)
        first = graph.packed()
        assert graph.packed() is first  # cached
        graph.add_node("output", np.zeros(FEATURE_DIMS["output"]))
        second = graph.packed()
        assert second is not first
        assert second.n_nodes == first.n_nodes + 1


class TestBatchCache:
    def test_cache_hits_on_same_graphs(self, toy_db, join_query):
        graph, _ = graph_for(toy_db, join_query)
        cache = BatchCache(max_entries=4)
        batch1 = cache.get([graph])
        batch2 = cache.get([graph])
        assert batch1 is batch2
        assert cache.hits == 1 and cache.misses == 1

    def test_cache_distinguishes_scalers(self, toy_db, join_query):
        graph, _ = graph_for(toy_db, join_query)
        scalers = FeatureScalers().fit([graph])
        cache = BatchCache()
        assert cache.get([graph]) is not cache.get([graph], scalers)

    def test_cache_distinguishes_graph_lists(self, toy_db, join_query,
                                             filtered_query):
        g1, _ = graph_for(toy_db, join_query)
        g2, _ = graph_for(toy_db, filtered_query)
        cache = BatchCache()
        assert cache.get([g1]) is not cache.get([g1, g2])

    def test_cache_misses_after_graph_mutation(self, toy_db, join_query):
        """A graph that grew after being cached must not serve the stale
        batch (same guard as QueryGraph.packed())."""
        graph, _ = graph_for(toy_db, join_query)
        cache = BatchCache()
        stale = cache.get([graph])
        graph.add_node("output", np.zeros(FEATURE_DIMS["output"]))
        fresh = cache.get([graph])
        assert fresh is not stale
        assert fresh.n_nodes == stale.n_nodes + 1

    def test_cache_eviction_is_bounded(self, toy_db, join_query):
        graph, _ = graph_for(toy_db, join_query)
        cache = BatchCache(max_entries=2)
        for _ in range(5):
            cache.get([graph_for(toy_db, join_query)[0]])
        assert len(cache._entries) <= 2
