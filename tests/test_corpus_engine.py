"""Equivalence tests for the stage-0 corpus engine.

Every fast path of the corpus engine must be *bit-identical* to its retained
executable reference:

* ``execute_trace`` ≡ per-plan ``execute_plan`` (rows, cardinalities, node
  profiles) across benchmark profiles,
* vectorized ``learn_spn`` ≡ ``learn_spn_reference`` (same tree structure,
  weights, leaf distributions, selectivities),
* ``simulate_runtime_ms_batch`` ≡ per-plan ``simulate_runtime_ms``,
* ``generate_trace`` ≡ ``generate_trace_reference`` (records, runtimes,
  timeout exclusions, index churn),
* the vectorized ``equi_join`` gather ≡ the per-run loop spec.

Plus the observability contract of the new per-trace memos (bounded,
counted, clearable) and the artifact-store SPN persistence.
"""

import numpy as np
import pytest

from repro import perfstats
from repro.bench.store import ArtifactStore
from repro.cardest import DataDrivenEstimator
from repro.cardest.spn import (_LeafSet, _Product, _Sum, learn_spn,
                               learn_spn_reference)
from repro.datagen import (generate_database, make_benchmark_database,
                           random_database_spec)
from repro.executor import (TraceExecutionContext, execute_plan, execute_trace,
                            simulate_runtime_ms, simulate_runtime_ms_batch)
from repro.executor.executor import (_gather_parent_positions_reference,
                                     _run_positions)
from repro.optimizer import PlannerConfig, plan_query
from repro.storage import Index
from repro.workloads import (WorkloadConfig, WorkloadGenerator, generate_trace,
                             generate_trace_reference)

# Three benchmark profiles with different schema shapes / layouts.
PROFILES = ("airline", "imdb", "ssb")


def _planned_corpus(db, n=40, seed=0, mode="standard", max_joins=3,
                    planner_kwargs=None):
    queries = WorkloadGenerator(db, WorkloadConfig(max_joins=max_joins,
                                                   mode=mode),
                                seed=seed).generate(n)
    config = PlannerConfig(**(planner_kwargs or {}))
    return [plan_query(db, q, config=config) for q in queries]


def _capture(db, plans, runner):
    """Run ``runner`` over the plans and snapshot everything it annotates."""
    results = runner()
    return [
        {
            "rows": res.rows,
            "n_rows": res.n_rows,
            "profiles": [(id(node), dict(profile))
                         for node, profile in res.node_profiles],
            "true_rows": [node.true_rows for node in plan.iter_nodes()],
        }
        for plan, res in zip(plans, results)
    ]


@pytest.fixture(scope="module", params=PROFILES)
def profile_db(request):
    return make_benchmark_database(request.param, 2500)


class TestExecuteTraceEquivalence:
    def test_matches_per_plan_reference(self, profile_db):
        plans = _planned_corpus(profile_db, n=40)
        reference = _capture(profile_db, plans,
                             lambda: [execute_plan(profile_db, p)
                                      for p in plans])
        fast = _capture(profile_db, plans,
                        lambda: execute_trace(profile_db, plans))
        assert fast == reference

    def test_matches_with_indexed_nested_loops(self):
        spec = random_database_spec("nl_exec", seed=3, layout="snowflake",
                                    base_rows=3000, n_tables=5,
                                    complexity=0.8)
        db = generate_database(spec)
        for fk in db.schema.foreign_keys:
            db.create_index(fk.child_table, fk.child_column)
        plans = _planned_corpus(
            db, n=40, seed=7, mode="complex", max_joins=4,
            planner_kwargs=dict(index_selectivity_threshold=0.5,
                                nested_loop_outer_threshold=1e9,
                                min_parallel_pages=1))
        ops = {node.op_name for plan in plans for node in plan.iter_nodes()}
        assert "NestedLoopJoin" in ops and "IndexScan" in ops
        reference = _capture(db, plans,
                             lambda: [execute_plan(db, p) for p in plans])
        fast = _capture(db, plans, lambda: execute_trace(db, plans))
        assert fast == reference

    def test_shared_context_across_traces(self, profile_db):
        """One context serving two workloads still matches the reference."""
        ctx = TraceExecutionContext(profile_db)
        for seed in (0, 1):
            plans = _planned_corpus(profile_db, n=15, seed=seed)
            reference = _capture(profile_db, plans,
                                 lambda: [execute_plan(profile_db, p)
                                          for p in plans])
            fast = _capture(profile_db, plans,
                            lambda: execute_trace(profile_db, plans, ctx=ctx))
            assert fast == reference

    def test_gather_positions_matches_loop_reference(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            n = int(rng.integers(0, 40))
            counts = rng.integers(0, 5, size=n)
            max_count = int(counts.max()) if n else 0
            order = rng.permutation(max(int(counts.sum()) + 10, 1))
            lo = rng.integers(0, max(len(order) - max_count, 1), size=n)
            hi = lo + counts
            expected = _gather_parent_positions_reference(order, lo, hi,
                                                          counts)
            actual = order[_run_positions(lo, counts)]
            np.testing.assert_array_equal(actual, expected)

    def test_index_structural_facts(self):
        dense = Index("t", "id", np.arange(100, dtype=np.float64))
        assert dense.unique_keys and dense.dense_keys
        shuffled = np.random.default_rng(0).permutation(100).astype(float)
        assert Index("t", "id", shuffled).dense_keys
        sparse = Index("t", "k", np.arange(100, dtype=np.float64) * 2.0)
        assert sparse.unique_keys and not sparse.dense_keys
        dup = Index("t", "k", np.array([1.0, 1.0, 2.0]))
        assert not dup.unique_keys and not dup.dense_keys
        keys, rows = dense.sorted_valid()
        np.testing.assert_array_equal(keys, np.arange(100, dtype=float))


class TestTraceMemoObservability:
    def test_counters_and_clear(self, profile_db):
        plans = _planned_corpus(profile_db, n=20)
        ctx = TraceExecutionContext(profile_db)
        perfstats.reset()
        execute_trace(profile_db, plans, ctx=ctx)
        counters = perfstats.snapshot()
        assert counters.get("execute.trace.plans", 0) == len(plans)
        assert counters.get("execute.scan_cache.miss", 0) > 0
        stats = ctx.stats()
        assert stats["scan_entries"] > 0
        assert stats["join_indexes"] >= 0
        # Re-running the same plans through the same context is all hits.
        perfstats.reset()
        execute_trace(profile_db, plans, ctx=ctx)
        counters = perfstats.snapshot()
        assert counters.get("execute.scan_cache.miss", 0) == 0
        assert counters.get("execute.scan_cache.hit", 0) > 0
        ctx.clear()
        assert ctx.stats() == {"scan_entries": 0, "join_indexes": 0,
                               "fk_domain_entries": 0}

    def test_scan_cache_bound_evicts(self, profile_db):
        plans = _planned_corpus(profile_db, n=25)
        ctx = TraceExecutionContext(profile_db, max_scan_entries=2)
        perfstats.reset()
        reference = _capture(profile_db, plans,
                             lambda: [execute_plan(profile_db, p)
                                      for p in plans])
        fast = _capture(profile_db, plans,
                        lambda: execute_trace(profile_db, plans, ctx=ctx))
        assert fast == reference  # evictions never change results
        assert ctx.stats()["scan_entries"] <= 2
        assert perfstats.snapshot().get("execute.scan_cache.eviction", 0) > 0


class TestSpnEquivalence:
    @staticmethod
    def _assert_tree_equal(a, b, path="root"):
        assert type(a) is type(b), path
        if isinstance(a, _LeafSet):
            assert list(a.leaves) == list(b.leaves), path
            for column in a.leaves:
                la, lb = a.leaves[column], b.leaves[column]
                assert la.null_mass == lb.null_mass, (path, column)
                for field in ("discrete_values", "discrete_masses",
                              "bin_edges", "bin_masses"):
                    va, vb = getattr(la, field), getattr(lb, field)
                    if va is None or vb is None:
                        assert va is None and vb is None, (path, column, field)
                    else:
                        np.testing.assert_array_equal(va, vb,
                                                      err_msg=f"{path}.{column}.{field}")
            return
        if isinstance(a, _Sum):
            np.testing.assert_array_equal(a.weights, b.weights, err_msg=path)
        assert len(a.children) == len(b.children), path
        for i, (ca, cb) in enumerate(zip(a.children, b.children)):
            TestSpnEquivalence._assert_tree_equal(ca, cb, f"{path}.{i}")

    @staticmethod
    def _table_arrays(table):
        from repro.cardest import spn_input_arrays
        return spn_input_arrays(table)

    def test_learn_spn_matches_reference(self, profile_db):
        for table_name in profile_db.schema.table_names:
            arrays = self._table_arrays(profile_db.table(table_name))
            fast = learn_spn(arrays, seed=0, max_rows=2000)
            reference = learn_spn_reference(arrays, seed=0, max_rows=2000)
            assert fast.columns == reference.columns
            assert fast.n_rows == reference.n_rows
            self._assert_tree_equal(fast._root, reference._root)
            assert fast._root._neutral_mass == reference._root._neutral_mass

    def test_learn_spn_dispatch_counters(self, profile_db):
        arrays = self._table_arrays(
            profile_db.table(profile_db.schema.table_names[0]))
        perfstats.reset()
        learn_spn(arrays, seed=0, max_rows=500)
        counters = perfstats.snapshot()
        assert counters.get("spn.learn.vectorized", 0) == 1
        assert counters.get("spn.learn.reference", 0) == 0

    def test_estimator_estimates_unchanged_by_vectorization(self, profile_db):
        """End to end: the estimator over fast-learned SPNs matches one whose
        SPNs were learned through the reference loop primitives."""
        import repro.cardest.datadriven as dd

        fast = DataDrivenEstimator(profile_db, sample_size=128, seed=0,
                                   max_spn_rows=1500, store=False)
        original = dd.learn_spn
        dd.learn_spn = learn_spn_reference
        try:
            reference = DataDrivenEstimator(profile_db, sample_size=128,
                                            seed=0, max_spn_rows=1500,
                                            store=False)
        finally:
            dd.learn_spn = original
        plans = _planned_corpus(profile_db, n=10)
        for plan in plans:
            for node in plan.iter_nodes():
                if node.is_scan and node.filter_predicate is not None:
                    if fast.supports(node.filter_predicate):
                        assert (fast.scan_rows(profile_db, node.table,
                                               node.filter_predicate)
                                == reference.scan_rows(profile_db, node.table,
                                                       node.filter_predicate))


class TestSpnStorePersistence:
    def test_build_persists_and_hydrates(self, tmp_path):
        db = make_benchmark_database("airline", 1500)
        store = ArtifactStore(tmp_path)
        perfstats.reset()
        cold = DataDrivenEstimator(db, sample_size=64, seed=0,
                                   max_spn_rows=1000, store=store)
        n_tables = len(db.schema.table_names)
        counters = perfstats.snapshot()
        assert counters.get("store.miss.spn", 0) == n_tables
        assert counters.get("spn.learn.vectorized", 0) == n_tables

        perfstats.reset()
        warm = DataDrivenEstimator(db, sample_size=64, seed=0,
                                   max_spn_rows=1000, store=store)
        counters = perfstats.snapshot()
        assert counters.get("store.hit.spn", 0) == n_tables
        assert counters.get("spn.learn.vectorized", 0) == 0  # no relearning
        for table_name in db.schema.table_names:
            cold_spn = cold._spns[table_name]
            warm_spn = warm._spns[table_name]
            assert cold_spn.columns == warm_spn.columns
            TestSpnEquivalence._assert_tree_equal(cold_spn._root,
                                                  warm_spn._root)

    def test_data_change_misses_fingerprint(self, tmp_path):
        db = make_benchmark_database("airline", 1000)
        store = ArtifactStore(tmp_path)
        DataDrivenEstimator(db, sample_size=64, seed=0, max_spn_rows=800,
                            store=store)
        # Mutate one table's content in place (row counts unchanged).
        table = db.table(db.schema.table_names[0])
        column = next(iter(table.columns.values()))
        column.values = column.values.copy()
        column.values[0] += 1.0
        perfstats.reset()
        DataDrivenEstimator(db, sample_size=64, seed=0, max_spn_rows=800,
                            store=store)
        counters = perfstats.snapshot()
        assert counters.get("store.miss.spn", 0) == 1  # only the edited table
        assert counters.get("spn.learn.vectorized", 0) == 1

    def test_refresh_hydrates_on_unchanged_data(self, tmp_path):
        # A non-default learning config: refresh must rebuild under the
        # constructor's (seed, max_spn_rows), hitting the exact store keys
        # the construction saved.
        db = make_benchmark_database("airline", 1000)
        store = ArtifactStore(tmp_path)
        estimator = DataDrivenEstimator(db, sample_size=64, seed=3,
                                        max_spn_rows=750, store=store)
        perfstats.reset()
        estimator.refresh()
        counters = perfstats.snapshot()
        assert counters.get("store.hit.spn", 0) == len(db.schema.table_names)
        assert counters.get("spn.learn.vectorized", 0) == 0


class TestBatchedSimulationEquivalence:
    def test_matches_per_plan_reference(self, profile_db):
        plans = _planned_corpus(profile_db, n=40)
        execute_trace(profile_db, plans)
        reference = np.array([simulate_runtime_ms(profile_db, p, seed=0)
                              for p in plans])
        batch = simulate_runtime_ms_batch(profile_db, plans, seed=0)
        np.testing.assert_array_equal(batch, reference)

    def test_matches_with_parallel_and_indexed_plans(self):
        spec = random_database_spec("sim_exec", seed=3, layout="snowflake",
                                    base_rows=3000, n_tables=5,
                                    complexity=0.8)
        db = generate_database(spec)
        for fk in db.schema.foreign_keys:
            db.create_index(fk.child_table, fk.child_column)
        plans = _planned_corpus(
            db, n=40, seed=7, mode="complex", max_joins=4,
            planner_kwargs=dict(index_selectivity_threshold=0.5,
                                nested_loop_outer_threshold=1e9,
                                min_parallel_pages=1))
        execute_trace(db, plans)
        for seed in (0, 11):
            reference = np.array([simulate_runtime_ms(db, p, seed=seed)
                                  for p in plans])
            batch = simulate_runtime_ms_batch(db, plans, seed=seed)
            np.testing.assert_array_equal(batch, reference)

    def test_distributed_operators_covered(self, toy_db):
        """Broadcast/Repartition/MergeJoin nodes go through the batch rules."""
        from repro.optimizer.plan import PlanNode

        def mini_plan():
            left = PlanNode("SeqScan", table="orders", est_rows=100.0,
                            width=16.0)
            right = PlanNode("SeqScan", table="customers", est_rows=10.0,
                             width=16.0)
            left.true_rows = 100.0
            right.true_rows = 10.0
            bcast = PlanNode("Broadcast", children=[right], est_rows=10.0,
                             width=16.0)
            bcast.true_rows = 10.0
            from repro.sql import JoinEdge
            join = PlanNode("MergeJoin", children=[left, bcast],
                            join=JoinEdge("orders", "customer_id",
                                          "customers", "id"),
                            est_rows=100.0, width=32.0)
            join.true_rows = 100.0
            repart = PlanNode("Repartition", children=[join], est_rows=100.0,
                              width=32.0)
            repart.true_rows = 100.0
            return repart

        plans = [mini_plan() for _ in range(4)]
        reference = np.array([simulate_runtime_ms(toy_db, p, seed=5)
                              for p in plans])
        batch = simulate_runtime_ms_batch(toy_db, plans, seed=5)
        np.testing.assert_array_equal(batch, reference)

    def test_simulation_dispatch_counter(self, profile_db):
        plans = _planned_corpus(profile_db, n=5)
        execute_trace(profile_db, plans)
        perfstats.reset()
        simulate_runtime_ms_batch(profile_db, plans, seed=0)
        assert perfstats.snapshot().get("simulate.batched", 0) == len(plans)


class TestGenerateTraceEquivalence:
    @pytest.mark.parametrize("index_mode,mode,seed",
                             [(False, "standard", 0), (False, "complex", 5),
                              (True, "standard", 2)])
    def test_matches_reference(self, index_mode, mode, seed):
        spec = random_database_spec("tracegen", seed=seed, layout="snowflake",
                                    base_rows=1200, n_tables=5,
                                    complexity=0.7)
        db = generate_database(spec)
        queries = WorkloadGenerator(db, WorkloadConfig(max_joins=3, mode=mode),
                                    seed=seed).generate(40)
        reference = generate_trace_reference(db, queries, seed=seed,
                                             index_mode=index_mode)
        fast = generate_trace(db, queries, seed=seed, index_mode=index_mode)
        assert fast.db_name == reference.db_name
        assert fast.excluded_timeouts == reference.excluded_timeouts
        assert len(fast) == len(reference)
        for fast_rec, ref_rec in zip(fast, reference):
            assert fast_rec.query is ref_rec.query
            assert fast_rec.runtime_ms == ref_rec.runtime_ms
            assert fast_rec.indexes == ref_rec.indexes
            assert ([n.true_rows for n in fast_rec.plan.iter_nodes()]
                    == [n.true_rows for n in ref_rec.plan.iter_nodes()])

    def test_timeout_exclusions_match(self):
        spec = random_database_spec("timeouts", seed=1, layout="star",
                                    base_rows=2000, n_tables=4,
                                    complexity=0.6)
        db = generate_database(spec)
        queries = WorkloadGenerator(db, WorkloadConfig(max_joins=3),
                                    seed=1).generate(30)
        # A timeout at the median runtime forces the exclusion path.
        timeout = float(np.median(
            generate_trace_reference(db, queries, seed=1).runtimes()))
        reference = generate_trace_reference(db, queries, seed=1,
                                             timeout_ms=timeout)
        fast = generate_trace(db, queries, seed=1, timeout_ms=timeout)
        assert reference.excluded_timeouts > 0
        assert fast.excluded_timeouts == reference.excluded_timeouts
        assert len(fast) == len(reference)
