"""Equivalence and caching tests for the featurization pipeline engine.

Three contracts from the engine rebuild:

* the vectorized graph builder is bit-identical to the loop reference for
  every node type and every cardinality source,
* the batched DeepDB annotation is bit-identical to the original recursive
  visit — including consuming the exact same RNG stream,
* the fingerprint cache hits on equal-but-distinct plans and misses on any
  featurization-relevant mutation.
"""

import copy

import numpy as np
import pytest

from repro.cardest import (DataDrivenEstimator, annotate_cardinalities,
                           annotate_cardinalities_reference)
from repro.core import EstimatorCache, featurize_records
from repro.executor import execute_plan
from repro.featurization import (BatchCache, FeatureScalers,
                                 FeaturizationCache, build_query_graph,
                                 build_query_graph_reference,
                                 build_query_graphs, make_batch,
                                 make_batch_reference, plan_fingerprint)
from repro.optimizer import plan_query
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


@pytest.fixture(scope="module")
def workload(gen_db):
    """Executed plans covering scans, joins, aggregates, sorts, complex
    predicates (LIKE / IN / IS NULL / disjunctions)."""
    queries = []
    for mode, n, seed in (("standard", 12, 3), ("complex", 12, 4)):
        generator = WorkloadGenerator(
            gen_db, WorkloadConfig(mode=mode, max_joins=3,
                                   group_by_prob=0.4, order_by_prob=0.4),
            seed=seed)
        queries.extend(generator.generate(n))
    plans = []
    for query in queries:
        plan = plan_query(gen_db, query)
        execute_plan(gen_db, plan)
        plans.append(plan)
    return plans


def assert_graphs_identical(fast, reference):
    assert fast.node_types == reference.node_types
    assert list(map(tuple, fast.edges)) == list(map(tuple, reference.edges))
    assert fast.root == reference.root
    assert len(fast.features) == len(reference.features)
    for fast_row, reference_row in zip(fast.features, reference.features):
        np.testing.assert_array_equal(np.asarray(fast_row), reference_row)
    np.testing.assert_array_equal(fast.packed().levels, reference.levels())
    packed_fast, packed_reference = fast.packed(), reference.packed()
    np.testing.assert_array_equal(packed_fast.type_codes,
                                  packed_reference.type_codes)
    np.testing.assert_array_equal(packed_fast.edges, packed_reference.edges)
    for code in packed_reference.features_by_code:
        np.testing.assert_array_equal(packed_fast.features_by_code[code],
                                      packed_reference.features_by_code[code])
    fast.validate()


class TestVectorizedFeaturization:
    @pytest.mark.parametrize("source", ["exact", "optimizer", "deepdb"])
    def test_bit_identical_to_reference(self, gen_db, workload, source):
        estimator = (DataDrivenEstimator(gen_db, seed=0)
                     if source == "deepdb" else None)
        card_maps = [annotate_cardinalities(gen_db, plan, source,
                                            estimator=estimator)
                     for plan in workload]
        fast = build_query_graphs(gen_db, workload, card_maps)
        for graph, plan, cards in zip(fast, workload, card_maps):
            reference = build_query_graph_reference(gen_db, plan, cards)
            assert_graphs_identical(graph, reference)

    @pytest.mark.parametrize("source", ["exact", "optimizer"])
    def test_fused_cards_equal_dict_cards(self, gen_db, workload, source):
        card_maps = [annotate_cardinalities(gen_db, plan, source)
                     for plan in workload]
        via_dict = build_query_graphs(gen_db, workload, card_maps)
        fused = build_query_graphs(gen_db, workload, source)
        for a, b in zip(via_dict, fused):
            assert a.node_types == b.node_types
            for row_a, row_b in zip(a.features, b.features):
                np.testing.assert_array_equal(np.asarray(row_a),
                                              np.asarray(row_b))

    def test_all_node_types_covered(self, gen_db, workload):
        graphs = build_query_graphs(gen_db, workload, "exact")
        seen = {t for g in graphs for t in g.node_types}
        assert seen == {"plan", "predicate", "table", "attribute", "output"}

    def test_storage_formats_respected(self, gen_db, workload):
        formats = {gen_db.schema.table_names[0]: "column"}
        fast = build_query_graph(gen_db, workload[0], "exact",
                                 storage_formats=formats)
        cards = annotate_cardinalities(gen_db, workload[0], "exact")
        reference = build_query_graph_reference(gen_db, workload[0], cards,
                                                storage_formats=formats)
        assert_graphs_identical(fast, reference)

    def test_batches_identical_through_both_builders(self, gen_db, workload):
        fast = build_query_graphs(gen_db, workload, "exact")
        card_maps = [annotate_cardinalities(gen_db, plan, "exact")
                     for plan in workload]
        reference = [build_query_graph_reference(gen_db, plan, cards)
                     for plan, cards in zip(workload, card_maps)]
        scalers = FeatureScalers().fit(fast)
        batch_fast = make_batch(fast, scalers)
        batch_reference = make_batch_reference(reference, scalers)
        for node_type in batch_reference.features:
            np.testing.assert_array_equal(batch_fast.features[node_type],
                                          batch_reference.features[node_type])
        np.testing.assert_array_equal(batch_fast.mp_positions,
                                      batch_reference.mp_positions)

    def test_lazy_graph_supports_mutation_api(self, gen_db, workload):
        from repro.featurization import FEATURE_DIMS
        graph = build_query_graph(gen_db, workload[0], "exact")
        n_nodes = graph.n_nodes
        node = graph.add_node("output", np.zeros(FEATURE_DIMS["output"]))
        assert node == n_nodes
        assert graph.node_types[-1] == "output"
        assert graph.packed().n_nodes == n_nodes + 1  # cache invalidated


class TestBatchedAnnotation:
    def test_deepdb_bit_identical_including_rng(self, gen_db, workload):
        """The batched annotation (cached predicates, vectorized sampling)
        must equal the recursive reference per value *and* consume the same
        RNG stream (gradcheck-style equivalence for the whole trace)."""
        fast = DataDrivenEstimator(gen_db, seed=7)
        reference = DataDrivenEstimator(gen_db, seed=7)
        for plan in workload:
            cards_fast = annotate_cardinalities(gen_db, plan, "deepdb",
                                                estimator=fast)
            cards_reference = annotate_cardinalities_reference(
                gen_db, plan, "deepdb", estimator=reference)
            assert cards_fast == cards_reference
        assert fast._rng.bit_generator.state == \
            reference._rng.bit_generator.state

    def test_join_sample_matches_reference(self, gen_db):
        estimator = DataDrivenEstimator(gen_db, seed=0)
        tables = set(gen_db.schema.table_names[:3])
        joins = [fk for fk in gen_db.schema.foreign_keys
                 if {fk.child_table, fk.parent_table} <= tables]
        from repro.sql import JoinEdge
        joins = [JoinEdge.from_foreign_key(fk) for fk in joins]
        sample_fast, weights_fast, root_fast, size_fast = \
            estimator.join_sample(tables, joins, seed=123)
        sample_ref, weights_ref, root_ref, size_ref = \
            estimator.join_sample_reference(tables, joins, seed=123)
        assert root_fast == root_ref and size_fast == size_ref
        np.testing.assert_array_equal(weights_fast, weights_ref)
        for table in sample_ref:
            np.testing.assert_array_equal(sample_fast[table],
                                          sample_ref[table])

    def test_simple_sources_unchanged(self, gen_db, workload):
        for source in ("exact", "optimizer"):
            for plan in workload[:5]:
                assert annotate_cardinalities(gen_db, plan, source) == \
                    annotate_cardinalities_reference(gen_db, plan, source)

    def test_unknown_source_rejected(self, gen_db, workload):
        with pytest.raises(ValueError):
            annotate_cardinalities(gen_db, workload[0], "tarot")


class TestFingerprintCache:
    def make_records(self, db, n=8, seed=11):
        queries = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                    seed=seed).generate(n)
        return list(generate_trace(db, queries, seed=seed))

    def test_equal_but_distinct_plans_hit(self, gen_db):
        records = self.make_records(gen_db)
        dbs = {gen_db.name: gen_db}
        cache = FeaturizationCache()
        first = featurize_records(records, dbs, cards="exact",
                                  feat_cache=cache)
        clones = copy.deepcopy(records)
        second = featurize_records(clones, dbs, cards="exact",
                                   feat_cache=cache)
        assert cache.hits == len(records)
        assert all(a is b for a, b in zip(first, second))

    def test_mutated_plan_misses(self, gen_db):
        records = self.make_records(gen_db)
        dbs = {gen_db.name: gen_db}
        cache = FeaturizationCache()
        featurize_records(records, dbs, cards="exact", feat_cache=cache)
        mutated = copy.deepcopy(records[0])
        mutated.plan.est_rows += 1.0
        misses_before = cache.misses
        featurize_records([mutated], dbs, cards="exact", feat_cache=cache)
        assert cache.misses == misses_before + 1

    def test_literal_changes_fingerprint(self, gen_db):
        from repro.sql import Comparison, iter_predicate_nodes
        records = self.make_records(gen_db)
        target = next(r for r in records
                      if any(n.filter_predicate is not None
                             for n in r.plan.iter_nodes()))
        clone = copy.deepcopy(target)
        for node in clone.plan.iter_nodes():
            if node.filter_predicate is None:
                continue
            leaf = next(p for p in iter_predicate_nodes(node.filter_predicate)
                        if isinstance(p, Comparison) and p.literal is not None)
            object.__setattr__(leaf, "literal", "zzz-different")
            break
        original = plan_fingerprint(gen_db, target.plan, "exact")
        changed = plan_fingerprint(gen_db, clone.plan, "exact")
        assert original != changed

    def test_different_card_source_misses(self, gen_db):
        records = self.make_records(gen_db)
        dbs = {gen_db.name: gen_db}
        cache = FeaturizationCache()
        featurize_records(records[:2], dbs, cards="exact", feat_cache=cache)
        misses = cache.misses
        featurize_records(records[:2], dbs, cards="optimizer",
                          feat_cache=cache)
        assert cache.misses == misses + 2  # different card source

    def test_deepdb_featurization_pins_first_annotation(self, gen_db):
        records = self.make_records(gen_db)
        dbs = {gen_db.name: gen_db}
        cache = FeaturizationCache()
        estimators = EstimatorCache(seed=0)
        first = featurize_records(records, dbs, cards="deepdb",
                                  estimator_cache=estimators,
                                  feat_cache=cache)
        second = featurize_records(copy.deepcopy(records), dbs,
                                   cards="deepdb",
                                   estimator_cache=estimators,
                                   feat_cache=cache)
        assert all(a is b for a, b in zip(first, second))

    def test_bounded(self, gen_db):
        records = self.make_records(gen_db, n=6)
        cache = FeaturizationCache(max_entries=3)
        featurize_records(records, {gen_db.name: gen_db}, cards="exact",
                          feat_cache=cache)
        assert len(cache) <= 3

    def test_duplicates_survive_eviction(self, gen_db):
        """An intra-batch duplicate must resolve even when its first
        occurrence was already evicted from a tiny cache."""
        records = self.make_records(gen_db, n=6)
        batch = records + [copy.deepcopy(records[0])]
        cache = FeaturizationCache(max_entries=2)
        graphs = featurize_records(batch, {gen_db.name: gen_db},
                                   cards="exact", feat_cache=cache)
        assert all(graph is not None for graph in graphs)
        assert graphs[-1].node_types == graphs[0].node_types

    def test_public_fingerprint_matches_cache_key(self, gen_db):
        records = self.make_records(gen_db, n=2)
        cache = FeaturizationCache()
        assert plan_fingerprint(gen_db, records[0].plan, "exact") == \
            cache.key(gen_db, records[0].plan, "exact")


class TestEstimatorCacheStaleness:
    def test_rebuilt_database_invalidates(self, gen_db):
        cache = EstimatorCache(sample_size=64, seed=0)
        first = cache.get(gen_db)
        assert cache.get(gen_db) is first  # stable while content unchanged
        # Same name, different content (row counts differ): must rebuild.
        from repro.datagen import generate_database, random_database_spec
        spec = random_database_spec(gen_db.name, seed=78, layout="snowflake",
                                    base_rows=500, n_tables=3, complexity=0.4)
        rebuilt = generate_database(spec)
        assert rebuilt.name == gen_db.name
        second = cache.get(rebuilt)
        assert second is not first
        assert second.db is rebuilt

    def test_grown_database_invalidates(self):
        from repro.datagen import generate_database, random_database_spec
        spec = random_database_spec("growdb", seed=9, layout="star",
                                    base_rows=300, n_tables=3, complexity=0.3)
        db = generate_database(spec)
        cache = EstimatorCache(sample_size=64, seed=0)
        first = cache.get(db)
        table = db.table(db.schema.table_names[0])
        table.append({name: column.values[:1]
                      for name, column in table.columns.items()})
        second = cache.get(db)
        assert second is not first


class TestBatchCacheChunking:
    def _graphs(self, db, n=12, seed=5):
        queries = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                    seed=seed).generate(n)
        records = list(generate_trace(db, queries, seed=seed))
        return featurize_records(records, {db.name: db}, cards="exact")

    def test_chunks_stable_across_varying_lists(self, gen_db):
        graphs = self._graphs(gen_db)
        cache = BatchCache(max_entries=16)
        cache.get_chunks(graphs, batch_size=4)
        assert cache.misses == 3 and cache.hits == 0
        # Same list again: all chunks hit.
        cache.get_chunks(graphs, batch_size=4)
        assert cache.hits == 3
        # Extended list: the three known chunks hit, only the tail is new.
        extra = self._graphs(gen_db, n=2, seed=6)
        cache.get_chunks(graphs + extra, batch_size=4)
        assert cache.hits == 6 and cache.misses == 4
        # List starting mid-way: chunks cached from aligned boundaries
        # still serve their subsequences.
        cache.get_chunks(graphs[4:], batch_size=4)
        assert cache.hits == 8

    def test_chunk_reuse_preserves_prediction_order(self, gen_db):
        from repro.core.training import predict_runtimes
        from repro.core.model import ZeroShotModel
        from repro.featurization import FeatureScalers, TargetScaler
        graphs = self._graphs(gen_db)
        model = ZeroShotModel(hidden_dim=16, seed=0).eval()
        scalers = FeatureScalers().fit(graphs)
        target = TargetScaler()
        target.mean, target.std = 0.0, 1.0
        cache = BatchCache(max_entries=16)
        base = predict_runtimes(model, graphs, scalers, target,
                                batch_size=5, batch_cache=cache)
        shifted = predict_runtimes(model, graphs[3:], scalers, target,
                                   batch_size=5, batch_cache=cache)
        np.testing.assert_allclose(shifted, base[3:], rtol=1e-6)

    def test_mutated_graph_not_served_stale(self, gen_db):
        import numpy as np
        from repro.featurization import FEATURE_DIMS
        graphs = self._graphs(gen_db, n=4)
        cache = BatchCache()
        cache.get_chunks(graphs, batch_size=4)
        graphs[0].add_node("output", np.zeros(FEATURE_DIMS["output"]))
        batches = cache.get_chunks(graphs, batch_size=4)
        assert batches[0].n_nodes == sum(g.n_nodes for g in graphs)
