"""Gradient-correctness tests for the autograd engine.

Every op used by the cost models is checked against central-difference
numerical gradients; hypothesis drives shapes and values for the broadcast
rules.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (MLP, Tensor, concat, default_dtype, fused_act_dropout,
                      get_default_dtype, linear, maximum, no_grad,
                      scatter_sum, set_default_dtype)


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn w.r.t. array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        upper = fn(x)
        flat[i] = orig - eps
        lower = fn(x)
        flat[i] = orig
        out[i] = (upper - lower) / (2 * eps)
    return grad


def check_unary(op, x, numeric_fn=None, atol=1e-5):
    t = Tensor(x.copy(), requires_grad=True)
    result = op(t).sum()
    result.backward()
    expected = numerical_grad(lambda v: float((numeric_fn or (lambda a: op(Tensor(a)).data))(v).sum()), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


class TestElementwiseGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(7)

    def test_add_broadcast(self):
        a = Tensor(self.rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(3,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((4, 3)))
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))

    def test_mul_broadcast(self):
        a = Tensor(self.rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(1, 3)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.broadcast_to(b.data, (2, 3)))
        np.testing.assert_allclose(b.grad, a.data.sum(axis=0, keepdims=True))

    def test_div(self):
        a = self.rng.uniform(0.5, 2.0, size=(3, 2))
        b = self.rng.uniform(0.5, 2.0, size=(3, 2))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta / tb).sum().backward()
        np.testing.assert_allclose(ta.grad, 1.0 / b)
        np.testing.assert_allclose(tb.grad, -a / b ** 2)

    def test_pow(self):
        x = self.rng.uniform(0.5, 2.0, size=(5,))
        check_unary(lambda t: t ** 3, x)

    def test_exp_log(self):
        x = self.rng.uniform(0.2, 2.0, size=(4, 2))
        check_unary(lambda t: t.exp(), x)
        check_unary(lambda t: t.log(), x)

    def test_relu_leaky_tanh_sigmoid_abs(self):
        x = self.rng.normal(size=(8,)) + 0.05  # avoid the kink exactly at 0
        check_unary(lambda t: t.relu(), x)
        check_unary(lambda t: t.leaky_relu(0.1), x)
        check_unary(lambda t: t.tanh(), x)
        check_unary(lambda t: t.sigmoid(), x)
        check_unary(lambda t: t.abs(), x)

    def test_clamp(self):
        x = np.array([-2.0, -0.5, 0.3, 1.7, 5.0])
        t = Tensor(x, requires_grad=True)
        t.clamp(-1.0, 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0, 1, 1, 1, 0])

    def test_neg_sub(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 5.0]), requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [-1, -1])


class TestMatmulAndReductions:
    def test_matmul_grads(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((4, 5)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((4, 5)))

    def test_sum_axis(self):
        x = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        (x.sum(axis=1) * Tensor(np.array([1.0, 2.0, 3.0]))).sum().backward()
        np.testing.assert_allclose(x.grad, np.repeat([[1.0], [2.0], [3.0]], 4, axis=1))

    def test_mean(self):
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 5), 0.1))

    def test_reshape_transpose(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        y = x.reshape(3, 2).transpose()
        (y * y).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * x.data)


class TestGatherScatterConcat:
    def test_gather_rows_repeats(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]), requires_grad=True)
        out = x.gather_rows([0, 0, 2])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[2, 2], [0, 0], [1, 1]])

    def test_scatter_sum_forward(self):
        src = Tensor(np.array([[1.0], [2.0], [3.0], [4.0]]))
        out = scatter_sum(src, [0, 1, 0, 2], 3)
        np.testing.assert_allclose(out.data, [[4.0], [2.0], [4.0]])

    def test_scatter_sum_backward(self):
        src = Tensor(np.ones((4, 2)), requires_grad=True)
        out = scatter_sum(src, [1, 1, 0, 2], 4)
        weights = Tensor(np.array([[1.0, 1], [2, 2], [3, 3], [4, 4]]))
        (out * weights).sum().backward()
        np.testing.assert_allclose(src.grad, [[2, 2], [2, 2], [1, 1], [3, 3]])

    def test_scatter_sum_empty_segment(self):
        src = Tensor(np.ones((2, 3)))
        out = scatter_sum(src, [0, 2], 4)
        np.testing.assert_allclose(out.data[1], 0.0)
        np.testing.assert_allclose(out.data[3], 0.0)

    def test_scatter_sum_validates_index(self):
        with pytest.raises(ValueError):
            scatter_sum(Tensor(np.ones((3, 2))), [0, 1], 2)

    def test_concat_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concat([a, b], axis=1)
        (out * Tensor(np.arange(10, dtype=float).reshape(2, 5))).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [5, 6]])
        np.testing.assert_allclose(b.grad, [[2, 3, 4], [7, 8, 9]])

    def test_maximum_gradient_routing(self):
        a = Tensor(np.array([1.0, 5.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 1.0, 2.0]), requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.5])
        np.testing.assert_allclose(b.grad, [1.0, 0.0, 0.5])


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0
        y.backward()
        np.testing.assert_allclose(x.grad, [2 * 2.0 + 3.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a * b).backward()  # d/dx 6x^2 = 12x
        np.testing.assert_allclose(x.grad, [18.0])

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            y = x * 2 + 1
        assert not y.requires_grad

    def test_no_grad_is_thread_local(self):
        # A serving thread running inference under no_grad must not turn
        # off graph construction for a concurrently training thread (the
        # continuous-learning controller fine-tunes in-process while the
        # predictor serves).
        import threading

        from repro.nn import is_grad_enabled

        entered = threading.Event()
        release = threading.Event()

        def inference():
            with no_grad():
                entered.set()
                release.wait(5.0)

        thread = threading.Thread(target=inference, daemon=True)
        thread.start()
        assert entered.wait(5.0)
        try:
            assert is_grad_enabled()  # this thread is untouched
            x = Tensor(np.ones(3), requires_grad=True)
            loss = (x * 2).sum()
            assert loss.requires_grad
            loss.backward()  # graph was built; backward works
            np.testing.assert_allclose(x.grad, 2.0)
        finally:
            release.set()
            thread.join(5.0)

    def test_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        assert not x.detach().requires_grad

    def test_dropout_eval_identity(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10)))
        out = x.dropout(0.5, rng, training=False)
        assert out is x

    def test_dropout_scales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((2000,)))
        out = x.dropout(0.25, rng, training=True)
        # Inverted dropout preserves the expectation.
        assert abs(out.data.mean() - 1.0) < 0.1
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 1.0 / 0.75)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 6), cols=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_mlp_like_composite_gradcheck(rows, cols, seed):
    """Composite expression (affine + nonlinearity + reduce) matches numerics."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(rows, cols))
    w = rng.normal(size=(cols, 3))

    def forward(x_arr):
        t = Tensor(x_arr)
        return ((t @ Tensor(w)).tanh() * 0.5 + 1.0).sum()

    t = Tensor(x.copy(), requires_grad=True)
    ((t @ Tensor(w)).tanh() * 0.5 + 1.0).sum().backward()
    expected = numerical_grad(lambda v: float(forward(v).data), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=1e-5)


class TestFusedOps:
    """Numerical gradient checks for the fused fast-path ops."""

    def setup_method(self):
        self.rng = np.random.default_rng(11)

    def test_linear_matches_unfused(self):
        x = Tensor(self.rng.normal(size=(4, 3)))
        w = Tensor(self.rng.normal(size=(3, 5)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(5,)), requires_grad=True)
        fused = linear(x, w, b)
        np.testing.assert_allclose(fused.data, (x @ w + b).data)

    def test_linear_gradcheck(self):
        x0 = self.rng.normal(size=(4, 3))
        w0 = self.rng.normal(size=(3, 5))
        b0 = self.rng.normal(size=(5,))
        weights = self.rng.normal(size=(4, 5))

        def loss_parts(x_arr, w_arr, b_arr):
            out = linear(Tensor(x_arr), Tensor(w_arr), Tensor(b_arr))
            return float((out.data * weights).sum())

        x = Tensor(x0.copy(), requires_grad=True)
        w = Tensor(w0.copy(), requires_grad=True)
        b = Tensor(b0.copy(), requires_grad=True)
        (linear(x, w, b) * Tensor(weights)).sum().backward()
        np.testing.assert_allclose(
            x.grad, numerical_grad(lambda v: loss_parts(v, w0, b0), x0.copy()),
            atol=1e-5)
        np.testing.assert_allclose(
            w.grad, numerical_grad(lambda v: loss_parts(x0, v, b0), w0.copy()),
            atol=1e-5)
        np.testing.assert_allclose(
            b.grad, numerical_grad(lambda v: loss_parts(x0, w0, v), b0.copy()),
            atol=1e-5)

    def test_linear_no_bias_gradcheck(self):
        x0 = self.rng.normal(size=(3, 2))
        w = Tensor(self.rng.normal(size=(2, 2)), requires_grad=True)
        x = Tensor(x0.copy(), requires_grad=True)
        linear(x, w).sum().backward()
        expected = numerical_grad(
            lambda v: float(linear(Tensor(v), w.detach()).data.sum()),
            x0.copy())
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)

    @pytest.mark.parametrize("activation", ["relu", "leaky_relu", "tanh",
                                            "sigmoid"])
    def test_fused_activation_gradcheck(self, activation):
        x0 = self.rng.normal(size=(6, 4)) + 0.05  # stay off the kinks

        def fn(v):
            return float(fused_act_dropout(Tensor(v), activation).data.sum())

        x = Tensor(x0.copy(), requires_grad=True)
        fused_act_dropout(x, activation).sum().backward()
        np.testing.assert_allclose(x.grad, numerical_grad(fn, x0.copy()),
                                   atol=1e-5)

    def test_fused_dropout_gradcheck(self):
        """Dropout mask is deterministic given the rng seed, so central
        differences apply (fresh rng per evaluation)."""
        x0 = self.rng.normal(size=(5, 3)) + 0.2

        def forward(v):
            return fused_act_dropout(Tensor(v), "leaky_relu", p=0.4,
                                     rng=np.random.default_rng(123),
                                     training=True)

        x = Tensor(x0.copy(), requires_grad=True)
        fused_act_dropout(x, "leaky_relu", p=0.4,
                          rng=np.random.default_rng(123),
                          training=True).sum().backward()
        expected = numerical_grad(lambda v: float(forward(v).data.sum()),
                                  x0.copy())
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)

    def test_fused_dropout_eval_is_identity_on_mask(self):
        x = Tensor(np.ones((100,)))
        out = fused_act_dropout(x, "relu", p=0.5, training=False)
        np.testing.assert_allclose(out.data, 1.0)

    def test_fused_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            fused_act_dropout(Tensor(np.ones(2)), "swishy")

    def test_fused_dropout_requires_rng(self):
        with pytest.raises(ValueError):
            fused_act_dropout(Tensor(np.ones(2)), "relu", p=0.5, training=True)


class TestGradOwnership:
    """The accumulator must never alias upstream buffers (regression for the
    unconditional deep copy it replaced)."""

    def test_param_grad_does_not_alias_upstream(self):
        param = Tensor(np.ones(4), requires_grad=True)
        out = param + Tensor(np.zeros(4))
        upstream = np.full(4, 2.0)
        out.backward(upstream)
        assert not np.shares_memory(param.grad, out.grad)
        assert not np.shares_memory(param.grad, upstream)
        # mutating the upstream buffer must not corrupt the parameter grad
        upstream[:] = 99.0
        np.testing.assert_allclose(param.grad, 2.0)

    def test_linear_param_grads_own_their_buffers(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        w = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros(2), requires_grad=True)
        out = linear(x, w, b)
        out.backward(np.ones((3, 2)))
        for param in (x, w, b):
            assert param.grad.flags.owndata
            assert not np.shares_memory(param.grad, out.grad)

    def test_accumulation_over_reuse_still_correct(self):
        x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        ((x * x) + (x * 4.0)).sum().backward()
        np.testing.assert_allclose(x.grad, [8.0, 10.0])


class TestDtypePolicy:
    def teardown_method(self):
        set_default_dtype(np.float64)

    def test_default_dtype_context(self):
        assert get_default_dtype() == np.float64
        with default_dtype(np.float32):
            assert get_default_dtype() == np.float32
            assert Tensor([1, 2, 3]).dtype == np.float32
        assert get_default_dtype() == np.float64

    def test_float_arrays_keep_their_dtype(self):
        assert Tensor(np.ones(2, dtype=np.float32)).dtype == np.float32
        assert Tensor(np.ones(2, dtype=np.float64)).dtype == np.float64

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_float32_ops_stay_float32(self):
        x = Tensor(np.ones((4, 3), dtype=np.float32), requires_grad=True)
        w = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        out = fused_act_dropout(linear(x, w), "leaky_relu")
        assert out.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32
        assert w.grad.dtype == np.float32

    def test_float32_forward_agrees_with_float64(self):
        """The float32 fast path tracks the float64 reference within
        single-precision tolerance through a full MLP."""
        rng = np.random.default_rng(0)
        x64 = rng.normal(size=(16, 6))
        mlp64 = MLP(6, [32, 32], 1, rng=np.random.default_rng(1))
        mlp32 = MLP(6, [32, 32], 1, rng=np.random.default_rng(1)).to(np.float32)
        out64 = mlp64(Tensor(x64)).data
        out32 = mlp32(Tensor(x64.astype(np.float32))).data
        assert out32.dtype == np.float32
        np.testing.assert_allclose(out32, out64, rtol=1e-4, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 20), segments=st.integers(1, 6), seed=st.integers(0, 9999),
)
def test_scatter_then_gather_roundtrip(n, segments, seed):
    """scatter_sum followed by gather_rows distributes sums consistently."""
    rng = np.random.default_rng(seed)
    index = rng.integers(0, segments, size=n)
    src = rng.normal(size=(n, 4))
    out = scatter_sum(Tensor(src), index, segments)
    gathered = out.gather_rows(index)
    expected = np.stack([src[index == index[i]].sum(axis=0) for i in range(n)])
    np.testing.assert_allclose(gathered.data, expected, atol=1e-9)
