"""Gradient-correctness tests for the autograd engine.

Every op used by the cost models is checked against central-difference
numerical gradients; hypothesis drives shapes and values for the broadcast
rules.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, concat, maximum, scatter_sum, no_grad


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn w.r.t. array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        upper = fn(x)
        flat[i] = orig - eps
        lower = fn(x)
        flat[i] = orig
        out[i] = (upper - lower) / (2 * eps)
    return grad


def check_unary(op, x, numeric_fn=None, atol=1e-5):
    t = Tensor(x.copy(), requires_grad=True)
    result = op(t).sum()
    result.backward()
    expected = numerical_grad(lambda v: float((numeric_fn or (lambda a: op(Tensor(a)).data))(v).sum()), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


class TestElementwiseGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(7)

    def test_add_broadcast(self):
        a = Tensor(self.rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(3,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((4, 3)))
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))

    def test_mul_broadcast(self):
        a = Tensor(self.rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(1, 3)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.broadcast_to(b.data, (2, 3)))
        np.testing.assert_allclose(b.grad, a.data.sum(axis=0, keepdims=True))

    def test_div(self):
        a = self.rng.uniform(0.5, 2.0, size=(3, 2))
        b = self.rng.uniform(0.5, 2.0, size=(3, 2))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta / tb).sum().backward()
        np.testing.assert_allclose(ta.grad, 1.0 / b)
        np.testing.assert_allclose(tb.grad, -a / b ** 2)

    def test_pow(self):
        x = self.rng.uniform(0.5, 2.0, size=(5,))
        check_unary(lambda t: t ** 3, x)

    def test_exp_log(self):
        x = self.rng.uniform(0.2, 2.0, size=(4, 2))
        check_unary(lambda t: t.exp(), x)
        check_unary(lambda t: t.log(), x)

    def test_relu_leaky_tanh_sigmoid_abs(self):
        x = self.rng.normal(size=(8,)) + 0.05  # avoid the kink exactly at 0
        check_unary(lambda t: t.relu(), x)
        check_unary(lambda t: t.leaky_relu(0.1), x)
        check_unary(lambda t: t.tanh(), x)
        check_unary(lambda t: t.sigmoid(), x)
        check_unary(lambda t: t.abs(), x)

    def test_clamp(self):
        x = np.array([-2.0, -0.5, 0.3, 1.7, 5.0])
        t = Tensor(x, requires_grad=True)
        t.clamp(-1.0, 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0, 1, 1, 1, 0])

    def test_neg_sub(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 5.0]), requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [-1, -1])


class TestMatmulAndReductions:
    def test_matmul_grads(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((4, 5)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((4, 5)))

    def test_sum_axis(self):
        x = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        (x.sum(axis=1) * Tensor(np.array([1.0, 2.0, 3.0]))).sum().backward()
        np.testing.assert_allclose(x.grad, np.repeat([[1.0], [2.0], [3.0]], 4, axis=1))

    def test_mean(self):
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 5), 0.1))

    def test_reshape_transpose(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        y = x.reshape(3, 2).transpose()
        (y * y).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * x.data)


class TestGatherScatterConcat:
    def test_gather_rows_repeats(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]), requires_grad=True)
        out = x.gather_rows([0, 0, 2])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[2, 2], [0, 0], [1, 1]])

    def test_scatter_sum_forward(self):
        src = Tensor(np.array([[1.0], [2.0], [3.0], [4.0]]))
        out = scatter_sum(src, [0, 1, 0, 2], 3)
        np.testing.assert_allclose(out.data, [[4.0], [2.0], [4.0]])

    def test_scatter_sum_backward(self):
        src = Tensor(np.ones((4, 2)), requires_grad=True)
        out = scatter_sum(src, [1, 1, 0, 2], 4)
        weights = Tensor(np.array([[1.0, 1], [2, 2], [3, 3], [4, 4]]))
        (out * weights).sum().backward()
        np.testing.assert_allclose(src.grad, [[2, 2], [2, 2], [1, 1], [3, 3]])

    def test_scatter_sum_empty_segment(self):
        src = Tensor(np.ones((2, 3)))
        out = scatter_sum(src, [0, 2], 4)
        np.testing.assert_allclose(out.data[1], 0.0)
        np.testing.assert_allclose(out.data[3], 0.0)

    def test_scatter_sum_validates_index(self):
        with pytest.raises(ValueError):
            scatter_sum(Tensor(np.ones((3, 2))), [0, 1], 2)

    def test_concat_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concat([a, b], axis=1)
        (out * Tensor(np.arange(10, dtype=float).reshape(2, 5))).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [5, 6]])
        np.testing.assert_allclose(b.grad, [[2, 3, 4], [7, 8, 9]])

    def test_maximum_gradient_routing(self):
        a = Tensor(np.array([1.0, 5.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 1.0, 2.0]), requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.5])
        np.testing.assert_allclose(b.grad, [1.0, 0.0, 0.5])


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0
        y.backward()
        np.testing.assert_allclose(x.grad, [2 * 2.0 + 3.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a * b).backward()  # d/dx 6x^2 = 12x
        np.testing.assert_allclose(x.grad, [18.0])

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            y = x * 2 + 1
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        assert not x.detach().requires_grad

    def test_dropout_eval_identity(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10)))
        out = x.dropout(0.5, rng, training=False)
        assert out is x

    def test_dropout_scales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((2000,)))
        out = x.dropout(0.25, rng, training=True)
        # Inverted dropout preserves the expectation.
        assert abs(out.data.mean() - 1.0) < 0.1
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 1.0 / 0.75)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 6), cols=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_mlp_like_composite_gradcheck(rows, cols, seed):
    """Composite expression (affine + nonlinearity + reduce) matches numerics."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(rows, cols))
    w = rng.normal(size=(cols, 3))

    def forward(x_arr):
        t = Tensor(x_arr)
        return ((t @ Tensor(w)).tanh() * 0.5 + 1.0).sum()

    t = Tensor(x.copy(), requires_grad=True)
    ((t @ Tensor(w)).tanh() * 0.5 + 1.0).sum().backward()
    expected = numerical_grad(lambda v: float(forward(v).data), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 20), segments=st.integers(1, 6), seed=st.integers(0, 9999),
)
def test_scatter_then_gather_roundtrip(n, segments, seed):
    """scatter_sum followed by gather_rows distributes sums consistently."""
    rng = np.random.default_rng(seed)
    index = rng.integers(0, segments, size=n)
    src = rng.normal(size=(n, 4))
    out = scatter_sum(Tensor(src), index, segments)
    gathered = out.gather_rows(index)
    expected = np.stack([src[index == index[i]].sum(axis=0) for i in range(n)])
    np.testing.assert_allclose(gathered.data, expected, atol=1e-9)
