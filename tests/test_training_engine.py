"""Tier-1 tests for the training & experiment engine (PR 3).

Covers the flat-parameter optimizer (bit-identity against the preserved
per-parameter references over full ``train_model`` runs in both dtypes),
checkpointing of flattened parameters, the disk artifact store
(hit / corruption / stale-fingerprint invalidation), content-keyed graph
lists in the benchmark suite, deterministic parallel experiment execution,
and the shared predict-batch-cache counters/reset hook.
"""

import os
import pickle

import numpy as np
import pytest

from repro import perfstats
from repro.bench import (Artifacts, ArtifactStore, SuiteConfig, parallel_map,
                         register_artifacts)
from repro.core import (TrainingConfig, ZeroShotCostModel, featurize_records,
                        predict_cache_stats, reset_predict_cache, train_model)
from repro.core.model import ZeroShotModel
from repro.core.training import _PREDICT_BATCH_CACHE, predict_runtimes
from repro.datagen import generate_database, random_database_spec
from repro.featurization import records_fingerprint
from repro.nn import (Adam, Adam_reference, FlatParameterSpace, Tensor,
                      clip_grad_norm, clip_grad_norm_reference)
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace


@pytest.fixture(scope="module")
def corpus():
    """A small featurized corpus (db, records, graphs, runtimes)."""
    spec = random_database_spec("flatdb", seed=3, base_rows=500, n_tables=3)
    db = generate_database(spec)
    queries = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                seed=3).generate(24)
    trace = generate_trace(db, queries, seed=3)
    records = list(trace)
    graphs = featurize_records(records, {db.name: db}, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records])
    return db, records, graphs, runtimes


def _train_pair(graphs, runtimes, dtype, seed=0):
    """Train twice from identical inits: flat engine vs reference path."""
    results = []
    for flat in (True, False):
        config = TrainingConfig(hidden_dim=16, epochs=6, batch_size=8,
                                dropout=0.1, seed=seed, dtype=dtype,
                                flat_optimizer=flat,
                                early_stopping_patience=2)
        model = ZeroShotModel(hidden_dim=16, dropout=0.1, seed=seed)
        _, _, history = train_model(model, graphs, runtimes, config)
        results.append((model, history))
    return results


class TestFlatOptimizerBitIdentity:
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_full_train_model_trajectory_identical(self, corpus, dtype):
        _, _, graphs, runtimes = corpus
        (flat_model, flat_history), (ref_model, ref_history) = _train_pair(
            graphs, runtimes, dtype)
        assert flat_history["train_loss"] == ref_history["train_loss"]
        assert flat_history["val_loss"] == ref_history["val_loss"]
        flat_state = flat_model.state_dict()
        ref_state = ref_model.state_dict()
        assert set(flat_state) == set(ref_state)
        for name in flat_state:
            assert flat_state[name].dtype == ref_state[name].dtype
            np.testing.assert_array_equal(flat_state[name], ref_state[name],
                                          err_msg=name)

    def test_adam_matches_reference_with_partial_grads(self):
        def make(seed=7):
            rng = np.random.default_rng(seed)
            return [Tensor(rng.normal(size=s), requires_grad=True)
                    for s in [(6, 4), (4,), (4, 3)]]

        fast, ref = make(), make()
        opt_fast = Adam(fast, lr=5e-3, weight_decay=1e-2)
        opt_ref = Adam_reference(ref, lr=5e-3, weight_decay=1e-2)
        rng = np.random.default_rng(11)
        for step in range(25):
            grads = [rng.normal(size=p.data.shape) for p in fast]
            for i, (a, b) in enumerate(zip(fast, ref)):
                if step % 4 == 2 and i == 0:   # node type absent this step
                    a.grad = b.grad = None
                    continue
                a.grad = None
                a._accumulate(grads[i].copy(), owned=True)
                b.grad = grads[i].copy()
            assert clip_grad_norm(fast, 1.0) == \
                clip_grad_norm_reference(ref, 1.0)
            opt_fast.step()
            opt_ref.step()
            for a, b in zip(fast, ref):
                np.testing.assert_array_equal(a.data, b.data)

    def test_step_skips_when_no_grads(self):
        w = Tensor(np.ones(3), requires_grad=True)
        opt = Adam([w], lr=0.1)
        opt.step()
        np.testing.assert_array_equal(w.data, np.ones(3))

    def test_flat_step_dispatches(self, corpus):
        _, _, graphs, runtimes = corpus
        perfstats.reset()
        config = TrainingConfig(hidden_dim=16, epochs=2, batch_size=8, seed=0)
        train_model(ZeroShotModel(hidden_dim=16, seed=0), graphs, runtimes,
                    config)
        counters = perfstats.snapshot()
        assert counters.get("optim.flat_step", 0) > 0
        assert counters.get("optim.reference_step", 0) == 0

    def test_rebinds_after_external_dtype_cast(self):
        model = ZeroShotModel(hidden_dim=8, seed=0)
        params = list(model.parameters())
        opt = Adam(params, lr=1e-3)
        model.to(np.float32)  # unbinds the float64 flat views
        for p in params:
            p.grad = None
            p._accumulate(np.ones(p.data.shape, dtype=np.float32), owned=True)
        opt.step()  # must re-flatten, not silently update dead buffers
        assert opt.space.bound()
        for p in params:
            assert p.data.dtype == np.dtype(np.float32)
            assert not np.array_equal(p.data, np.zeros(p.data.shape))


class TestFlatParameterSpace:
    def test_snapshot_restore_roundtrip(self):
        rng = np.random.default_rng(0)
        params = [Tensor(rng.normal(size=(3, 2)), requires_grad=True),
                  Tensor(rng.normal(size=4).astype(np.float32),
                         requires_grad=True)]
        space = FlatParameterSpace(params)
        saved = space.snapshot()
        before = [p.data.copy() for p in params]
        for p in params:
            p.data += 1.0
        space.restore(saved)
        for p, expected in zip(params, before):
            np.testing.assert_array_equal(p.data, expected)

    def test_params_are_views_and_grads_flat(self):
        params = [Tensor(np.ones((2, 2)), requires_grad=True),
                  Tensor(np.ones(3), requires_grad=True)]
        space = FlatParameterSpace(params)
        assert len(space.groups) == 1
        group = space.groups[0]
        assert all(p.data.base is group.data for p in params)
        for p in params:
            p.grad = None
            p._accumulate(np.full(p.data.shape, 2.0), owned=True)
        assert all(p.grad.base is group.grad for p in params)
        np.testing.assert_array_equal(group.grad,
                                      np.full(group.grad.shape, 2.0))


class TestCheckpointRoundTrip:
    def test_flat_trained_model_saves_and_loads(self, corpus, tmp_path):
        db, records, graphs, runtimes = corpus
        config = TrainingConfig(hidden_dim=16, epochs=3, batch_size=8, seed=0)
        model = ZeroShotCostModel.train(None, None, config=config,
                                        graphs=graphs, runtimes=runtimes)
        # Parameters are views into the flat buffer at this point.
        assert any(p.data.base is not None for p in model.model.parameters())
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = ZeroShotCostModel.load(path)
        original = model.predict_records(records, {db.name: db}, cards="exact")
        restored = loaded.predict_records(records, {db.name: db},
                                          cards="exact")
        np.testing.assert_array_equal(original, restored)

    def test_loaded_model_trains_further(self, corpus, tmp_path):
        db, records, graphs, runtimes = corpus
        config = TrainingConfig(hidden_dim=16, epochs=2, batch_size=8, seed=0)
        model = ZeroShotCostModel.train(None, None, config=config,
                                        graphs=graphs, runtimes=runtimes)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = ZeroShotCostModel.load(path)
        tuned = loaded.fine_tune(records, {db.name: db}, cards="exact",
                                 graphs=graphs, runtimes=runtimes, epochs=2)
        assert len(tuned.predict_records(records, {db.name: db},
                                         cards="exact")) == len(records)


class TestArtifactStore:
    def test_miss_then_hit(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("thing", 1)
        assert store.load("thing", key) is None
        store.save("thing", key, {"value": 42}, fingerprint=b"fp")
        assert store.load("thing", key, fingerprint=b"fp") == {"value": 42}
        assert store.stats() == {"hits": 1, "misses": 1,
                                 "corrupt": 0}

    def test_corrupt_entry_rebuilds(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("thing", 2)
        store.save("thing", key, [1, 2, 3])
        path = store._path("thing", key)
        path.write_bytes(path.read_bytes()[:7])  # truncate mid-pickle
        assert store.load("thing", key) is None
        assert not path.exists()  # corrupt file deleted for clean rebuild

    def test_stale_fingerprint_rebuilds(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("thing", 3)
        store.save("thing", key, "old", fingerprint=b"db-v1")
        assert store.load("thing", key, fingerprint=b"db-v2") is None
        assert store.load("thing", key) is None  # stale entry was dropped

    def test_suite_warm_start_skips_generation(self, tmp_path):
        config = SuiteConfig(scale="tiny", seed=0,
                             database_names=("airline", "imdb"))
        training = TrainingConfig(hidden_dim=8, epochs=2, batch_size=8,
                                  seed=0)

        def session(store):
            art = Artifacts(config, store=store)
            trace = art.trace("airline", n=6)
            art.graphs(trace, "exact")
            return art.train_zero_shot([trace], cards="exact",
                                       config=training)

        cold = session(ArtifactStore(tmp_path))
        perfstats.reset()
        warm_store = ArtifactStore(tmp_path)
        warm = session(warm_store)
        counters = perfstats.snapshot()
        # Second session: no database generation, no trace execution, no
        # featurization, no training — everything hydrates from disk.
        assert warm_store.misses == 0
        assert counters.get("store.hit.database", 0) == 2
        assert counters.get("store.hit.trace", 0) == 1
        assert counters.get("store.hit.graphs", 0) == 1
        assert counters.get("store.hit.model", 0) == 1
        art = Artifacts(config)
        cold_preds = cold.predict_records(
            list(art.trace("airline", n=6)), art.databases, cards="exact")
        warm_preds = warm.predict_records(
            list(art.trace("airline", n=6)), art.databases, cards="exact")
        np.testing.assert_array_equal(cold_preds, warm_preds)

    def test_grown_database_invalidates_trace(self, tmp_path):
        config = SuiteConfig(scale="tiny", seed=0,
                             database_names=("airline", "imdb"))
        store = ArtifactStore(tmp_path)
        art = Artifacts(config, store=store)
        trace = art.trace("airline", n=6)
        trace_key = store.key("trace", art._generation_key(),
                              ("airline", "standard", 6, 0, None))
        # Simulate a database regenerated with different content: the
        # stored row-count fingerprint no longer matches.
        assert store.load("trace", trace_key,
                          fingerprint=("airline", (("x", 1),))) is None


class TestSuiteGraphKeying:
    def test_equal_traces_share_graphs_across_objects(self):
        config = SuiteConfig(scale="tiny", seed=0,
                             database_names=("airline", "imdb"))
        art = Artifacts(config)
        trace = art.trace("airline", n=6)
        graphs = art.graphs(trace, "exact")
        clone = pickle.loads(pickle.dumps(trace))  # distinct, equal content
        assert clone is not trace
        assert art.graphs(clone, "exact") is graphs

    def test_recycled_id_cannot_alias(self):
        config = SuiteConfig(scale="tiny", seed=0,
                             database_names=("airline", "imdb"))
        art = Artifacts(config)
        trace = art.trace("airline", n=6)
        graphs_a = art.graphs(trace, "exact")
        other = art.trace("airline", n=6, seed_offset=5)
        # Content differs, so even an id() collision cannot serve stale
        # graphs: keys are 16-byte digests of the records.
        assert art.graphs(other, "exact") is not graphs_a
        fp_a = art.trace_fingerprint(trace, "exact")
        fp_b = art.trace_fingerprint(other, "exact")
        assert fp_a != fp_b

    def test_fingerprint_matches_module_helper(self):
        config = SuiteConfig(scale="tiny", seed=0,
                             database_names=("airline", "imdb"))
        art = Artifacts(config)
        trace = art.trace("airline", n=6)
        assert art.trace_fingerprint(trace, "exact") == records_fingerprint(
            list(trace), art.databases, "exact")


def _parallel_train_task(task):
    """Module-level so the forked pool can pickle it by reference."""
    from repro.bench import artifacts_for
    config, names, epochs = task
    art = artifacts_for(config)
    training = TrainingConfig(hidden_dim=8, epochs=epochs, batch_size=8,
                              seed=config.seed)
    model = art.train_zero_shot([art.trace(n, n=6) for n in names],
                                cards="exact", config=training)
    return {name: values.tolist()
            for name, values in model.model.state_dict().items()}


class TestParallelExecution:
    def test_parallel_results_bit_identical_to_serial(self):
        config = SuiteConfig(scale="tiny", seed=0,
                             database_names=("airline", "baseball", "imdb"))
        art = Artifacts(config)
        register_artifacts(art)
        for name in ("airline", "baseball"):
            art.graphs(art.trace(name, n=6), "exact")
        tasks = [(config, ("airline",), 2), (config, ("baseball",), 2),
                 (config, ("airline", "baseball"), 2)]
        serial = [_parallel_train_task(task) for task in tasks]
        parallel = parallel_map(_parallel_train_task, tasks, processes=2)
        assert serial == parallel  # bit-identical params, in task order

    def test_worker_count_env(self, monkeypatch):
        from repro.bench import worker_count
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        assert worker_count(10) == 3
        assert worker_count(2) == 2
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert worker_count(10) == 1
        monkeypatch.delenv("REPRO_PARALLEL")
        assert worker_count(1) == 1

    def test_serial_fallback_preserves_order(self):
        assert parallel_map(lambda x: x * x, [1, 2, 3], processes=1) \
            == [1, 4, 9]


class TestPredictCache:
    def test_counters_and_reset(self, corpus):
        db, records, graphs, runtimes = corpus
        config = TrainingConfig(hidden_dim=8, epochs=1, batch_size=8, seed=0)
        model = ZeroShotCostModel.train(None, None, config=config,
                                        graphs=graphs, runtimes=runtimes)
        reset_predict_cache()
        assert predict_cache_stats()["entries"] == 0
        perfstats.reset()
        before = predict_cache_stats()
        predict_runtimes(model.model, graphs, model.feature_scalers,
                         model.target_scaler)
        predict_runtimes(model.model, graphs, model.feature_scalers,
                         model.target_scaler)
        counters = perfstats.snapshot()
        assert counters.get("predict.batch_cache.misses", 0) >= 1
        assert counters.get("predict.batch_cache.hits", 0) >= 1
        assert predict_cache_stats()["hits"] > before["hits"]
        assert predict_cache_stats()["entries"] > 0
        reset_predict_cache()
        assert predict_cache_stats()["entries"] == 0
        assert len(_PREDICT_BATCH_CACHE._entries) == 0

    def test_cache_is_bounded(self):
        assert _PREDICT_BATCH_CACHE.max_entries == 64
