"""Fleet serving: sharding router, forked workers, mmap-shared checkpoints.

The load-bearing contract is *fleet equivalence*: for any request mix, any
shard placement and any worker count, every ``DONE``/``CACHED`` value is
bit-identical to a direct ``predict_runtimes`` call on the same model —
including across worker kills and restarts.  These tests pin that down,
plus the transport underneath it: the long-lived ``WorkerProcess`` pipe
protocol, the registry's mmap hydration path (one page-cache copy per
checkpoint, content-address verified, safe under concurrent
materialization from many processes), supervision (SIGKILL a worker
mid-load — no handle lost, none answered twice), and cross-process
hot-swap on ``registry.generation`` changes.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.bench.parallel import WorkerProcess
from repro.core import TrainingConfig, ZeroShotCostModel, featurize_records
from repro.core.model import ZeroShotModel
from repro.core.training import predict_runtimes
from repro.datagen import generate_database, random_database_spec
from repro.featurization import FeatureScalers, TargetScaler, database_digest
from repro.serving import (LoadConfig, ModelRegistry, PredictorFleet,
                           RequestStatus, ServerConfig, run_load,
                           skewed_requests)
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the serving fleet requires the fork start method")


# ----------------------------------------------------------------------
# Shared world: two databases, executed workloads, a model over both
# ----------------------------------------------------------------------
def _make_db(name, seed, base_rows=500):
    spec = random_database_spec(name, seed=seed, layout="snowflake",
                                base_rows=base_rows, n_tables=4,
                                complexity=0.6)
    return generate_database(spec)


def _make_trace(db, n, seed):
    queries = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                seed=seed).generate(n)
    return list(generate_trace(db, queries, seed=seed))


def _make_model(graphs, runtimes, seed=0, hidden_dim=24, dtype="float32"):
    model = ZeroShotModel(hidden_dim=hidden_dim, seed=seed).eval()
    model.to(np.dtype(dtype))
    return ZeroShotCostModel(model, FeatureScalers().fit(graphs),
                             TargetScaler().fit(runtimes),
                             TrainingConfig(hidden_dim=hidden_dim,
                                            dtype=dtype))


def _direct(model, graphs):
    return predict_runtimes(model.model, graphs, model.feature_scalers,
                            model.target_scaler, batch_cache=False)


@pytest.fixture(scope="module")
def world():
    db_a = _make_db("fleet_a", seed=31)
    db_b = _make_db("fleet_b", seed=32)
    dbs = {db_a.name: db_a, db_b.name: db_b}
    records_a = _make_trace(db_a, 16, seed=7)
    records_b = _make_trace(db_b, 10, seed=8)
    graphs_a = featurize_records(records_a, dbs, cards="exact")
    graphs_b = featurize_records(records_b, dbs, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records_a + records_b])
    model = _make_model(graphs_a + graphs_b, runtimes, seed=0)
    return {
        "dbs": dbs, "db_a": db_a, "db_b": db_b,
        "records_a": records_a, "records_b": records_b,
        "graphs_a": graphs_a, "graphs_b": graphs_b,
        "graphs_all": graphs_a + graphs_b, "runtimes": runtimes,
        "model": model,
        "expected_a": _direct(model, graphs_a),
        "expected_b": _direct(model, graphs_b),
    }


def _registry_with(world, root, model=None):
    registry = ModelRegistry(root)
    registry.publish("main", model or world["model"],
                     dbs=[world["db_a"], world["db_b"]], default=True)
    return registry


# ----------------------------------------------------------------------
# WorkerProcess: the long-lived forked worker + duplex pipe
# ----------------------------------------------------------------------
def _echo_worker(conn, tag):
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message == "die":
            os._exit(3)
        conn.send((tag, message))


class TestWorkerProcess:
    def test_echo_roundtrip(self):
        wp = WorkerProcess(_echo_worker, args=("w0",)).start()
        try:
            wp.send("ping")
            assert wp.recv() == ("w0", "ping")
            assert wp.alive
        finally:
            wp.stop()
        assert not wp.alive

    def test_death_is_observable_and_restart_recovers(self):
        wp = WorkerProcess(_echo_worker, args=("w1",)).start()
        try:
            wp.send("die")
            # Death surfaces on the selectable sentinel and as EOF on the
            # pipe — never as a silent hang.
            multiprocessing.connection.wait([wp.sentinel], timeout=10.0)
            wp.process.join(timeout=10.0)
            assert not wp.alive
            assert wp.exitcode == 3
            with pytest.raises((EOFError, OSError)):
                while True:
                    wp.recv()
            wp.restart()
            assert wp.restarts == 1
            wp.send("back")
            assert wp.recv() == ("w1", "back")
        finally:
            wp.stop()

    def test_stop_is_idempotent_and_never_hangs(self):
        wp = WorkerProcess(_echo_worker, args=("w2",)).start()
        wp.stop(timeout=5.0)
        wp.stop(timeout=5.0)
        assert wp.process is None and wp.conn is None


# ----------------------------------------------------------------------
# mmap hydration: one on-disk extraction, verified, race-safe
# ----------------------------------------------------------------------
def _hydrate_child(root, barrier, queue):
    try:
        barrier.wait(timeout=20)
        registry = ModelRegistry(root)  # fresh instance: disk state only
        model = registry.load_mmap()
        queue.put(("ok", model.state_digest()))
    except BaseException as exc:  # noqa: BLE001 - report, parent asserts
        queue.put(("err", repr(exc)))


class TestMmapHydration:
    def test_load_mmap_bit_identical_and_read_only(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        plain = registry.load()
        mapped = registry.load_mmap()
        np.testing.assert_array_equal(_direct(mapped, world["graphs_all"]),
                                      _direct(plain, world["graphs_all"]))
        params = list(mapped.model.parameters())
        assert params
        for param in params:
            assert not param.data.flags.writeable
            assert isinstance(param.data.base, np.memmap)
        # Verified content address: the mapped model digests to its key.
        assert mapped.state_digest() == registry.active("main").checkpoint_key
        # Memoized: a second load returns the same hydrated object.
        assert registry.load_mmap() is mapped

    def test_concurrent_hydration_from_many_processes(self, world, tmp_path):
        """N processes race to materialize the same checkpoint: every one
        must hydrate a digest-verified model (temp-dir + rename makes the
        extraction atomic — no process can observe a torn manifest), and
        no temp debris survives."""
        registry = _registry_with(world, tmp_path)
        key = registry.active("main").checkpoint_key
        context = multiprocessing.get_context("fork")
        n = 4
        barrier = context.Barrier(n)
        queue = context.Queue()
        processes = [context.Process(target=_hydrate_child,
                                     args=(tmp_path, barrier, queue),
                                     daemon=True)
                     for _ in range(n)]
        for process in processes:
            process.start()
        outcomes = [queue.get(timeout=60) for _ in range(n)]
        for process in processes:
            process.join(timeout=10)
        assert outcomes == [("ok", key)] * n
        mmap_dir = registry.mmap_dir(key)
        assert (mmap_dir / "manifest.json").exists()
        leftovers = [p for p in mmap_dir.parent.iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []


# ----------------------------------------------------------------------
# Fleet equivalence: any worker count, any placement, same bits
# ----------------------------------------------------------------------
class TestFleetEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_bit_identical_to_direct_prediction(self, world, tmp_path,
                                                n_workers):
        registry = _registry_with(world, tmp_path)
        plans_a = [r.plan for r in world["records_a"]]
        plans_b = [r.plan for r in world["records_b"]]
        with PredictorFleet(registry, world["dbs"],
                            n_workers=n_workers) as fleet:
            got_a = fleet.predict(plans_a, world["db_a"].name)
            got_b = fleet.predict(plans_b, world["db_b"].name)
            # Repeat round: answered from worker result caches (CACHED),
            # same bits by construction — but verify anyway.
            again_a = fleet.predict(plans_a, world["db_a"].name)
            stats = fleet.stats()
        np.testing.assert_array_equal(got_a, world["expected_a"])
        np.testing.assert_array_equal(got_b, world["expected_b"])
        np.testing.assert_array_equal(again_a, world["expected_a"])
        assert stats["workers"] == n_workers
        assert stats["cached"] > 0
        assert stats["failed"] == 0 and stats["shed"] == 0

    def test_spill_keeps_values_identical(self, world, tmp_path):
        """spill_threshold=1 forces nearly every request off its preferred
        shard — placement must never change a value."""
        registry = _registry_with(world, tmp_path)
        plans_a = [r.plan for r in world["records_a"]]
        config = ServerConfig(result_cache_size=0)
        with PredictorFleet(registry, world["dbs"], config, n_workers=3,
                            spill_threshold=1) as fleet:
            got = fleet.predict(plans_a, world["db_a"].name)
            stats = fleet.stats()
        np.testing.assert_array_equal(got, world["expected_a"])
        assert stats["spills"] > 0

    def test_shed_when_queue_full(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        config = ServerConfig(queue_depth=1, max_delay_ms=50.0)
        plans_a = [r.plan for r in world["records_a"]]
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=1) as fleet:
            handles = [fleet.submit(plan, world["db_a"].name)
                       for plan in plans_a]
            for handle in handles:
                handle.wait(30)
            stats = fleet.stats()
        shed = [h for h in handles if h.status is RequestStatus.SHED]
        done = [h for h in handles if h.status in (RequestStatus.DONE,
                                                   RequestStatus.CACHED)]
        assert shed and done
        assert len(shed) + len(done) == len(handles)
        assert stats["shed"] == len(shed)

    def test_unknown_database_rejected(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        with PredictorFleet(registry, world["dbs"], n_workers=1) as fleet:
            with pytest.raises(KeyError):
                fleet.submit(world["records_a"][0].plan, "nope")


# ----------------------------------------------------------------------
# Supervision: SIGKILL mid-load, exactly-once completion
# ----------------------------------------------------------------------
class TestFleetSupervision:
    def test_worker_kill_no_lost_no_duplicated_handles(self, world,
                                                       tmp_path):
        registry = _registry_with(world, tmp_path)
        db_a = world["db_a"]
        # Large coalescing delay: results are still pending when the kill
        # lands, so the supervisor must re-send them to the replacement.
        config = ServerConfig(max_delay_ms=200.0, max_batch_size=256,
                              result_cache_size=0)
        plans = [r.plan for r in world["records_a"]] * 2
        expected = np.concatenate([world["expected_a"]] * 2)
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=2, spill_threshold=10_000) as fleet:
            target = fleet._preferred[db_a.name]  # every request lands here
            handles = fleet.submit_many(plans, db_a.name, block=True)
            assert fleet.kill_worker(target) is not None
            completions = []
            for handle in handles:
                # Exactly-once: result() returns the single final value;
                # a second read observes the same resolved state.
                completions.append(handle.result(60))
                assert handle.status is RequestStatus.DONE
            stats = fleet.stats()
        np.testing.assert_array_equal(np.array(completions), expected)
        assert stats["worker_restarts"] >= 1
        assert stats["requeued"] >= 1
        assert stats["failed"] == 0 and stats["shed"] == 0
        assert stats["requests"] == len(plans)

    def test_kill_during_open_loop_load(self, world, tmp_path):
        """The bench-shaped scenario: saturation load, a worker dies
        mid-run, every delivered value still matches the direct call."""
        registry = _registry_with(world, tmp_path)
        config = ServerConfig(result_cache_size=0,
                              queue_depth=10_000, max_delay_ms=20.0)
        requests = ([(world["db_a"].name, r.plan)
                     for r in world["records_a"]] * 3)
        expected = {id(r.plan): float(v) for r, v in
                    zip(world["records_a"], world["expected_a"])}
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=2, spill_threshold=4) as fleet:
            fleet.submit(requests[0][1], requests[0][0], block=True)
            fleet.kill_worker(0)
            report = run_load(fleet, requests,
                              LoadConfig(n_clients=3, block=True, seed=3))
        assert report.failed == 0 and report.shed == 0
        assert report.completed == len(requests)
        for handle in report.handles:
            assert handle.value == expected[id(handle.plan)]

    def test_close_without_drain_fails_pending_typed(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        config = ServerConfig(max_delay_ms=500.0, max_batch_size=256)
        fleet = PredictorFleet(registry, world["dbs"], config,
                               n_workers=1).start()
        handles = fleet.submit_many([r.plan for r in world["records_a"]],
                                    world["db_a"].name, block=True)
        fleet.close(drain=False)
        for handle in handles:
            handle.wait(10)
            assert handle.status in (RequestStatus.FAILED,
                                     RequestStatus.DONE)
        failed = [h for h in handles if h.status is RequestStatus.FAILED]
        for handle in failed:
            with pytest.raises(Exception) as err:
                handle.result(0)
            assert "fleet stopped" in str(err.value)


# ----------------------------------------------------------------------
# Cross-process hot swap: promote/rollback reach every worker
# ----------------------------------------------------------------------
class TestFleetHotSwap:
    def test_publish_promote_rollback_fleet_wide(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        model_v2 = _make_model(world["graphs_all"], world["runtimes"],
                               seed=9)
        expected_v2 = _direct(model_v2, world["graphs_a"])
        plans_a = [r.plan for r in world["records_a"]]
        config = ServerConfig(result_cache_size=0)
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=2) as fleet:
            got_v1 = fleet.predict(plans_a, world["db_a"].name)
            registry.publish("main", model_v2,
                             dbs=[world["db_a"], world["db_b"]])
            got_v2 = fleet.predict(plans_a, world["db_a"].name)
            registry.promote("main", 1)
            got_back = fleet.predict(plans_a, world["db_a"].name)
            stats = fleet.stats()
        np.testing.assert_array_equal(got_v1, world["expected_a"])
        np.testing.assert_array_equal(got_v2, expected_v2)
        np.testing.assert_array_equal(got_back, world["expected_a"])
        assert not np.array_equal(got_v1, got_v2)
        assert stats["failed"] == 0


# ----------------------------------------------------------------------
# Load generator: fleet mode, skewed mixes, per-database breakdown
# ----------------------------------------------------------------------
class TestFleetLoadgen:
    def test_latency_by_db_breakdown(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        requests = ([(world["db_a"].name, r.plan)
                     for r in world["records_a"]]
                    + [(world["db_b"].name, r.plan)
                       for r in world["records_b"]])
        with PredictorFleet(registry, world["dbs"], n_workers=2) as fleet:
            report = run_load(fleet, requests,
                              LoadConfig(n_clients=2, block=True, seed=1))
        assert report.completed + report.cached == len(requests)
        by_db = report.latency_by_db
        assert set(by_db) == {world["db_a"].name, world["db_b"].name}
        for name, summary in by_db.items():
            assert summary["delivered"] == summary["requests"]
            assert summary["degraded"] == 0
            assert summary["p50"] > 0
        total = sum(s["requests"] for s in by_db.values())
        assert total == len(requests)

    def test_skewed_requests_seeded_and_weighted(self, world):
        pools = {
            world["db_a"].name: [(world["db_a"].name, r.plan)
                                 for r in world["records_a"]],
            world["db_b"].name: [(world["db_b"].name, r.plan)
                                 for r in world["records_b"]],
        }
        weights = {world["db_a"].name: 0.9, world["db_b"].name: 0.1}
        mix = skewed_requests(pools, weights, n=200, seed=4)
        assert mix == skewed_requests(pools, weights, n=200, seed=4)
        assert mix != skewed_requests(pools, weights, n=200, seed=5)
        counts = {name: sum(1 for db, _ in mix if db == name)
                  for name in pools}
        assert counts[world["db_a"].name] > counts[world["db_b"].name] * 3
        assert len(mix) == 200
        for db_name, plan in mix:
            assert (db_name, plan) in pools[db_name]

    def test_skewed_load_routes_hot_database(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        pools = {
            world["db_a"].name: [(world["db_a"].name, r.plan)
                                 for r in world["records_a"]],
            world["db_b"].name: [(world["db_b"].name, r.plan)
                                 for r in world["records_b"]],
        }
        weights = {world["db_a"].name: 0.85, world["db_b"].name: 0.15}
        mix = skewed_requests(pools, weights, n=80, seed=2)
        expected = {}
        for records, values in ((world["records_a"], world["expected_a"]),
                                (world["records_b"], world["expected_b"])):
            for record, value in zip(records, values):
                expected[id(record.plan)] = float(value)
        config = ServerConfig(result_cache_size=0, queue_depth=10_000)
        with PredictorFleet(registry, world["dbs"], config, n_workers=2,
                            spill_threshold=4) as fleet:
            report = run_load(fleet, mix,
                              LoadConfig(n_clients=3, block=True, seed=2))
        assert report.completed == len(mix)
        for handle in report.handles:
            assert handle.value == expected[id(handle.plan)]
        hot = report.latency_by_db[world["db_a"].name]
        cold = report.latency_by_db[world["db_b"].name]
        assert hot["requests"] > cold["requests"]
