"""Fleet serving: sharding router, forked workers, mmap-shared checkpoints.

The load-bearing contract is *fleet equivalence*: for any request mix, any
shard placement and any worker count, every ``DONE``/``CACHED`` value is
bit-identical to a direct ``predict_runtimes`` call on the same model —
including across worker kills and restarts.  These tests pin that down,
plus the transport underneath it: the long-lived ``WorkerProcess`` pipe
protocol, the registry's mmap hydration path (one page-cache copy per
checkpoint, content-address verified, safe under concurrent
materialization from many processes), supervision (SIGKILL a worker
mid-load — no handle lost, none answered twice), and cross-process
hot-swap on ``registry.generation`` changes.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.bench.parallel import WorkerProcess
from repro.core import TrainingConfig, ZeroShotCostModel, featurize_records
from repro.core.model import ZeroShotModel
from repro.core.training import predict_runtimes
from repro.datagen import generate_database, random_database_spec
from repro.featurization import FeatureScalers, TargetScaler, database_digest
from repro.serving import (LoadConfig, ModelRegistry, PredictorFleet,
                           RequestStatus, ServerConfig, run_load,
                           skewed_requests)
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the serving fleet requires the fork start method")


# ----------------------------------------------------------------------
# Shared world: two databases, executed workloads, a model over both
# ----------------------------------------------------------------------
def _make_db(name, seed, base_rows=500):
    spec = random_database_spec(name, seed=seed, layout="snowflake",
                                base_rows=base_rows, n_tables=4,
                                complexity=0.6)
    return generate_database(spec)


def _make_trace(db, n, seed):
    queries = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                seed=seed).generate(n)
    return list(generate_trace(db, queries, seed=seed))


def _make_model(graphs, runtimes, seed=0, hidden_dim=24, dtype="float32"):
    model = ZeroShotModel(hidden_dim=hidden_dim, seed=seed).eval()
    model.to(np.dtype(dtype))
    return ZeroShotCostModel(model, FeatureScalers().fit(graphs),
                             TargetScaler().fit(runtimes),
                             TrainingConfig(hidden_dim=hidden_dim,
                                            dtype=dtype))


def _direct(model, graphs):
    return predict_runtimes(model.model, graphs, model.feature_scalers,
                            model.target_scaler, batch_cache=False)


@pytest.fixture(scope="module")
def world():
    db_a = _make_db("fleet_a", seed=31)
    db_b = _make_db("fleet_b", seed=32)
    dbs = {db_a.name: db_a, db_b.name: db_b}
    records_a = _make_trace(db_a, 16, seed=7)
    records_b = _make_trace(db_b, 10, seed=8)
    graphs_a = featurize_records(records_a, dbs, cards="exact")
    graphs_b = featurize_records(records_b, dbs, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records_a + records_b])
    model = _make_model(graphs_a + graphs_b, runtimes, seed=0)
    return {
        "dbs": dbs, "db_a": db_a, "db_b": db_b,
        "records_a": records_a, "records_b": records_b,
        "graphs_a": graphs_a, "graphs_b": graphs_b,
        "graphs_all": graphs_a + graphs_b, "runtimes": runtimes,
        "model": model,
        "expected_a": _direct(model, graphs_a),
        "expected_b": _direct(model, graphs_b),
    }


def _registry_with(world, root, model=None):
    registry = ModelRegistry(root)
    registry.publish("main", model or world["model"],
                     dbs=[world["db_a"], world["db_b"]], default=True)
    return registry


# ----------------------------------------------------------------------
# WorkerProcess: the long-lived forked worker + duplex pipe
# ----------------------------------------------------------------------
def _echo_worker(conn, tag):
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message == "die":
            os._exit(3)
        conn.send((tag, message))


class TestWorkerProcess:
    def test_echo_roundtrip(self):
        wp = WorkerProcess(_echo_worker, args=("w0",)).start()
        try:
            wp.send("ping")
            assert wp.recv() == ("w0", "ping")
            assert wp.alive
        finally:
            wp.stop()
        assert not wp.alive

    def test_death_is_observable_and_restart_recovers(self):
        wp = WorkerProcess(_echo_worker, args=("w1",)).start()
        try:
            wp.send("die")
            # Death surfaces on the selectable sentinel and as EOF on the
            # pipe — never as a silent hang.
            multiprocessing.connection.wait([wp.sentinel], timeout=10.0)
            wp.process.join(timeout=10.0)
            assert not wp.alive
            assert wp.exitcode == 3
            with pytest.raises((EOFError, OSError)):
                while True:
                    wp.recv()
            wp.restart()
            assert wp.restarts == 1
            wp.send("back")
            assert wp.recv() == ("w1", "back")
        finally:
            wp.stop()

    def test_stop_is_idempotent_and_never_hangs(self):
        wp = WorkerProcess(_echo_worker, args=("w2",)).start()
        wp.stop(timeout=5.0)
        wp.stop(timeout=5.0)
        assert wp.process is None and wp.conn is None


# ----------------------------------------------------------------------
# mmap hydration: one on-disk extraction, verified, race-safe
# ----------------------------------------------------------------------
def _hydrate_child(root, barrier, queue):
    try:
        barrier.wait(timeout=20)
        registry = ModelRegistry(root)  # fresh instance: disk state only
        model = registry.load_mmap()
        queue.put(("ok", model.state_digest()))
    except BaseException as exc:  # noqa: BLE001 - report, parent asserts
        queue.put(("err", repr(exc)))


class TestMmapHydration:
    def test_load_mmap_bit_identical_and_read_only(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        plain = registry.load()
        mapped = registry.load_mmap()
        np.testing.assert_array_equal(_direct(mapped, world["graphs_all"]),
                                      _direct(plain, world["graphs_all"]))
        params = list(mapped.model.parameters())
        assert params
        for param in params:
            assert not param.data.flags.writeable
            assert isinstance(param.data.base, np.memmap)
        # Verified content address: the mapped model digests to its key.
        assert mapped.state_digest() == registry.active("main").checkpoint_key
        # Memoized: a second load returns the same hydrated object.
        assert registry.load_mmap() is mapped

    def test_concurrent_hydration_from_many_processes(self, world, tmp_path):
        """N processes race to materialize the same checkpoint: every one
        must hydrate a digest-verified model (temp-dir + rename makes the
        extraction atomic — no process can observe a torn manifest), and
        no temp debris survives."""
        registry = _registry_with(world, tmp_path)
        key = registry.active("main").checkpoint_key
        context = multiprocessing.get_context("fork")
        n = 4
        barrier = context.Barrier(n)
        queue = context.Queue()
        processes = [context.Process(target=_hydrate_child,
                                     args=(tmp_path, barrier, queue),
                                     daemon=True)
                     for _ in range(n)]
        for process in processes:
            process.start()
        outcomes = [queue.get(timeout=60) for _ in range(n)]
        for process in processes:
            process.join(timeout=10)
        assert outcomes == [("ok", key)] * n
        mmap_dir = registry.mmap_dir(key)
        assert (mmap_dir / "manifest.json").exists()
        leftovers = [p for p in mmap_dir.parent.iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []


# ----------------------------------------------------------------------
# Fleet equivalence: any worker count, any placement, same bits
# ----------------------------------------------------------------------
class TestFleetEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_bit_identical_to_direct_prediction(self, world, tmp_path,
                                                n_workers):
        registry = _registry_with(world, tmp_path)
        plans_a = [r.plan for r in world["records_a"]]
        plans_b = [r.plan for r in world["records_b"]]
        with PredictorFleet(registry, world["dbs"],
                            n_workers=n_workers) as fleet:
            got_a = fleet.predict(plans_a, world["db_a"].name)
            got_b = fleet.predict(plans_b, world["db_b"].name)
            # Repeat round: answered from worker result caches (CACHED),
            # same bits by construction — but verify anyway.
            again_a = fleet.predict(plans_a, world["db_a"].name)
            stats = fleet.stats()
        np.testing.assert_array_equal(got_a, world["expected_a"])
        np.testing.assert_array_equal(got_b, world["expected_b"])
        np.testing.assert_array_equal(again_a, world["expected_a"])
        assert stats["workers"] == n_workers
        assert stats["cached"] > 0
        assert stats["failed"] == 0 and stats["shed"] == 0

    def test_spill_keeps_values_identical(self, world, tmp_path):
        """spill_threshold=1 forces nearly every request off its preferred
        shard — placement must never change a value."""
        registry = _registry_with(world, tmp_path)
        plans_a = [r.plan for r in world["records_a"]]
        config = ServerConfig(result_cache_size=0)
        with PredictorFleet(registry, world["dbs"], config, n_workers=3,
                            spill_threshold=1) as fleet:
            got = fleet.predict(plans_a, world["db_a"].name)
            stats = fleet.stats()
        np.testing.assert_array_equal(got, world["expected_a"])
        assert stats["spills"] > 0

    def test_shed_when_queue_full(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        config = ServerConfig(queue_depth=1, max_delay_ms=50.0)
        plans_a = [r.plan for r in world["records_a"]]
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=1) as fleet:
            handles = [fleet.submit(plan, world["db_a"].name)
                       for plan in plans_a]
            for handle in handles:
                handle.wait(30)
            stats = fleet.stats()
        shed = [h for h in handles if h.status is RequestStatus.SHED]
        done = [h for h in handles if h.status in (RequestStatus.DONE,
                                                   RequestStatus.CACHED)]
        assert shed and done
        assert len(shed) + len(done) == len(handles)
        assert stats["shed"] == len(shed)

    def test_unknown_database_rejected(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        with PredictorFleet(registry, world["dbs"], n_workers=1) as fleet:
            with pytest.raises(KeyError):
                fleet.submit(world["records_a"][0].plan, "nope")


# ----------------------------------------------------------------------
# Supervision: SIGKILL mid-load, exactly-once completion
# ----------------------------------------------------------------------
class TestFleetSupervision:
    def test_worker_kill_no_lost_no_duplicated_handles(self, world,
                                                       tmp_path):
        registry = _registry_with(world, tmp_path)
        db_a = world["db_a"]
        # Large coalescing delay: results are still pending when the kill
        # lands, so the supervisor must re-send them to the replacement.
        config = ServerConfig(max_delay_ms=200.0, max_batch_size=256,
                              result_cache_size=0)
        plans = [r.plan for r in world["records_a"]] * 2
        expected = np.concatenate([world["expected_a"]] * 2)
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=2, spill_threshold=10_000) as fleet:
            target = fleet._preferred[db_a.name]  # every request lands here
            handles = fleet.submit_many(plans, db_a.name, block=True)
            assert fleet.kill_worker(target) is not None
            completions = []
            for handle in handles:
                # Exactly-once: result() returns the single final value;
                # a second read observes the same resolved state.
                completions.append(handle.result(60))
                assert handle.status is RequestStatus.DONE
            stats = fleet.stats()
        np.testing.assert_array_equal(np.array(completions), expected)
        assert stats["worker_restarts"] >= 1
        assert stats["requeued"] >= 1
        assert stats["failed"] == 0 and stats["shed"] == 0
        assert stats["requests"] == len(plans)

    def test_kill_during_open_loop_load(self, world, tmp_path):
        """The bench-shaped scenario: saturation load, a worker dies
        mid-run, every delivered value still matches the direct call."""
        registry = _registry_with(world, tmp_path)
        config = ServerConfig(result_cache_size=0,
                              queue_depth=10_000, max_delay_ms=20.0)
        requests = ([(world["db_a"].name, r.plan)
                     for r in world["records_a"]] * 3)
        expected = {id(r.plan): float(v) for r, v in
                    zip(world["records_a"], world["expected_a"])}
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=2, spill_threshold=4) as fleet:
            fleet.submit(requests[0][1], requests[0][0], block=True)
            fleet.kill_worker(0)
            report = run_load(fleet, requests,
                              LoadConfig(n_clients=3, block=True, seed=3))
        assert report.failed == 0 and report.shed == 0
        assert report.completed == len(requests)
        for handle in report.handles:
            assert handle.value == expected[id(handle.plan)]

    def test_close_without_drain_fails_pending_typed(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        config = ServerConfig(max_delay_ms=500.0, max_batch_size=256)
        fleet = PredictorFleet(registry, world["dbs"], config,
                               n_workers=1).start()
        handles = fleet.submit_many([r.plan for r in world["records_a"]],
                                    world["db_a"].name, block=True)
        fleet.close(drain=False)
        for handle in handles:
            handle.wait(10)
            assert handle.status in (RequestStatus.FAILED,
                                     RequestStatus.DONE)
        failed = [h for h in handles if h.status is RequestStatus.FAILED]
        for handle in failed:
            with pytest.raises(Exception) as err:
                handle.result(0)
            assert "fleet stopped" in str(err.value)


# ----------------------------------------------------------------------
# Cross-process hot swap: promote/rollback reach every worker
# ----------------------------------------------------------------------
class TestFleetHotSwap:
    def test_publish_promote_rollback_fleet_wide(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        model_v2 = _make_model(world["graphs_all"], world["runtimes"],
                               seed=9)
        expected_v2 = _direct(model_v2, world["graphs_a"])
        plans_a = [r.plan for r in world["records_a"]]
        config = ServerConfig(result_cache_size=0)
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=2) as fleet:
            got_v1 = fleet.predict(plans_a, world["db_a"].name)
            registry.publish("main", model_v2,
                             dbs=[world["db_a"], world["db_b"]])
            got_v2 = fleet.predict(plans_a, world["db_a"].name)
            registry.promote("main", 1)
            got_back = fleet.predict(plans_a, world["db_a"].name)
            stats = fleet.stats()
        np.testing.assert_array_equal(got_v1, world["expected_a"])
        np.testing.assert_array_equal(got_v2, expected_v2)
        np.testing.assert_array_equal(got_back, world["expected_a"])
        assert not np.array_equal(got_v1, got_v2)
        assert stats["failed"] == 0


# ----------------------------------------------------------------------
# Load generator: fleet mode, skewed mixes, per-database breakdown
# ----------------------------------------------------------------------
class TestFleetLoadgen:
    def test_latency_by_db_breakdown(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        requests = ([(world["db_a"].name, r.plan)
                     for r in world["records_a"]]
                    + [(world["db_b"].name, r.plan)
                       for r in world["records_b"]])
        with PredictorFleet(registry, world["dbs"], n_workers=2) as fleet:
            report = run_load(fleet, requests,
                              LoadConfig(n_clients=2, block=True, seed=1))
        assert report.completed + report.cached == len(requests)
        by_db = report.latency_by_db
        assert set(by_db) == {world["db_a"].name, world["db_b"].name}
        for name, summary in by_db.items():
            assert summary["delivered"] == summary["requests"]
            assert summary["degraded"] == 0
            assert summary["p50"] > 0
        total = sum(s["requests"] for s in by_db.values())
        assert total == len(requests)

    def test_skewed_requests_seeded_and_weighted(self, world):
        pools = {
            world["db_a"].name: [(world["db_a"].name, r.plan)
                                 for r in world["records_a"]],
            world["db_b"].name: [(world["db_b"].name, r.plan)
                                 for r in world["records_b"]],
        }
        weights = {world["db_a"].name: 0.9, world["db_b"].name: 0.1}
        mix = skewed_requests(pools, weights, n=200, seed=4)
        assert mix == skewed_requests(pools, weights, n=200, seed=4)
        assert mix != skewed_requests(pools, weights, n=200, seed=5)
        counts = {name: sum(1 for db, _ in mix if db == name)
                  for name in pools}
        assert counts[world["db_a"].name] > counts[world["db_b"].name] * 3
        assert len(mix) == 200
        for db_name, plan in mix:
            assert (db_name, plan) in pools[db_name]

    def test_skewed_load_routes_hot_database(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        pools = {
            world["db_a"].name: [(world["db_a"].name, r.plan)
                                 for r in world["records_a"]],
            world["db_b"].name: [(world["db_b"].name, r.plan)
                                 for r in world["records_b"]],
        }
        weights = {world["db_a"].name: 0.85, world["db_b"].name: 0.15}
        mix = skewed_requests(pools, weights, n=80, seed=2)
        expected = {}
        for records, values in ((world["records_a"], world["expected_a"]),
                                (world["records_b"], world["expected_b"])):
            for record, value in zip(records, values):
                expected[id(record.plan)] = float(value)
        config = ServerConfig(result_cache_size=0, queue_depth=10_000)
        with PredictorFleet(registry, world["dbs"], config, n_workers=2,
                            spill_threshold=4) as fleet:
            report = run_load(fleet, mix,
                              LoadConfig(n_clients=3, block=True, seed=2))
        assert report.completed == len(mix)
        for handle in report.handles:
            assert handle.value == expected[id(handle.plan)]
        hot = report.latency_by_db[world["db_a"].name]
        cold = report.latency_by_db[world["db_b"].name]
        assert hot["requests"] > cold["requests"]


# ----------------------------------------------------------------------
# Liveness plane: heartbeats, hang detection, replayable recovery
# ----------------------------------------------------------------------
class TestFleetLiveness:
    def _run_hang_scenario(self, world, root, fault_seed=11):
        """One full hang-recovery pass; returns (per-handle outcomes,
        counter signature) for replay comparison."""
        from repro.robustness.faults import FaultSchedule, FaultSpec

        registry = _registry_with(world, root)
        db_a = world["db_a"]
        plans = [r.plan for r in world["records_a"]]
        config = ServerConfig(result_cache_size=0, max_delay_ms=20.0,
                              max_batch_size=256)
        schedule = None
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=2, spill_threshold=10_000,
                            hang_timeout_ms=300.0, ping_interval_ms=60.0,
                            hedge_after_ms=None) as probe:
            target = probe._preferred[db_a.name]
        schedule = {target: FaultSchedule([
            FaultSpec("fleet.worker.hang", rate=1.0, max_faults=1,
                      action="hang"),
        ], seed=fault_seed)}
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=2, spill_threshold=10_000,
                            fault_schedule=schedule,
                            hang_timeout_ms=300.0, ping_interval_ms=60.0,
                            hedge_after_ms=None) as fleet:
            handles = fleet.submit_many(plans, db_a.name, block=True)
            outcomes = []
            for handle in handles:
                value = handle.result(60)  # waits; then status is final
                outcomes.append((handle.status, value))
            stats = fleet.stats()
        signature = {key: stats[key] for key in
                     ("requests", "completed", "failed", "shed",
                      "hangs", "requeued")}
        return outcomes, signature, stats

    def test_hang_detected_killed_restarted_and_replayable(self, world,
                                                           tmp_path):
        """A worker that hangs forever (gray failure: alive, silent) is
        detected within the hang timeout, SIGKILLed and restarted; its
        unanswered requests are re-sent and every value matches the
        direct call.  The same schedule replayed from scratch produces
        the identical per-handle outcome and counter signature."""
        outcomes1, sig1, stats1 = self._run_hang_scenario(
            world, tmp_path / "run1")
        outcomes2, sig2, _ = self._run_hang_scenario(
            world, tmp_path / "run2")
        expected = world["expected_a"]
        for (status, value), want in zip(outcomes1, expected):
            assert status is RequestStatus.DONE
            assert value == float(want)
        assert outcomes1 == outcomes2
        assert sig1 == sig2
        assert sig1["hangs"] == 1
        assert sig1["failed"] == 0 and sig1["shed"] == 0
        assert sig1["requeued"] >= 1
        assert stats1["worker_restarts"] >= 1
        assert stats1["unresponsive_workers"] == 0  # restarted healthy

    def test_stats_is_hang_safe(self, world, tmp_path):
        """stats() on a fleet with a wedged worker returns promptly with
        an ``unresponsive`` row instead of blocking the caller."""
        import time as _time

        from repro import perfstats
        from repro.robustness.faults import FaultSchedule, FaultSpec

        registry = _registry_with(world, tmp_path)
        config = ServerConfig(result_cache_size=0, max_delay_ms=1.0)
        schedule = FaultSchedule([
            # Finite hang: long enough to straddle the stats call, short
            # enough that the fleet drains cleanly afterwards (hang
            # detection is off, so nothing kills the worker).
            FaultSpec("fleet.worker.hang", rate=1.0, max_faults=1,
                      action="hang", delay_ms=1500.0),
        ], seed=5)
        before = perfstats.snapshot(["fleet.stats.unresponsive"])
        with PredictorFleet(registry, world["dbs"], config, n_workers=1,
                            fault_schedule=schedule,
                            hang_timeout_ms=None) as fleet:
            handle = fleet.submit(world["records_a"][0].plan,
                                  world["db_a"].name, block=True)
            _time.sleep(0.2)  # let the worker enter the hang
            start = _time.perf_counter()
            stats = fleet.stats(timeout_s=0.3)
            elapsed = _time.perf_counter() - start
            assert elapsed < 1.0
            assert stats["unresponsive_workers"] == 1
            assert {"unresponsive": True, "worker": 0} in \
                stats["worker_stats"]
            assert handle.result(30) == float(world["expected_a"][0])
        after = perfstats.snapshot(["fleet.stats.unresponsive"])
        assert (after["fleet.stats.unresponsive"]
                > before["fleet.stats.unresponsive"])


# ----------------------------------------------------------------------
# Hedged requests: straggler re-sends, raced-result dedup
# ----------------------------------------------------------------------
class TestFleetHedging:
    def test_hedge_dedup_late_loser_cannot_double_complete(self, world,
                                                           tmp_path):
        """A hedge fires while the original worker is still coalescing;
        whichever copy answers second finds the entry already completed.
        The late duplicate must not double-complete the handle, corrupt
        the outstanding count, or poison a later round."""
        import time as _time

        registry = _registry_with(world, tmp_path)
        db_a = world["db_a"]
        plans = [r.plan for r in world["records_a"]]
        expected = world["expected_a"]
        # 250 ms coalescing delay on a small batch: the original worker
        # sits on the requests long past the 40 ms hedge threshold, so
        # every request hedges and both workers eventually answer.
        config = ServerConfig(result_cache_size=0, max_delay_ms=250.0,
                              max_batch_size=256)
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=2, spill_threshold=10_000,
                            hang_timeout_ms=None,
                            hedge_after_ms=40.0, max_hedges=1) as fleet:
            handles = fleet.submit_many(plans, db_a.name, block=True)
            for handle, want in zip(handles, expected):
                assert handle.result(60) == float(want)
                assert handle.status is RequestStatus.DONE
            # Let the losing duplicates arrive and be dropped.
            deadline = _time.monotonic() + 5.0
            while _time.monotonic() < deadline:
                stats = fleet.stats()
                if (stats["hedge_wins"] + stats["hedge_wasted"] >= 1
                        and stats["outstanding"] == 0):
                    break
                _time.sleep(0.05)
            assert stats["hedges"] >= 1
            assert stats["hedge_wins"] + stats["hedge_wasted"] >= 1
            assert stats["outstanding"] == 0
            assert stats["completed"] >= len(plans)  # both copies ran
            # The fleet is not corrupted: a second round still delivers
            # bit-identical values through the same slots.
            again = fleet.submit_many(plans, db_a.name, block=True)
            for handle, want in zip(again, expected):
                assert handle.result(60) == float(want)
            final = fleet.stats()
        assert final["failed"] == 0 and final["shed"] == 0
        assert final["outstanding"] == 0

    def test_auto_threshold_needs_samples(self, world, tmp_path):
        registry = _registry_with(world, tmp_path)
        with PredictorFleet(registry, world["dbs"], n_workers=1,
                            hedge_after_ms="auto") as fleet:
            assert fleet.hedge_threshold_ms() is None  # no samples yet
            fleet.predict([r.plan for r in world["records_a"]],
                          world["db_a"].name)
        with PredictorFleet(registry, world["dbs"], n_workers=1,
                            hedge_after_ms=75.0) as fleet:
            assert fleet.hedge_threshold_ms() == 75.0


# ----------------------------------------------------------------------
# Priorities: classed admission, brownout, shed concentration
# ----------------------------------------------------------------------
class TestFleetPriorities:
    def test_brownout_and_priority_classed_shedding(self, world, tmp_path):
        from repro import perfstats
        from repro.optimizer import AnalyticalCostModel
        from repro.serving import RequestPriority

        registry = _registry_with(world, tmp_path)
        db_a = world["db_a"]
        plans = [r.plan for r in world["records_a"]]
        # queue_depth=8 with a 25% HIGH reserve: LOW admits under 4,
        # NORMAL under 6, HIGH under 8.  A 400 ms coalescing delay keeps
        # everything outstanding while the admission ladder is probed.
        config = ServerConfig(result_cache_size=0, max_delay_ms=400.0,
                              max_batch_size=256, queue_depth=8,
                              high_reserve_fraction=0.25,
                              brownout_fraction=0.5)
        before = perfstats.snapshot(
            ["serve.shed.priority.normal", "serve.shed.priority.high",
             "serve.shed.priority.low", "fleet.brownout.count"])
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=1) as fleet:
            normals = [fleet.submit(plans[i], db_a.name,
                                    priority=RequestPriority.NORMAL)
                       for i in range(6)]
            assert all(h.status is RequestStatus.PENDING for h in normals)
            # LOW over its bound browns out: immediate DEGRADED answer
            # from the analytical model, flagged as such.
            low = fleet.submit(plans[6], db_a.name,
                               priority=RequestPriority.LOW)
            assert low.status is RequestStatus.DEGRADED
            assert low.served_by == ("analytical", "brownout")
            analytical = AnalyticalCostModel(db_a)
            assert low.value == analytical.predict_plan(plans[6])
            # NORMAL over its bound sheds...
            shed_normal = fleet.submit(plans[7], db_a.name,
                                       priority=RequestPriority.NORMAL)
            assert shed_normal.status is RequestStatus.SHED
            # ...while HIGH still has the reserve.
            high_a = fleet.submit(plans[8], db_a.name,
                                  priority=RequestPriority.HIGH)
            high_b = fleet.submit(plans[9], db_a.name,
                                  priority=RequestPriority.HIGH)
            assert high_a.status is RequestStatus.PENDING
            assert high_b.status is RequestStatus.PENDING
            # The queue is now full even for HIGH.
            shed_high = fleet.submit(plans[10], db_a.name,
                                     priority=RequestPriority.HIGH)
            assert shed_high.status is RequestStatus.SHED
            stats = fleet.stats()
        after = perfstats.snapshot(
            ["serve.shed.priority.normal", "serve.shed.priority.high",
             "serve.shed.priority.low", "fleet.brownout.count"])
        delta = {key: after[key] - before[key] for key in after}
        assert delta["serve.shed.priority.normal"] == 1
        assert delta["serve.shed.priority.high"] == 1
        assert delta["serve.shed.priority.low"] == 0  # browned out instead
        assert delta["fleet.brownout.count"] == 1
        assert stats["brownouts"] == 1
        assert stats["shed"] == 2
        assert stats["degraded"] >= 1  # includes the brownout

    def test_low_sheds_when_brownout_disabled(self, world, tmp_path):
        from repro import perfstats
        from repro.serving import RequestPriority

        registry = _registry_with(world, tmp_path)
        db_a = world["db_a"]
        plans = [r.plan for r in world["records_a"]]
        config = ServerConfig(result_cache_size=0, max_delay_ms=400.0,
                              max_batch_size=256, queue_depth=4,
                              brownout_fraction=0.5,
                              brownout_degraded=False)
        before = perfstats.snapshot(["serve.shed.priority.low"])
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=1) as fleet:
            for i in range(2):  # LOW bound is int(4 * 0.5) = 2
                fleet.submit(plans[i], db_a.name,
                             priority=RequestPriority.LOW)
            low = fleet.submit(plans[2], db_a.name,
                               priority=RequestPriority.LOW)
            assert low.status is RequestStatus.SHED
        after = perfstats.snapshot(["serve.shed.priority.low"])
        assert after["serve.shed.priority.low"] == \
            before["serve.shed.priority.low"] + 1

    def test_deadline_crosses_the_pipe(self, world, tmp_path):
        """A request whose deadline expires while queued is dropped
        worker-side before featurization, with the typed error."""
        from repro.serving import DeadlineExceededError

        registry = _registry_with(world, tmp_path)
        db_a = world["db_a"]
        # Coalescing delay far past the request deadline: by the time the
        # batch forms, the deadline has long expired.
        config = ServerConfig(result_cache_size=0, max_delay_ms=150.0,
                              max_batch_size=256)
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=1) as fleet:
            doomed = fleet.submit(world["records_a"][0].plan, db_a.name,
                                  deadline_ms=1.0)
            fine = fleet.submit(world["records_a"][1].plan, db_a.name)
            doomed.wait(30)
            assert doomed.status is RequestStatus.FAILED
            with pytest.raises(DeadlineExceededError):
                doomed.result(0)
            assert fine.result(30) == float(world["expected_a"][1])
            stats = fleet.stats()
        assert stats["deadline_expired"] >= 1


# ----------------------------------------------------------------------
# Fault-schedule propagation into forked workers
# ----------------------------------------------------------------------
class TestFleetFaultPropagation:
    def test_explicit_schedule_fires_inside_workers(self, world, tmp_path):
        """A schedule passed to the fleet is installed inside the forked
        worker at spawn: the injected fault fires in the worker process
        and shows up in its reported ``fault_injected`` counters."""
        from repro.robustness.faults import FaultSchedule, FaultSpec

        registry = _registry_with(world, tmp_path)
        schedule = FaultSchedule([
            FaultSpec("serve.infer", rate=1.0, max_faults=1,
                      message="pr9: worker-side inference fault"),
        ], seed=7)
        config = ServerConfig(result_cache_size=0, max_retries=3,
                              retry_backoff_ms=0.5)
        with PredictorFleet(registry, world["dbs"], config, n_workers=1,
                            fault_schedule=schedule,
                            hang_timeout_ms=None) as fleet:
            got = fleet.predict([r.plan for r in world["records_a"]],
                                world["db_a"].name)
            stats = fleet.stats()
        np.testing.assert_array_equal(got, world["expected_a"])
        injected = stats["worker_fault_injected"]
        assert injected.get("fault.injected.serve.infer", 0) >= 1
        assert stats["retries"] >= 1

    def test_process_wide_schedule_inherited_through_fork(self, world,
                                                          tmp_path):
        """A schedule installed process-wide before start() is inherited
        by the forked workers when no explicit schedule overrides it."""
        from repro.robustness import faults
        from repro.robustness.faults import FaultSchedule, FaultSpec

        registry = _registry_with(world, tmp_path)
        schedule = FaultSchedule([
            FaultSpec("serve.infer", rate=1.0, max_faults=1,
                      message="pr9: inherited inference fault"),
        ], seed=8)
        config = ServerConfig(result_cache_size=0, max_retries=3,
                              retry_backoff_ms=0.5)
        fleet = PredictorFleet(registry, world["dbs"], config, n_workers=1,
                               hang_timeout_ms=None)
        faults.install(schedule)
        try:
            fleet.start()
        finally:
            faults.uninstall()
        try:
            got = fleet.predict([r.plan for r in world["records_a"]],
                                world["db_a"].name)
            stats = fleet.stats()
        finally:
            fleet.close()
        np.testing.assert_array_equal(got, world["expected_a"])
        injected = stats["worker_fault_injected"]
        assert injected.get("fault.injected.serve.infer", 0) >= 1
