"""Shared fixtures: small databases and queries with known properties."""

import numpy as np
import pytest

from repro.datagen import generate_database, random_database_spec
from repro.sql import (AggregateSpec, Comparison, JoinEdge, PredOp, Query,
                       conjunction)
from repro.storage import (Column, Database, DataType, ForeignKey, NULL_CODE,
                           Schema, Table)


def build_toy_db():
    """Hand-built 3-table database with known values.

    ``orders (2000 rows) -> customers (100) -> regions (10)``; orders carry
    an amount (correlated with status), customers a category string column.
    """
    rng = np.random.default_rng(1234)

    n_regions = 10
    regions = Table("regions", [
        Column("id", DataType.INT, np.arange(n_regions, dtype=np.float64)),
        Column("pop", DataType.INT,
               rng.integers(100, 10_000, n_regions).astype(np.float64)),
    ])

    n_customers = 100
    cust_region = rng.integers(0, n_regions, n_customers).astype(np.float64)
    categories = ["gold", "silver", "bronze", "none"]
    cust_cat = rng.choice(4, size=n_customers, p=[0.1, 0.2, 0.3, 0.4])
    customers = Table("customers", [
        Column("id", DataType.INT, np.arange(n_customers, dtype=np.float64)),
        Column("region_id", DataType.INT, cust_region),
        Column("category", DataType.CATEGORICAL, cust_cat.astype(np.int64),
               dictionary=categories),
        Column("age", DataType.INT,
               rng.integers(18, 90, n_customers).astype(np.float64)),
    ])

    n_orders = 2000
    cust_of_order = rng.integers(0, n_customers, n_orders).astype(np.float64)
    status_codes = rng.choice(3, size=n_orders, p=[0.7, 0.2, 0.1]).astype(np.int64)
    # amount correlated with status: completed orders are larger.
    amount = rng.normal(50, 10, n_orders) + status_codes * 100.0
    amount[rng.random(n_orders) < 0.05] = np.nan
    orders = Table("orders", [
        Column("id", DataType.INT, np.arange(n_orders, dtype=np.float64)),
        Column("customer_id", DataType.INT, cust_of_order),
        Column("status", DataType.CATEGORICAL, status_codes,
               dictionary=["open", "shipped", "returned"]),
        Column("amount", DataType.FLOAT, amount),
        Column("priority", DataType.INT,
               rng.integers(0, 5, n_orders).astype(np.float64)),
    ])

    schema = Schema(
        ["regions", "customers", "orders"],
        [ForeignKey("orders", "customer_id", "customers", "id"),
         ForeignKey("customers", "region_id", "regions", "id")])
    return Database("toy", schema, [regions, customers, orders])


@pytest.fixture(scope="session")
def toy_db():
    return build_toy_db()


@pytest.fixture(scope="session")
def gen_db():
    """A generated random database (medium complexity) for integration tests."""
    spec = random_database_spec("gen", seed=77, layout="snowflake",
                                base_rows=1500, n_tables=5, complexity=0.7)
    return generate_database(spec)


@pytest.fixture()
def simple_count_query():
    return Query(tables=("orders",), aggregates=(AggregateSpec("count"),))


@pytest.fixture()
def filtered_query():
    predicate = conjunction([
        Comparison("orders", "priority", PredOp.LEQ, 2),
        Comparison("orders", "status", PredOp.EQ, "open"),
    ])
    return Query(tables=("orders",), filters={"orders": predicate},
                 aggregates=(AggregateSpec("count"),))


@pytest.fixture()
def join_query():
    return Query(
        tables=("orders", "customers", "regions"),
        joins=(JoinEdge("orders", "customer_id", "customers", "id"),
               JoinEdge("customers", "region_id", "regions", "id")),
        filters={"customers": Comparison("customers", "category", PredOp.EQ, "gold")},
        aggregates=(AggregateSpec("avg", "orders", "amount"),),
    )
