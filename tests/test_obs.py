"""Observability plane: spans, mergeable metrics, attribution, catalog.

The load-bearing contracts:

* **Passivity** — tracing records timings and annotations, never values:
  every DONE/CACHED delivery under tracing is bit-identical to a direct
  ``predict_runtimes`` call (the serving equivalence contract holds with
  spans on).
* **Determinism** — trace ids derive from (plan digest, submit sequence),
  so two runs of the same request schedule — including a seeded chaos
  schedule — produce the *same span structure* (ids, parentage,
  annotations); only timestamps differ.
* **Exact merge** — histograms use fixed log-bucket boundaries, so
  per-worker histograms merged at the router give the same percentiles a
  single observer would have computed; workers ship snapshot *deltas*,
  so nothing is ever double-counted.
* **No doc drift** — the counter catalog (``repro.obs.catalog``) must
  match both the names the source tree actually fires and the names
  README/ROADMAP document.
"""

import multiprocessing
import re
import threading
from pathlib import Path

import numpy as np
import pytest

from repro import perfstats
from repro.core import TrainingConfig, ZeroShotCostModel, featurize_records
from repro.core.model import ZeroShotModel
from repro.core.training import predict_runtimes
from repro.datagen import generate_database, random_database_spec
from repro.featurization import FeatureScalers, TargetScaler
from repro.obs import (DEFAULT_LATENCY_BOUNDARIES_MS, MetricsRegistry,
                       Tracer, latency_attribution, slo_report,
                       span_structure, trace_id_for)
from repro.obs import catalog
from repro.obs.export import chrome_trace_events
from repro.obs.metrics import snapshot_delta
from repro.obs.trace import TraceContext
from repro.robustness.faults import POINTS, FaultSchedule, FaultSpec
from repro.serving import (LoadConfig, ModelRegistry, PredictorServer,
                           RequestStatus, ServerConfig, run_load)
from repro.workloads import WorkloadConfig, WorkloadGenerator, generate_trace

REPO = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Metrics registry: exact merges, delta shipping, perfstats facade
# ----------------------------------------------------------------------
class TestMetrics:
    def test_histogram_merge_is_exact(self):
        """The router-merged percentile equals the single-observer one."""
        whole = MetricsRegistry()
        parts = [MetricsRegistry() for _ in range(3)]
        rng = np.random.default_rng(0)
        for i, sample in enumerate(rng.uniform(0.01, 5000.0, size=300)):
            whole.observe("serve.latency_ms", float(sample))
            parts[i % 3].observe("serve.latency_ms", float(sample))
        router = MetricsRegistry()
        for part in parts:
            router.merge(part.snapshot())
        merged = router.histogram("serve.latency_ms")
        direct = whole.histogram("serve.latency_ms")
        assert merged.counts == direct.counts
        for p in (50, 90, 95, 99):
            assert merged.percentile(p) == direct.percentile(p)

    def test_histogram_merge_rejects_mismatched_boundaries(self):
        registry = MetricsRegistry()
        h = registry.histogram("x", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError):
            h.merge_counts((1.0, 3.0), [0, 0, 0], 0, 0.0)

    def test_snapshot_delta_never_double_counts(self):
        """Merging every delta == merging the final snapshot once."""
        worker = MetricsRegistry()
        router = MetricsRegistry()
        shipped = None
        for round_ in range(4):
            for _ in range(round_ + 1):
                worker.increment("serve.batch.count")
                worker.observe("serve.batch_ms", float(round_ + 1))
            current = worker.snapshot()
            router.merge(snapshot_delta(current, shipped))
            shipped = current
        assert (router.counter_values(["serve.batch.count"])
                ["serve.batch.count"] == 10)
        assert router.histogram("serve.batch_ms").total == 10

    def test_perfstats_facade(self):
        perfstats.increment("obs_test.facade", 3)
        assert perfstats.counters["obs_test.facade"] == 3
        # Missing names read as zero (defaultdict compatibility).
        assert perfstats.counters["obs_test.never_fired"] == 0
        snap = perfstats.snapshot(["obs_test.facade", "obs_test.never"])
        assert snap == {"obs_test.facade": 3, "obs_test.never": 0}

    def test_perfstats_snapshot_is_race_free(self):
        """Concurrent increments during snapshots lose nothing."""
        perfstats.increment("obs_test.race", 0)
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    perfstats.snapshot(["obs_test.race"])
                    dict(perfstats.counters.items())
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for _ in range(2000):
            perfstats.increment("obs_test.race")
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        assert perfstats.counters["obs_test.race"] == 2000

    def test_default_boundaries_strictly_increasing(self):
        b = DEFAULT_LATENCY_BOUNDARIES_MS
        assert all(y > x for x, y in zip(b, b[1:]))


# ----------------------------------------------------------------------
# Trace primitives: deterministic structure, timing-independence
# ----------------------------------------------------------------------
def _play_schedule(jitter):
    """One synthetic request schedule; ``jitter`` shifts every timestamp."""
    tracer = Tracer()
    for seq, digest in enumerate([b"\x01" * 8, b"\x02" * 8, b"\x01" * 8]):
        ctx = tracer.context_for(digest, seq, db_name="db", priority="normal",
                                 submitted_at=10.0 * seq + jitter)
        start = 10.0 * seq + jitter
        ctx.add_stage("queue", start, start + 1.0 + jitter, "server")
        ctx.add_stage("featurize", start + 1.0, start + 2.0, "server")
        ctx.add_stage("infer", start + 2.0, start + 3.0, "server")
        if seq == 1:
            ctx.annotate("retry")
        ctx.finalize(start + 4.0, status="done")
    return tracer.drain()


class TestTracePrimitives:
    def test_trace_ids_deterministic(self):
        assert trace_id_for(b"abc", 7) == trace_id_for(b"abc", 7)
        assert trace_id_for(b"abc", 7) != trace_id_for(b"abc", 8)
        assert trace_id_for(b"abd", 7) != trace_id_for(b"abc", 7)

    def test_span_structure_is_timing_independent(self):
        """Same schedule, different wall timings -> identical structure."""
        first, second = _play_schedule(0.0), _play_schedule(0.37)
        assert span_structure(first) == span_structure(second)
        # ... but the timestamps genuinely differ.
        assert first[0].start != second[0].start

    def test_repeat_stage_names_get_distinct_span_ids(self):
        ctx = TraceContext("t" * 16, "req")
        ctx.add_stage("infer", 0.0, 1.0, "w")
        ctx.add_stage("infer", 2.0, 3.0, "w")
        ctx.finalize(4.0, status="done")
        # finalize with no tracer attached records nothing; build spans by
        # attaching to a tracer instead.
        tracer = Tracer()
        ctx2 = tracer.context_for(b"x" * 8, 0)
        ctx2.add_stage("infer", 0.0, 1.0, "w")
        ctx2.add_stage("infer", 2.0, 3.0, "w")
        ctx2.finalize(4.0, status="done")
        spans = tracer.drain()
        infer_ids = [s.span_id for s in spans if s.name == "infer"]
        assert len(infer_ids) == 2 and len(set(infer_ids)) == 2

    def test_chrome_trace_events_have_process_metadata(self):
        events = chrome_trace_events(_play_schedule(0.0))
        kinds = {e["ph"] for e in events}
        assert kinds == {"X", "M"}
        assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")

    def test_attribution_and_slo_shapes(self):
        report = latency_attribution(_play_schedule(0.0))
        overall = report["overall"]
        assert overall["requests"] == 3
        assert overall["coverage"] == pytest.approx(1.0)
        assert set(overall["stages"]) == {"queue", "featurize", "infer",
                                          "deliver"}
        assert "db/normal" in report["by_class"]
        slo = slo_report(delivered=99, submitted=100,
                         availability_floor=0.99,
                         latency_p95_ms=10.0, latency_p95_floor_ms=20.0)
        assert slo["availability_burn"] == pytest.approx(1.0)
        assert slo["latency_met"] and slo["met"]


# ----------------------------------------------------------------------
# Served tracing: passivity, sampling, zero cost off, chaos replay
# ----------------------------------------------------------------------
def _make_world():
    db = generate_database(random_database_spec(
        "obs_db", seed=13, layout="snowflake", base_rows=400, n_tables=4,
        complexity=0.6))
    queries = WorkloadGenerator(db, WorkloadConfig(max_joins=2),
                                seed=3).generate(12)
    records = list(generate_trace(db, queries, seed=3))
    dbs = {db.name: db}
    graphs = featurize_records(records, dbs, cards="exact")
    runtimes = np.array([r.runtime_ms for r in records])
    model = ZeroShotModel(hidden_dim=24, seed=0).eval()
    model.to(np.dtype("float32"))
    cost_model = ZeroShotCostModel(model, FeatureScalers().fit(graphs),
                                   TargetScaler().fit(runtimes),
                                   TrainingConfig(hidden_dim=24,
                                                  dtype="float32"))
    expected = predict_runtimes(cost_model.model, graphs,
                                cost_model.feature_scalers,
                                cost_model.target_scaler, batch_cache=False)
    return db, dbs, records, cost_model, {
        id(r.plan): float(v) for r, v in zip(records, expected)}


@pytest.fixture(scope="module")
def world():
    db, dbs, records, model, expected = _make_world()
    return {"db": db, "dbs": dbs, "records": records, "model": model,
            "expected": expected}


def _publish(world, root):
    registry = ModelRegistry(root)
    registry.publish("obs", world["model"], dbs=[world["db"]], default=True)
    return registry


class TestServedTracing:
    def test_traced_values_bit_identical_with_attribution(self, world,
                                                          tmp_path):
        registry = _publish(world, tmp_path)
        requests = [(world["db"].name, r.plan) for r in world["records"]] * 2
        config = ServerConfig(trace=True, result_cache_size=0)
        with PredictorServer(registry, world["dbs"], config) as server:
            report = run_load(server, requests,
                              LoadConfig(n_clients=2, block=True,
                                         trace=True))
        assert report.completed == len(requests)
        for handle in report.handles:
            assert handle.status is RequestStatus.DONE
            assert handle.value == world["expected"][id(handle.plan)]
        overall = report.latency_attribution["overall"]
        assert overall["requests"] == len(requests)
        # The acceptance gate: stages explain >= 95% of end-to-end time.
        assert overall["coverage"] >= 0.95
        assert {"queue", "featurize", "infer"} <= set(overall["stages"])

    def test_zero_cost_when_disabled(self, world, tmp_path):
        registry = _publish(world, tmp_path)
        with PredictorServer(registry, world["dbs"]) as server:
            handle = server.submit(world["records"][0].plan,
                                   world["db"].name, block=True)
            handle.result()
            assert handle.trace is None
            assert server.tracer is None

    def test_sampling_traces_every_nth_request(self, world, tmp_path):
        registry = _publish(world, tmp_path)
        config = ServerConfig(trace=True, trace_sample_every=2,
                              result_cache_size=0)
        with PredictorServer(registry, world["dbs"], config) as server:
            for record in world["records"]:
                server.submit(record.plan, world["db"].name,
                              block=True).result()
            spans = server.tracer.drain()
        roots = [s for s in spans if s.name == "request"]
        assert len(roots) == len(world["records"]) // 2

    def test_cache_hit_annotated(self, world, tmp_path):
        registry = _publish(world, tmp_path)
        config = ServerConfig(trace=True)  # result cache on
        with PredictorServer(registry, world["dbs"], config) as server:
            first = server.submit(world["records"][0].plan,
                                  world["db"].name, block=True)
            first.result()
            second = server.submit(world["records"][0].plan,
                                   world["db"].name, block=True)
            second.result()
            spans = server.tracer.drain()
        assert second.status is RequestStatus.CACHED
        cached_root = [s for s in spans if s.name == "request"
                       and "cache.hit" in s.annotations]
        assert len(cached_root) == 1
        assert cached_root[0].trace_id == second.trace.trace_id

    def _chaos_spans(self, world, root):
        """One traced, seeded chaos run; sequential submission order."""
        registry = _publish(world, root)
        schedule = FaultSchedule([
            FaultSpec("serve.infer", rate=1.0, skip_calls=2, max_faults=2,
                      message="obs chaos"),
        ], seed=5)
        config = ServerConfig(trace=True, result_cache_size=0,
                              max_batch_size=1, max_retries=3,
                              retry_backoff_ms=0.25)
        requests = [(world["db"].name, r.plan) for r in world["records"]]
        with PredictorServer(registry, world["dbs"], config) as server:
            report = run_load(server, requests,
                              LoadConfig(n_clients=1, block=True,
                                         faults=schedule, trace=True))
        assert report.completed == len(requests)
        return report.spans

    def test_chaos_replay_has_identical_span_structure(self, world,
                                                       tmp_path):
        """Same seeded schedule twice -> same ids/parentage/annotations."""
        first = self._chaos_spans(world, tmp_path / "a")
        second = self._chaos_spans(world, tmp_path / "b")
        assert span_structure(first) == span_structure(second)
        # The chaos run must actually have left marks to compare: pinned
        # inference faults force retries (and their backoff stages).
        annotations = {a for s in first for a in s.annotations}
        assert "retry" in annotations
        assert any(s.name == "backoff" for s in first)


# ----------------------------------------------------------------------
# Fleet tracing: worker stages ride the wire, deltas merge exactly
# ----------------------------------------------------------------------
fleet_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet requires fork start method")


@fleet_only
class TestFleetTracing:
    def test_worker_stages_ride_the_wire(self, world, tmp_path):
        """Fleet spans include worker-side stages (recv/coalesce/
        featurize/infer) tagged with the worker's proc label, values stay
        bit-identical, and worker metric deltas merge exactly."""
        from repro.obs.metrics import REGISTRY
        from repro.serving import PredictorFleet

        registry = _publish(world, tmp_path)
        config = ServerConfig(trace=True, result_cache_size=0)
        before = REGISTRY.histogram("serve.latency_ms").total
        with PredictorFleet(registry, world["dbs"], config,
                            n_workers=1) as fleet:
            for record in world["records"]:
                handle = fleet.submit(record.plan, world["db"].name,
                                      block=True)
                assert handle.result(60) == world["expected"][
                    id(record.plan)]
            fleet.stats()  # polls workers -> ships metric deltas
            spans = fleet.tracer.drain()
        names = {s.name for s in spans}
        assert {"queue", "worker.recv", "coalesce", "featurize",
                "infer"} <= names
        worker_procs = {s.proc for s in spans if s.name == "infer"}
        assert worker_procs == {"worker-0"}
        overall = latency_attribution(spans)["overall"]
        assert overall["requests"] == len(world["records"])
        assert overall["coverage"] >= 0.95
        # Delta merge exactness: the router-side histogram grew by
        # exactly one observation per delivered request.
        after = REGISTRY.histogram("serve.latency_ms").total
        assert after - before == len(world["records"])

    def _fleet_chaos_spans(self, world, root):
        from repro.serving import PredictorFleet

        registry = _publish(world, root)
        schedule = FaultSchedule([
            FaultSpec("serve.infer", rate=1.0, skip_calls=2, max_faults=2,
                      message="obs fleet chaos"),
        ], seed=7)
        config = ServerConfig(trace=True, result_cache_size=0,
                              max_batch_size=1, max_retries=3,
                              retry_backoff_ms=0.25)
        with PredictorFleet(registry, world["dbs"], config, n_workers=1,
                            fault_schedule=schedule) as fleet:
            for record in world["records"]:
                fleet.submit(record.plan, world["db"].name,
                             block=True).result(60)
            return fleet.tracer.drain()

    def test_fleet_chaos_replay_identical_structure(self, world, tmp_path):
        """Replaying a seeded worker fault schedule yields the identical
        fleet-wide span structure (the hard acceptance gate)."""
        first = self._fleet_chaos_spans(world, tmp_path / "a")
        second = self._fleet_chaos_spans(world, tmp_path / "b")
        assert span_structure(first) == span_structure(second)
        annotations = {a for s in first for a in s.annotations}
        assert "retry" in annotations


# ----------------------------------------------------------------------
# Catalog <-> code <-> docs cross-checks (no silent drift)
# ----------------------------------------------------------------------
_FAMILY = re.compile(r"^(serve|fleet|controller|fault|store)\.")
_FIRE = re.compile(
    r"(?:perfstats|REGISTRY)\.(increment|observe)\(\s*(f?)\"([^\"]+)\"")
_DYNAMIC = re.compile(r"\{[^{}]*\}|<[a-z_]+>")


def _normalize(name):
    """Collapse f-string exprs and ``<x>`` placeholders to ``*``."""
    return _DYNAMIC.sub("*", name)


def _fired_names():
    counters, histograms = set(), set()
    for path in (REPO / "src").rglob("*.py"):
        for kind, _f, name in _FIRE.findall(path.read_text()):
            (histograms if kind == "observe" else counters).add(
                _normalize(name))
    return counters, histograms


def _covered(doc_name, fired):
    """True when a documented name corresponds to a fired counter."""
    name = _normalize(doc_name)
    if name.endswith(".*"):
        prefix = name[:-1]
        return any(f.startswith(prefix) for f in fired)
    if name in fired:
        return True
    # A concrete doc name may be an instance of a dynamic fired name
    # (``serve.shed.priority.high`` vs ``serve.shed.priority.*``).
    for f in fired:
        if "*" in f:
            regex = re.escape(f).replace(re.escape("*"),
                                         r"[A-Za-z0-9_.\-]+")
            if re.fullmatch(regex, name):
                return True
    return False


class TestCatalog:
    def test_catalog_covers_every_fired_counter(self):
        counters, _ = _fired_names()
        patterns = {_normalize(p) for p, _ in catalog.COUNTERS}
        missing = sorted(n for n in counters
                         if _FAMILY.match(n) and n not in patterns)
        assert not missing, f"fired but not in catalog: {missing}"

    def test_every_catalog_counter_is_fired(self):
        counters, _ = _fired_names()
        stale = sorted(p for p, _ in catalog.COUNTERS
                       if _normalize(p) not in counters)
        assert not stale, f"in catalog but never fired: {stale}"

    def test_every_catalog_histogram_is_observed(self):
        _, histograms = _fired_names()
        stale = sorted(n for n, _ in catalog.HISTOGRAMS
                       if _normalize(n) not in histograms)
        assert not stale, f"in catalog but never observed: {stale}"

    def test_documented_counters_match_fired_names(self):
        """Every ``serve./fleet./controller./fault./store.`` name README
        and ROADMAP document is fired by the code (fault injection point
        names are documented separately and excluded)."""
        counters, histograms = _fired_names()
        fired = counters | histograms
        text = ((REPO / "README.md").read_text()
                + (REPO / "ROADMAP.md").read_text())
        missing = []
        for token in re.findall(r"`([^`\s/()]+)`", text):
            if not _FAMILY.match(token) or token.endswith(".py"):
                continue
            if token in POINTS:
                continue
            for name in catalog.expand_braces(token):
                if not _covered(name, fired):
                    missing.append(name)
        assert not missing, f"documented but never fired: {sorted(missing)}"

    def test_markdown_table_matches_readme(self):
        """The README's generated catalog table is in sync."""
        readme = (REPO / "README.md").read_text()
        for line in catalog.markdown_table().splitlines():
            if line.startswith("| `"):
                assert line in readme, f"README catalog missing: {line}"
