"""repro — reproduction of "Zero-Shot Cost Models for Out-of-the-box Learned
Cost Prediction" (Hilprecht & Binnig, VLDB 2022).

The package implements the paper's zero-shot cost model together with every
substrate it depends on: a numpy autograd neural-network framework, an
in-memory relational engine with a Postgres-style optimizer and a runtime
simulator, data-driven cardinality estimation, the workload-driven baselines
(E2E, MSCN, flattened plans + GBDT), the 20-database benchmark with its
workload generator, and the distributed/physical-design extensions.
"""

__version__ = "1.0.0"

__all__ = [
    "nn", "storage", "datagen", "sql", "optimizer", "executor",
    "workloads", "cardest", "featurization", "core", "baselines",
    "ml", "robustness", "distributed", "design", "bench",
]
