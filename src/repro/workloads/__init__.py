"""Workload generation and executed traces (the benchmark's Section 6.3)."""

from .generator import WorkloadConfig, WorkloadGenerator
from .trace import (Trace, TraceRecord, generate_trace,
                    generate_trace_reference, TIMEOUT_MS)
from .imdb_workloads import IMDB_WORKLOADS, imdb_workload, imdb_workload_names

__all__ = [
    "WorkloadConfig", "WorkloadGenerator",
    "Trace", "TraceRecord", "generate_trace", "generate_trace_reference",
    "TIMEOUT_MS",
    "IMDB_WORKLOADS", "imdb_workload", "imdb_workload_names",
]
