"""Workload traces: executed queries with plans, cardinalities and runtimes.

A trace is the unit of training data in the paper: for each query it stores
the physical plan (with the optimizer's estimates *and* the actual
cardinalities) plus the measured runtime.  Queries above the timeout are
excluded, as in Section 6.3 (30 s cap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import perfstats
from ..executor import (execute_plan, execute_trace, simulate_runtime_ms,
                        simulate_runtime_ms_batch)
from ..optimizer import PlannerConfig, plan_query

__all__ = ["TraceRecord", "Trace", "generate_trace",
           "generate_trace_reference", "TIMEOUT_MS"]

TIMEOUT_MS = 30_000.0


@dataclass
class TraceRecord:
    """One executed query."""

    query: object
    plan: object              # PlanNode tree, est_* and true_rows annotated
    runtime_ms: float
    db_name: str
    indexes: tuple = ()       # physical design at execution time

    @property
    def n_joins(self):
        return self.query.n_joins


@dataclass
class Trace:
    """All executed queries of one workload on one database."""

    db_name: str
    records: list = field(default_factory=list)
    excluded_timeouts: int = 0

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return Trace(self.db_name, self.records[item], self.excluded_timeouts)
        return self.records[item]

    def runtimes(self):
        return np.array([r.runtime_ms for r in self.records])

    def subset(self, indices):
        return Trace(self.db_name, [self.records[i] for i in indices])

    def filter(self, keep):
        """Trace with only the records for which ``keep(record)`` is true."""
        return Trace(self.db_name, [r for r in self.records if keep(r)])

    def split(self, train_fraction=0.8, seed=0):
        """Shuffled (train, test) split."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.records))
        cut = int(len(order) * train_fraction)
        return self.subset(order[:cut]), self.subset(order[cut:])

    def sample(self, n, seed=0):
        rng = np.random.default_rng(seed)
        n = min(n, len(self.records))
        return self.subset(rng.choice(len(self.records), size=n, replace=False))

    def total_execution_hours(self):
        """Wall-clock hours the workload 'took' (Fig. 6 lower-right panel)."""
        return float(self.runtimes().sum() / 3.6e6)


def _random_index_action(db, rng, created, max_indexes=6):
    """Index-mode physical design churn: randomly create/drop indexes."""
    if created and rng.random() < 0.25:
        key = created.pop(int(rng.integers(len(created))))
        db.drop_index(*key)
        return
    if len(created) >= max_indexes:
        return
    candidates = []
    for fk in db.schema.foreign_keys:
        candidates.append((fk.child_table, fk.child_column))
    for table_name in db.schema.table_names:
        for col_name, col in db.table(table_name).columns.items():
            if col.dtype.is_numeric and col_name != "id":
                candidates.append((table_name, col_name))
    if not candidates:
        return
    key = candidates[int(rng.integers(len(candidates)))]
    if db.index_on(*key) is None:
        db.create_index(*key)
        created.append(key)


def generate_trace(db, queries, planner_config=None, hardware=None, seed=0,
                   timeout_ms=TIMEOUT_MS, index_mode=False):
    """Plan, execute and time every query; returns a :class:`Trace`.

    With ``index_mode=True`` random indexes are created/dropped throughout
    the run (the benchmark's index workload): successive queries observe
    different physical designs.  Any indexes created are removed afterwards.

    Execution and timing run through the stage-0 corpus engine: plans are
    planned sequentially (physical-design churn observed in order, exactly
    as the per-query reference), then the whole trace executes against one
    :class:`~repro.executor.TraceExecutionContext` (shared scan memos and
    join key indexes) and all latencies are simulated in one batch.  The
    resulting trace — records, runtimes, timeout exclusions — is
    bit-identical to :func:`generate_trace_reference`.
    """
    planner_config = planner_config or PlannerConfig()
    rng = np.random.default_rng(seed)
    created_indexes = []
    trace = Trace(db_name=db.name)
    plans, index_snapshots = [], []
    perfstats.increment("trace.generate.batched")
    try:
        for i, query in enumerate(queries):
            if index_mode and i % 5 == 0:
                _random_index_action(db, rng, created_indexes)
            plans.append(plan_query(db, query, config=planner_config))
            # The design each query executed under (execution itself never
            # changes it, so the snapshot at plan time is the one the
            # reference records after execution).
            index_snapshots.append(tuple(sorted(db.indexes)))
        execute_trace(db, plans)
        runtimes = simulate_runtime_ms_batch(db, plans, hardware=hardware,
                                             seed=seed)
        for query, plan, runtime, snapshot in zip(queries, plans, runtimes,
                                                  index_snapshots):
            runtime = float(runtime)
            if runtime > timeout_ms:
                trace.excluded_timeouts += 1
                continue
            trace.records.append(TraceRecord(
                query=query, plan=plan, runtime_ms=runtime, db_name=db.name,
                indexes=snapshot))
    finally:
        if index_mode:
            for key in created_indexes:
                db.drop_index(*key)
    return trace


def generate_trace_reference(db, queries, planner_config=None, hardware=None,
                             seed=0, timeout_ms=TIMEOUT_MS, index_mode=False):
    """Original per-query plan→execute→simulate loop (executable spec).

    The corpus engine's :func:`generate_trace` must reproduce this
    bit-for-bit: same records, same runtimes, same timeout exclusions, same
    index churn (the RNG stream is consumed identically).
    """
    planner_config = planner_config or PlannerConfig()
    rng = np.random.default_rng(seed)
    created_indexes = []
    trace = Trace(db_name=db.name)
    perfstats.increment("trace.generate.reference")
    try:
        for i, query in enumerate(queries):
            if index_mode and i % 5 == 0:
                _random_index_action(db, rng, created_indexes)
            plan = plan_query(db, query, config=planner_config)
            execute_plan(db, plan)
            runtime = simulate_runtime_ms(db, plan, hardware=hardware, seed=seed)
            if runtime > timeout_ms:
                trace.excluded_timeouts += 1
                continue
            trace.records.append(TraceRecord(
                query=query, plan=plan, runtime_ms=runtime, db_name=db.name,
                indexes=tuple(sorted(db.indexes))))
    finally:
        if index_mode:
            for key in created_indexes:
                db.drop_index(*key)
    return trace
