"""The named IMDB evaluation workloads of the paper.

``scale`` / ``synthetic`` / ``job_light`` are standard-mode SPAJ workloads of
increasing join depth; ``job_full`` is the complex-mode workload (string
patterns, disjunctions, IN, NULL tests) standing in for the full Join Order
Benchmark.  Sizes follow the originals (JOB-light: 70 queries, JOB: 113).
"""

from __future__ import annotations

from .generator import WorkloadConfig, WorkloadGenerator

__all__ = ["IMDB_WORKLOADS", "imdb_workload", "imdb_workload_names"]

IMDB_WORKLOADS = {
    "scale": dict(mode="standard", min_joins=0, max_joins=2, n=150, seed=501),
    "synthetic": dict(mode="standard", min_joins=0, max_joins=4, n=150, seed=502),
    "job_light": dict(mode="standard", min_joins=1, max_joins=4, n=70, seed=503),
    "job_full": dict(mode="complex", min_joins=2, max_joins=6, n=113, seed=504),
}


def imdb_workload_names():
    return list(IMDB_WORKLOADS)


def imdb_workload(db, name, n=None):
    """Instantiate a named evaluation workload against ``db``.

    The database is usually the benchmark's ``imdb``, but the same workload
    shapes can be generated against any database (used by tests).
    """
    try:
        spec = dict(IMDB_WORKLOADS[name])
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; "
                       f"choose from {imdb_workload_names()}") from None
    count = n if n is not None else spec["n"]
    config = WorkloadConfig(mode=spec["mode"], min_joins=spec["min_joins"],
                            max_joins=spec["max_joins"])
    generator = WorkloadGenerator(db, config, seed=spec["seed"])
    return generator.generate(count)
