"""Workload generation (Section 6.3).

Three modes, mirroring the paper's benchmark generator:

* ``standard`` — Select-Project-Aggregate-Join queries with conjunctive
  predicates on numeric and categorical columns (Kipf-et-al style),
* ``complex`` — adds disjunctions, string LIKE patterns, IS (NOT) NULL and
  IN operators (JOB-level complexity),
* ``index`` — standard queries; the trace generator creates random indexes
  while executing the workload (varying physical designs).

Literals are sampled from the actual data so selectivities span the whole
range, which is what makes cardinality estimation non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..sql import (AggregateSpec, Comparison, JoinEdge, PredOp, Query,
                   conjunction, disjunction)
from ..storage import DataType

__all__ = ["WorkloadConfig", "WorkloadGenerator"]

MODES = ("standard", "complex", "index")


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the workload generator."""

    mode: str = "standard"
    min_joins: int = 0
    max_joins: int = 4
    filter_table_prob: float = 0.75
    max_filters_per_table: int = 3
    extra_agg_prob: float = 0.5
    group_by_prob: float = 0.12
    order_by_prob: float = 0.08
    disjunction_prob: float = 0.25    # complex mode only
    string_pred_prob: float = 0.35    # complex mode only
    null_pred_prob: float = 0.15      # complex mode only
    in_pred_prob: float = 0.25        # complex mode only

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"unknown workload mode {self.mode!r}")
        if self.min_joins > self.max_joins:
            raise ValueError("min_joins must be <= max_joins")

    def with_joins(self, min_joins, max_joins):
        return replace(self, min_joins=min_joins, max_joins=max_joins)


class WorkloadGenerator:
    """Generates random logical queries against one database."""

    def __init__(self, db, config=None, seed=0):
        self.db = db
        self.config = config or WorkloadConfig()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Literal sampling
    # ------------------------------------------------------------------
    def _sample_value(self, table, column):
        col = self.db.column(table, column)
        valid = col.non_null()
        if valid.size == 0:
            return None
        value = valid[self._rng.integers(valid.size)]
        if col.dictionary is not None:
            return col.dictionary[int(value)]
        return float(value)

    def _numeric_predicate(self, table, column):
        value = self._sample_value(table, column)
        if value is None:
            return None
        op = PredOp(self._rng.choice(["=", "<", "<=", ">", ">="]))
        return Comparison(table, column, op, value)

    def _categorical_predicate(self, table, column):
        value = self._sample_value(table, column)
        if value is None:
            return None
        return Comparison(table, column, PredOp.EQ, value)

    def _in_predicate(self, table, column):
        col = self.db.column(table, column)
        n_values = int(self._rng.integers(2, 9))
        values = [self._sample_value(table, column) for _ in range(n_values)]
        values = sorted({v for v in values if v is not None},
                        key=lambda v: str(v))
        if len(values) < 2:
            return None
        if col.dictionary is None:
            values = [float(v) for v in values]
        return Comparison(table, column, PredOp.IN, values)

    def _like_predicate(self, table, column):
        value = self._sample_value(table, column)
        if not isinstance(value, str) or len(value) < 2:
            return None
        # Build a pattern from a random substring of a real value.
        start = int(self._rng.integers(0, max(len(value) - 1, 1)))
        length = int(self._rng.integers(1, min(4, len(value) - start) + 1))
        fragment = value[start:start + length]
        style = self._rng.random()
        if style < 0.4:
            pattern = f"%{fragment}%"
        elif style < 0.7:
            pattern = f"{value[:1]}%{fragment}%"
        else:
            pattern = f"%{fragment}"
        op = PredOp.LIKE if self._rng.random() < 0.8 else PredOp.NOT_LIKE
        return Comparison(table, column, op, pattern)

    def _null_predicate(self, table, column):
        op = PredOp.IS_NULL if self._rng.random() < 0.5 else PredOp.IS_NOT_NULL
        return Comparison(table, column, op)

    # ------------------------------------------------------------------
    # Predicate assembly
    # ------------------------------------------------------------------
    def _payload_columns(self, table):
        cols = []
        for name, col in self.db.table(table).columns.items():
            if name == "id" or name.endswith("_id"):
                continue
            cols.append((name, col))
        return cols

    def _single_predicate(self, table, name, col):
        cfg = self.config
        complex_mode = cfg.mode == "complex"
        if complex_mode and col.null_frac > 0 and self._rng.random() < cfg.null_pred_prob:
            return self._null_predicate(table, name)
        if col.dtype.is_dictionary:
            if complex_mode and self._rng.random() < cfg.string_pred_prob:
                return self._like_predicate(table, name)
            if complex_mode and self._rng.random() < cfg.in_pred_prob:
                return self._in_predicate(table, name)
            return self._categorical_predicate(table, name)
        if complex_mode and self._rng.random() < cfg.in_pred_prob / 2:
            return self._in_predicate(table, name)
        return self._numeric_predicate(table, name)

    def _table_filter(self, table):
        cfg = self.config
        if self._rng.random() > cfg.filter_table_prob:
            return None
        candidates = self._payload_columns(table)
        if not candidates:
            return None
        n_predicates = int(self._rng.integers(1, cfg.max_filters_per_table + 1))
        predicates = []
        for _ in range(n_predicates):
            name, col = candidates[int(self._rng.integers(len(candidates)))]
            pred = self._single_predicate(table, name, col)
            if pred is not None:
                predicates.append(pred)
        if not predicates:
            return None
        if (cfg.mode == "complex" and len(predicates) >= 2
                and self._rng.random() < cfg.disjunction_prob):
            return disjunction(predicates)
        return conjunction(predicates)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def _aggregates(self, tables):
        aggs = [AggregateSpec("count")]
        if self._rng.random() < self.config.extra_agg_prob:
            numeric = [(t, name) for t in tables
                       for name, col in self._payload_columns(t)
                       if col.dtype.is_numeric]
            if numeric:
                n_extra = int(self._rng.integers(1, 3))
                for _ in range(n_extra):
                    t, c = numeric[int(self._rng.integers(len(numeric)))]
                    func = str(self._rng.choice(["sum", "avg", "min", "max"]))
                    aggs.append(AggregateSpec(func, t, c))
        return tuple(aggs)

    def _group_by(self, tables):
        if self._rng.random() > self.config.group_by_prob:
            return ()
        candidates = [(t, name) for t in tables
                      for name, col in self._payload_columns(t)
                      if col.dtype == DataType.CATEGORICAL
                      or (col.dtype == DataType.INT and col.n_distinct() <= 50)]
        if not candidates:
            return ()
        return (candidates[int(self._rng.integers(len(candidates)))],)

    # ------------------------------------------------------------------
    def generate_query(self):
        cfg = self.config
        table_names = self.db.schema.table_names
        start = table_names[int(self._rng.integers(len(table_names)))]
        target_joins = int(self._rng.integers(cfg.min_joins, cfg.max_joins + 1))
        tables, fks = self.db.schema.connected_subsets(
            start, target_joins + 1, self._rng)
        joins = tuple(JoinEdge.from_foreign_key(fk) for fk in fks)

        filters = {}
        for table in tables:
            predicate = self._table_filter(table)
            if predicate is not None:
                filters[table] = predicate

        group_by = self._group_by(tables)
        order_by = group_by if (group_by and self._rng.random()
                                < cfg.order_by_prob / cfg.group_by_prob) else ()
        return Query(tables=tuple(tables), joins=joins, filters=filters,
                     aggregates=self._aggregates(tables),
                     group_by=group_by, order_by=order_by)

    def generate(self, n):
        """Generate ``n`` queries (a workload)."""
        return [self.generate_query() for _ in range(n)]
