"""In-process micro-batching predictor server.

Clients — any number of threads — submit plans for any registered database
and get a :class:`PredictionRequest` handle back immediately.  A single
batcher thread coalesces queued requests into micro-batches on a
deadline/size trigger (whichever fires first), routes every request to a
compatible model deployment by database fingerprint, featurizes each batch
through the shared vectorized pipeline and predicts through
``predict_runtimes`` — i.e. the PR-1 graph-free ``forward_inference`` fast
path.  The design follows what learned-cost-model serving needs in systems
like BRAD: multi-model routing, bounded latency, bounded memory.

Guarantees:

* **Bit-identical predictions** — for any request mix, the value a request
  receives equals a direct ``predict_runtimes`` call on the same model for
  that plan, bit for bit, regardless of which other requests shared its
  micro-batch.  This rests on the row-stable inference kernels
  (:func:`repro.nn.row_stable_matmul`): per-plan outputs are a pure
  function of the plan, so micro-batch composition — and therefore
  scheduling nondeterminism — cannot leak into results, and cached values
  stay exact under every later composition.
* **Repeat plans are cache hits** — a bounded result cache keyed on
  ``(checkpoint, plan fingerprint)`` (the PR-2 content fingerprints, so
  equal-but-distinct plan objects hit) answers repeats without touching
  the queue.  Keys include the serving checkpoint, so a hot-swap can never
  serve a stale model's value.
* **Zero-downtime hot-swap** — the batcher compares the registry's
  generation counter before each batch (one int read) and re-resolves its
  routes only when the registry changed; in-flight batches finish on the
  model they started with.
* **Bounded queue, explicit shedding** — when the queue is full, a
  non-blocking submit returns a request in ``SHED`` state instead of
  queueing unboundedly (``block=True`` opts into backpressure instead).

Observability: ``serve.batch.*`` / ``serve.cache.*`` / ``serve.shed.*`` /
``serve.swap.*`` perfstats counters, plus :meth:`PredictorServer.stats`
(batch-size histogram, queue high-water mark, per-status request counts).
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict, deque, namedtuple
from dataclasses import dataclass
from enum import Enum

import numpy as np

from .. import perfstats
from ..core.api import EstimatorCache, featurize_records
from ..core.training import predict_runtimes
from ..featurization import (BatchCache, FeaturizationCache, database_digest,
                             plan_fingerprint)

__all__ = ["PredictorServer", "ServerConfig", "PredictionRequest",
           "RequestStatus", "RequestShedError", "RoutingError",
           "ServingRecord"]

# The unit of serving work: featurize_records only reads .db_name and .plan,
# so this lightweight record stands in for an executed TraceRecord.
ServingRecord = namedtuple("ServingRecord", ["db_name", "plan"])


class RequestStatus(Enum):
    PENDING = "pending"
    DONE = "done"        # predicted by a micro-batch
    CACHED = "cached"    # answered from the result cache
    SHED = "shed"        # rejected by admission control
    FAILED = "failed"    # routing/featurization/prediction error


class RequestShedError(RuntimeError):
    """The bounded queue was full and the request was shed."""


class RoutingError(RuntimeError):
    """No deployment serves the request's database and there is no default."""


class PredictionRequest:
    """Client-side handle for one submitted plan."""

    __slots__ = ("db_name", "plan", "status", "value", "error", "served_by",
                 "submitted_at", "completed_at", "_event")

    def __init__(self, db_name, plan):
        self.db_name = db_name
        self.plan = plan
        self.status = RequestStatus.PENDING
        self.value = None
        self.error = None
        self.served_by = None  # (model name, version) that produced value
        self.submitted_at = time.perf_counter()
        self.completed_at = None
        self._event = threading.Event()

    # -- completion (server side) --------------------------------------
    def _finish(self, status, value=None, error=None, served_by=None):
        self.value = value
        self.error = error
        self.served_by = served_by
        self.completed_at = time.perf_counter()
        self.status = status
        self._event.set()

    # -- client side ----------------------------------------------------
    def done(self):
        return self._event.is_set()

    def wait(self, timeout=None):
        return self._event.wait(timeout)

    def result(self, timeout=None):
        """The predicted runtime (ms); raises for shed/failed requests."""
        if not self._event.wait(timeout):
            raise TimeoutError("prediction still pending")
        if self.status is RequestStatus.SHED:
            raise RequestShedError(
                f"request for {self.db_name!r} was shed (queue full)")
        if self.status is RequestStatus.FAILED:
            raise self.error
        return self.value

    @property
    def latency_ms(self):
        if self.completed_at is None:
            return None
        return (self.completed_at - self.submitted_at) * 1e3

    def __repr__(self):
        return (f"PredictionRequest({self.db_name!r}, "
                f"status={self.status.value})")


@dataclass(frozen=True)
class ServerConfig:
    """Micro-batching, admission-control and routing knobs."""

    max_batch_size: int = 64     # size trigger: dispatch when this many queue
    max_delay_ms: float = 2.0    # deadline trigger: oldest request's max wait
    queue_depth: int = 1024      # admission control: shed beyond this
    result_cache_size: int = 4096  # 0 disables the result cache
    predict_batch_size: int = 256  # inference chunking inside one batch
    cards: str = "exact"         # cardinality source for featurization
    model_name: str | None = None  # pin every database to one model name


class _Route:
    """A database's resolved deployment with the loaded model."""

    __slots__ = ("deployment", "model")

    def __init__(self, deployment, model):
        self.deployment = deployment
        self.model = model

    @property
    def checkpoint_key(self):
        return self.deployment.checkpoint_key

    @property
    def served_by(self):
        return (self.deployment.name, self.deployment.version)


class PredictorServer:
    """Thread-based online prediction service over a model registry.

    ``dbs`` maps database names to :class:`~repro.storage.Database` objects
    the server accepts requests for.  Use as a context manager (starts and
    stops the batcher thread)::

        with PredictorServer(registry, {"imdb": db}) as server:
            request = server.submit(plan, "imdb")
            runtime_ms = request.result()
    """

    def __init__(self, registry, dbs, config=None, estimator_cache=None):
        self.registry = registry
        self.config = config or ServerConfig()
        self._dbs = dict(dbs)
        self._db_digests = {name: database_digest(db).hex()
                            for name, db in self._dbs.items()}
        self._db_fingerprints = {name: db.fingerprint()
                                 for name, db in self._dbs.items()}
        # One lock guards the queue, the result cache, the digest memo, the
        # routes and the counters.  Featurization and inference run outside
        # it; the featurization/batch caches are touched only by the
        # batcher thread, so they need no locking of their own.
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._queue = deque()
        self._result_cache = OrderedDict()
        self._digest_memo = OrderedDict()  # id(plan) -> (plan, digest)
        self._feat_cache = FeaturizationCache()
        self._batch_cache = BatchCache(max_entries=64)
        self._estimator_cache = estimator_cache or EstimatorCache()
        self._running = False
        self._accepting = True  # False only after stop(); start() restores
        self._thread = None
        self._counts = Counter()
        self._batch_sizes = Counter()
        self._queue_high_water = 0
        self._routes = {}
        self._seen_generation = None
        self._resolve_routes()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._running = True
        self._accepting = True
        self._thread = threading.Thread(target=self._serve_loop,
                                        name="repro-predictor", daemon=True)
        self._thread.start()
        return self

    def stop(self):
        """Drain the queue, stop the batcher, shed late submissions.

        Requests already queued are processed before the batcher exits;
        submissions from this point on (including blocked backpressure
        waiters) are shed instead of sitting unprocessed forever.
        :meth:`start` re-opens admission.
        """
        if self._thread is None:
            return
        with self._lock:
            self._running = False
            self._accepting = False
            self._not_empty.notify_all()
            self._not_full.notify_all()
        self._thread.join()
        self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, plan, db_name, block=False, timeout=None):
        """Submit one plan; returns a :class:`PredictionRequest` handle.

        Repeat plans (by content fingerprint, under the currently routed
        checkpoint) complete immediately from the result cache.  When the
        bounded queue is full, ``block=False`` sheds the request
        (``status == SHED``); ``block=True`` waits for space
        (backpressure), shedding only once ``timeout`` (a total bound, not
        per-wakeup) elapses.  Submissions after :meth:`stop` are shed
        (nothing would ever process them); submissions *before*
        :meth:`start` queue up normally.
        """
        if db_name not in self._dbs:
            raise KeyError(f"database {db_name!r} is not registered with "
                           "this server")
        self._maybe_swap()
        request = PredictionRequest(db_name, plan)
        # The content hash is a pure function of the plan: compute it
        # outside the lock so concurrent first-seen submits don't serialize
        # behind each other's O(plan) digest walks.
        digest = self._plan_digest(db_name, plan)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._lock:
            self._counts["requests"] += 1
            route = self._routes.get(db_name)
            if route is None:
                self._counts["failed"] += 1
                request._finish(RequestStatus.FAILED, error=RoutingError(
                    f"no deployment serves {db_name!r} and the registry "
                    "has no default model"))
                return request
            value = self._cache_get_locked((route.checkpoint_key, digest))
            if value is not None:
                self._counts["cached"] += 1
                perfstats.increment("serve.cache.hit")
                request._finish(RequestStatus.CACHED, value=value,
                                served_by=route.served_by)
                return request
            while (self._accepting
                   and len(self._queue) >= self.config.queue_depth):
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if (not block
                        or (remaining is not None and remaining <= 0)
                        or not self._not_full.wait(remaining)):
                    break
            if (not self._accepting
                    or len(self._queue) >= self.config.queue_depth):
                self._counts["shed"] += 1
                perfstats.increment("serve.shed.count")
                request._finish(RequestStatus.SHED)
                return request
            self._queue.append(request)
            self._queue_high_water = max(self._queue_high_water,
                                         len(self._queue))
            self._not_empty.notify()
        return request

    def submit_many(self, plans, db_name, block=False, timeout=None):
        return [self.submit(plan, db_name, block=block, timeout=timeout)
                for plan in plans]

    def predict(self, plans, db_name, timeout=None):
        """Blocking bulk prediction (backpressure, never sheds).

        Returns runtimes (ms) aligned with ``plans``; raises if any request
        failed.
        """
        requests = self.submit_many(plans, db_name, block=True,
                                    timeout=timeout)
        return np.array([request.result(timeout) for request in requests])

    def refresh(self):
        """Force re-resolution of routes from the registry (e.g. after a
        cross-process registry change plus ``registry.refresh()``)."""
        self._resolve_routes()

    # ------------------------------------------------------------------
    # Batcher
    # ------------------------------------------------------------------
    def _serve_loop(self):
        max_delay_s = self.config.max_delay_ms / 1e3
        while True:
            with self._lock:
                while not self._queue and self._running:
                    self._not_empty.wait()
                if not self._queue:
                    break  # stopped and drained
                # Deadline/size trigger: dispatch when the oldest request
                # has waited max_delay_ms or max_batch_size are queued.
                deadline = self._queue[0].submitted_at + max_delay_s
                while (self._running
                       and len(self._queue) < self.config.max_batch_size):
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._not_empty.wait(remaining)
                count = min(len(self._queue), self.config.max_batch_size)
                batch = [self._queue.popleft() for _ in range(count)]
                self._not_full.notify_all()
            try:
                self._process_batch(batch)
            except Exception as exc:  # noqa: BLE001 — the loop must survive
                # A surprise error (e.g. a registry mutated concurrently
                # with resolution) fails this batch's requests instead of
                # killing the batcher and stranding every future request.
                with self._lock:
                    self._counts["failed"] += sum(
                        1 for request in batch if not request.done())
                for request in batch:
                    if not request.done():
                        request._finish(RequestStatus.FAILED, error=exc)

    def _process_batch(self, batch):
        self._maybe_swap()
        perfstats.increment("serve.batch.count")
        perfstats.increment("serve.batch.requests", len(batch))
        self._batch_sizes[len(batch)] += 1
        by_db = {}
        for request in batch:
            by_db.setdefault(request.db_name, []).append(request)
        for db_name, requests in by_db.items():
            self._process_group(db_name, requests)

    def _process_group(self, db_name, requests):
        with self._lock:
            route = self._routes.get(db_name)
        if route is None:
            error = RoutingError(f"no deployment serves {db_name!r}")
            with self._lock:
                self._counts["failed"] += len(requests)
            for request in requests:
                request._finish(RequestStatus.FAILED, error=error)
            return
        digests = [self._plan_digest(db_name, request.plan)
                   for request in requests]
        # Late cache probe: a duplicate that was queued before its twin's
        # batch completed is answered here instead of re-predicted.
        pending, keys = [], []
        with self._lock:
            for request, digest in zip(requests, digests):
                key = (route.checkpoint_key, digest)
                value = self._cache_get_locked(key)
                if value is not None:
                    self._counts["cached"] += 1
                    perfstats.increment("serve.cache.hit")
                    request._finish(RequestStatus.CACHED, value=value,
                                    served_by=route.served_by)
                else:
                    pending.append(request)
                    keys.append(key)
        if not pending:
            return
        perfstats.increment("serve.cache.miss", len(pending))
        model = route.model
        try:
            records = [ServingRecord(db_name, request.plan)
                       for request in pending]
            graphs = featurize_records(
                records, self._dbs, cards=self.config.cards,
                estimator_cache=self._estimator_cache,
                feat_cache=self._feat_cache)
            values = predict_runtimes(
                model.model, graphs, model.feature_scalers,
                model.target_scaler,
                batch_size=self.config.predict_batch_size,
                batch_cache=self._batch_cache)
        except Exception as exc:  # featurization/prediction error
            with self._lock:
                self._counts["failed"] += len(pending)
            for request in pending:
                request._finish(RequestStatus.FAILED, error=exc)
            return
        with self._lock:
            self._counts["completed"] += len(pending)
            for key, value in zip(keys, values):
                self._cache_put_locked(key, float(value))
        for request, value in zip(pending, values):
            request._finish(RequestStatus.DONE, value=float(value),
                            served_by=route.served_by)

    # ------------------------------------------------------------------
    # Routing / hot-swap
    # ------------------------------------------------------------------
    def _maybe_swap(self):
        if self.registry.generation != self._seen_generation:
            self._resolve_routes()

    def _resolve_routes(self):
        """Re-resolve every database's deployment from the registry.

        Runs between batches (or at submit time); in-flight work keeps the
        route object it started with, so a promote/rollback is a
        zero-downtime swap.
        """
        generation = self.registry.generation
        routes = {}
        for db_name, digest in self._db_digests.items():
            if self.config.model_name is not None:
                deployment = self.registry.active(self.config.model_name)
            else:
                deployment = self.registry.route(digest)
            if deployment is None:
                routes[db_name] = None
                continue
            model = self.registry.load(deployment=deployment)
            routes[db_name] = _Route(deployment, model)
        with self._lock:
            for db_name, route in routes.items():
                previous = self._routes.get(db_name)
                if (previous is not None and route is not None
                        and previous.checkpoint_key != route.checkpoint_key):
                    self._counts["swaps"] += 1
                    perfstats.increment("serve.swap.count")
            self._routes = routes
            self._seen_generation = generation

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def _plan_digest(self, db_name, plan):
        """Memoized content fingerprint of a plan object (self-locking).

        Memo keys carry the database name: the digest hashes the
        database's fingerprint, so the same plan object submitted against
        two databases must produce two distinct digests (and therefore two
        result-cache keys).  The hash itself — an O(plan) tree walk — runs
        outside the lock so first-seen plans from concurrent clients don't
        serialize behind each other; only the memo probes take it.
        """
        memo_key = (id(plan), db_name)
        with self._lock:
            entry = self._digest_memo.get(memo_key)
            if entry is not None and entry[0] is plan:
                return entry[1]
        digest = plan_fingerprint(
            self._dbs[db_name], plan, self.config.cards,
            db_fingerprint=self._db_fingerprints[db_name])
        with self._lock:
            self._digest_memo[memo_key] = (plan, digest)
            while len(self._digest_memo) > 4 * max(
                    self.config.result_cache_size, 1024):
                self._digest_memo.popitem(last=False)
        return digest

    def _cache_get_locked(self, key):
        if self.config.result_cache_size <= 0:
            return None
        value = self._result_cache.get(key)
        if value is not None:
            self._result_cache.move_to_end(key)
        return value

    def _cache_put_locked(self, key, value):
        if self.config.result_cache_size <= 0:
            return
        self._result_cache[key] = value
        while len(self._result_cache) > self.config.result_cache_size:
            self._result_cache.popitem(last=False)

    # ------------------------------------------------------------------
    def stats(self):
        """Request/batch/cache/swap counters and the batch-size histogram."""
        with self._lock:
            batches = sum(self._batch_sizes.values())
            sizes = sum(size * count
                        for size, count in self._batch_sizes.items())
            return {
                "requests": self._counts["requests"],
                "completed": self._counts["completed"],
                "cached": self._counts["cached"],
                "shed": self._counts["shed"],
                "failed": self._counts["failed"],
                "swaps": self._counts["swaps"],
                "batches": batches,
                "batch_size_hist": dict(sorted(self._batch_sizes.items())),
                "mean_batch_size": (sizes / batches) if batches else 0.0,
                "queue_high_water": self._queue_high_water,
                "result_cache_entries": len(self._result_cache),
            }

    def __repr__(self):
        return (f"PredictorServer(dbs={sorted(self._dbs)}, "
                f"max_batch={self.config.max_batch_size}, "
                f"running={self._thread is not None})")
