"""In-process micro-batching predictor server, hardened for chaos.

Clients — any number of threads — submit plans for any registered database
and get a :class:`PredictionRequest` handle back immediately.  A single
*supervised* batcher thread coalesces queued requests into micro-batches on
a deadline/size trigger (whichever fires first), routes every request to a
compatible model deployment by database fingerprint, featurizes each batch
through the shared vectorized pipeline and predicts through
``predict_runtimes`` — i.e. the PR-1 graph-free ``forward_inference`` fast
path.  The design follows what learned-cost-model serving needs in systems
like BRAD: multi-model routing, bounded latency, bounded memory — and,
since the fleet is only as deployable as its worst failure mode, explicit
handling for everything the fault plane (:mod:`repro.robustness.faults`)
can throw.

Guarantees:

* **Bit-identical predictions** — for any request mix, the value a ``DONE``
  request receives equals a direct ``predict_runtimes`` call on the same
  model for that plan, bit for bit, regardless of which other requests
  shared its micro-batch — and regardless of retries, bisections, batcher
  restarts or hot-swaps along the way.  This rests on the row-stable
  inference kernels (:func:`repro.nn.row_stable_matmul`): per-plan outputs
  are a pure function of the plan, so micro-batch composition — and
  therefore scheduling nondeterminism — cannot leak into results, and
  cached values stay exact under every later composition.
* **One bad plan fails alone** — a model-path failure (featurization or
  inference) is retried with exponential backoff (``max_retries`` /
  ``retry_backoff_ms``); a group that keeps failing is *bisected* until
  the poisoned request is isolated, so its micro-batch neighbours complete
  normally.  ``request_timeout_ms`` bounds how long any request may be
  retried before it fails with a typed :class:`DeadlineExceededError`.
* **The batcher survives crashes** — the batcher thread runs under
  supervision: an unexpected crash of the loop machinery is detected, the
  in-flight micro-batch is re-enqueued **exactly once** (unfinished
  requests return to the queue head in order; finished ones are never
  duplicated) and a replacement thread takes over.  No request is lost, no
  request is answered twice.
* **Graceful degradation, never silent** — a per-deployment circuit
  breaker counts consecutive model-path failures; past
  ``breaker_threshold`` it opens and requests are answered by the
  analytical :class:`~repro.optimizer.AnalyticalCostModel` baseline,
  explicitly flagged ``DEGRADED`` (degraded values never enter the result
  cache, and blocking :meth:`predict` refuses them unless the caller opts
  in).  After ``breaker_reset_ms`` the breaker half-opens and probes the
  model path; a success closes it.
* **Repeat plans are cache hits** — a bounded result cache keyed on
  ``(checkpoint, plan fingerprint)`` (the PR-2 content fingerprints, so
  equal-but-distinct plan objects hit) answers repeats without touching
  the queue.  Keys include the serving checkpoint, so a hot-swap can never
  serve a stale model's value.
* **Zero-downtime hot-swap** — the batcher compares the registry's
  generation counter before each batch (one int read) and re-resolves its
  routes only when the registry changed; in-flight batches finish on the
  model they started with.  A deployment whose checkpoint fails hydration
  is quarantined by the registry and the route re-resolves to the previous
  good version (see :mod:`repro.serving.registry`).
* **Bounded queue, explicit shedding** — when the queue is full, a
  non-blocking submit returns a request in ``SHED`` state instead of
  queueing unboundedly (``block=True`` opts into backpressure instead).
* **Clean shutdown** — :meth:`stop` drains the queue (every pending handle
  resolves) or, with ``drain=False``, fails queued requests with a typed
  :class:`ServerClosedError`.  Handles never hang.

Observability: ``serve.batch.*`` / ``serve.cache.*`` / ``serve.shed.*`` /
``serve.swap.*`` counters as before, plus ``serve.fault.*`` (model-path
failures, bisections, batcher crashes, re-enqueues, deadline expiries),
``serve.retry.*`` (backoff retries) and ``serve.degraded.*`` (degraded
responses, breaker opens/half-opens/closes), and
:meth:`PredictorServer.stats` (batch-size histogram, queue high-water mark,
per-status request counts, breaker states).
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict, deque, namedtuple
from dataclasses import dataclass
from enum import Enum

import numpy as np

from .. import perfstats
from ..core.api import EstimatorCache, featurize_records
from ..core.training import predict_runtimes
from ..featurization import (BatchCache, FeaturizationCache, database_digest,
                             plan_fingerprint)
from ..optimizer.cost_model import AnalyticalCostModel
from ..robustness import faults
from .registry import RoutingError

__all__ = ["PredictorServer", "ServerConfig", "PredictionRequest",
           "RequestStatus", "RequestShedError", "RoutingError",
           "DeadlineExceededError", "DegradedResponseError",
           "ServerClosedError", "ServingRecord"]

# The unit of serving work: featurize_records only reads .db_name and .plan,
# so this lightweight record stands in for an executed TraceRecord.
ServingRecord = namedtuple("ServingRecord", ["db_name", "plan"])


class RequestStatus(Enum):
    PENDING = "pending"
    DONE = "done"        # predicted by a micro-batch
    CACHED = "cached"    # answered from the result cache
    DEGRADED = "degraded"  # answered by the analytical fallback (flagged)
    SHED = "shed"        # rejected by admission control
    FAILED = "failed"    # routing/featurization/prediction/deadline error


class RequestShedError(RuntimeError):
    """The bounded queue was full and the request was shed."""


class DeadlineExceededError(RuntimeError):
    """The request exceeded its per-request deadline before completing."""


class DegradedResponseError(RuntimeError):
    """A blocking ``predict`` received a DEGRADED (analytical-fallback)
    response and the caller did not opt in with ``allow_degraded=True``."""


class ServerClosedError(RuntimeError):
    """The server was stopped without draining; the request was dropped."""


class PredictionRequest:
    """Client-side handle for one submitted plan."""

    __slots__ = ("db_name", "plan", "status", "value", "error", "served_by",
                 "submitted_at", "completed_at", "retries", "_event")

    def __init__(self, db_name, plan):
        self.db_name = db_name
        self.plan = plan
        self.status = RequestStatus.PENDING
        self.value = None
        self.error = None
        self.served_by = None  # (model name, version) that produced value
        self.submitted_at = time.perf_counter()
        self.completed_at = None
        self.retries = 0
        self._event = threading.Event()

    # -- completion (server side) --------------------------------------
    def _finish(self, status, value=None, error=None, served_by=None):
        self.value = value
        self.error = error
        self.served_by = served_by
        self.completed_at = time.perf_counter()
        self.status = status
        self._event.set()

    # -- client side ----------------------------------------------------
    def done(self):
        return self._event.is_set()

    @property
    def degraded(self):
        """True when the value came from the analytical fallback."""
        return self.status is RequestStatus.DEGRADED

    def wait(self, timeout=None):
        return self._event.wait(timeout)

    def result(self, timeout=None):
        """The predicted runtime (ms); raises for shed/failed requests.

        A ``DEGRADED`` request returns its analytical-fallback value — the
        :attr:`status` / :attr:`degraded` flag is the explicit marker that
        the value did not come from the learned model.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("prediction still pending")
        if self.status is RequestStatus.SHED:
            raise RequestShedError(
                f"request for {self.db_name!r} was shed (queue full)")
        if self.status is RequestStatus.FAILED:
            raise self.error
        return self.value

    @property
    def latency_ms(self):
        if self.completed_at is None:
            return None
        return (self.completed_at - self.submitted_at) * 1e3

    def __repr__(self):
        return (f"PredictionRequest({self.db_name!r}, "
                f"status={self.status.value})")


@dataclass(frozen=True)
class ServerConfig:
    """Micro-batching, admission-control, routing and robustness knobs."""

    max_batch_size: int = 64     # size trigger: dispatch when this many queue
    max_delay_ms: float = 2.0    # deadline trigger: oldest request's max wait
    queue_depth: int = 1024      # admission control: shed beyond this
    result_cache_size: int = 4096  # 0 disables the result cache
    predict_batch_size: int = 256  # inference chunking inside one batch
    cards: str = "exact"         # cardinality source for featurization
    model_name: str | None = None  # pin every database to one model name
    # -- robustness ----------------------------------------------------
    request_timeout_ms: float | None = None  # per-request deadline (age cap)
    max_retries: int = 2         # extra model-path attempts per group
    retry_backoff_ms: float = 1.0  # backoff base; doubles per retry
    breaker_threshold: int = 3   # consecutive failures that open the breaker
    breaker_reset_ms: float = 50.0  # open -> half-open probe delay
    degraded_fallback: bool = True  # serve analytical predictions when open


class _Route:
    """A database's resolved deployment with the loaded model."""

    __slots__ = ("deployment", "model")

    def __init__(self, deployment, model):
        self.deployment = deployment
        self.model = model

    @property
    def checkpoint_key(self):
        return self.deployment.checkpoint_key

    @property
    def served_by(self):
        return (self.deployment.name, self.deployment.version)


class _Breaker:
    """Per-deployment circuit breaker (batcher-thread state only)."""

    __slots__ = ("state", "failures", "opened_at")

    def __init__(self):
        self.state = "closed"     # closed | open | half-open
        self.failures = 0
        self.opened_at = 0.0

    def allows_model_path(self, reset_s):
        """Closed: yes.  Open: only once the reset delay elapsed, as a
        half-open probe.  (Called only by the batcher thread.)"""
        if self.state == "closed":
            return True
        if time.monotonic() - self.opened_at >= reset_s:
            if self.state != "half-open":
                self.state = "half-open"
                perfstats.increment("serve.degraded.half_open")
            return True
        return False

    def record_success(self):
        if self.state != "closed":
            perfstats.increment("serve.degraded.close")
        self.state = "closed"
        self.failures = 0

    def record_failure(self, threshold):
        self.failures += 1
        if self.state == "half-open" or self.failures >= threshold:
            if self.state != "open":
                perfstats.increment("serve.degraded.open")
            self.state = "open"
            self.opened_at = time.monotonic()


class PredictorServer:
    """Thread-based online prediction service over a model registry.

    ``dbs`` maps database names to :class:`~repro.storage.Database` objects
    the server accepts requests for.  Use as a context manager (starts and
    stops the batcher thread)::

        with PredictorServer(registry, {"imdb": db}) as server:
            request = server.submit(plan, "imdb")
            runtime_ms = request.result()
    """

    def __init__(self, registry, dbs, config=None, estimator_cache=None):
        self.registry = registry
        self.config = config or ServerConfig()
        self._dbs = dict(dbs)
        self._db_digests = {name: database_digest(db).hex()
                            for name, db in self._dbs.items()}
        self._db_fingerprints = {name: db.fingerprint()
                                 for name, db in self._dbs.items()}
        # One lock guards the queue, the result cache, the digest memo, the
        # routes, the in-flight batch and the counters.  Featurization and
        # inference run outside it; the featurization/batch caches and the
        # breakers are touched only by the batcher thread, so they need no
        # locking of their own.
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._queue = deque()
        self._inflight = []
        self._result_cache = OrderedDict()
        self._digest_memo = OrderedDict()  # id(plan) -> (plan, digest)
        self._feat_cache = FeaturizationCache()
        self._batch_cache = BatchCache(max_entries=64)
        self._estimator_cache = estimator_cache or EstimatorCache()
        self._running = False
        self._accepting = True  # False only after stop(); start() restores
        self._thread = None
        self._counts = Counter()
        self._batch_sizes = Counter()
        self._queue_high_water = 0
        self._routes = {}
        self._breakers = {}     # checkpoint_key -> _Breaker (batcher only)
        self._analytical = {}   # db_name -> AnalyticalCostModel (batcher only)
        self._seen_generation = None
        self._resolve_routes()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._running = True
        self._accepting = True
        self._thread = threading.Thread(target=self._batcher_main,
                                        name="repro-predictor", daemon=True)
        self._thread.start()
        return self

    def stop(self, drain=True):
        """Stop the batcher; every pending handle resolves, none hangs.

        ``drain=True`` (default): requests already queued are processed
        before the batcher exits.  ``drain=False``: queued requests fail
        immediately with a typed :class:`ServerClosedError` instead of
        being processed.  Submissions from this point on (including blocked
        backpressure waiters) are shed.  :meth:`start` re-opens admission.
        """
        with self._lock:
            if self._thread is None:
                return
            self._running = False
            self._accepting = False
            if not drain:
                error = ServerClosedError(
                    "server stopped without draining")
                dropped = list(self._queue)
                self._queue.clear()
                self._counts["failed"] += len(dropped)
            else:
                dropped = []
            self._not_empty.notify_all()
            self._not_full.notify_all()
        for request in dropped:
            request._finish(RequestStatus.FAILED, error=error)
        # The batcher may crash and be replaced while we wait: join
        # whatever thread is current until it is both dead and current.
        while True:
            with self._lock:
                thread = self._thread
            if thread is None:
                return
            thread.join(timeout=5.0)
            with self._lock:
                if self._thread is thread and not thread.is_alive():
                    self._thread = None
                    return

    def close(self, drain=True):
        """Alias for :meth:`stop` (the satellite shutdown contract)."""
        self.stop(drain=drain)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, plan, db_name, block=False, timeout=None):
        """Submit one plan; returns a :class:`PredictionRequest` handle.

        Repeat plans (by content fingerprint, under the currently routed
        checkpoint) complete immediately from the result cache.  When the
        bounded queue is full, ``block=False`` sheds the request
        (``status == SHED``); ``block=True`` waits for space
        (backpressure), shedding only once ``timeout`` (a total bound, not
        per-wakeup) elapses.  Submissions after :meth:`stop` are shed
        (nothing would ever process them); submissions *before*
        :meth:`start` queue up normally.
        """
        if db_name not in self._dbs:
            raise KeyError(f"database {db_name!r} is not registered with "
                           "this server")
        self._maybe_swap()
        request = PredictionRequest(db_name, plan)
        # The content hash is a pure function of the plan: compute it
        # outside the lock so concurrent first-seen submits don't serialize
        # behind each other's O(plan) digest walks.
        digest = self._plan_digest(db_name, plan)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._lock:
            self._counts["requests"] += 1
            route = self._routes.get(db_name)
            if route is None:
                self._counts["failed"] += 1
                request._finish(RequestStatus.FAILED, error=RoutingError(
                    f"no deployment serves {db_name!r} and the registry "
                    "has no default model"))
                return request
            value = self._cache_get_locked((route.checkpoint_key, digest))
            if value is not None:
                self._counts["cached"] += 1
                perfstats.increment("serve.cache.hit")
                request._finish(RequestStatus.CACHED, value=value,
                                served_by=route.served_by)
                return request
            while (self._accepting
                   and len(self._queue) >= self.config.queue_depth):
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if (not block
                        or (remaining is not None and remaining <= 0)
                        or not self._not_full.wait(remaining)):
                    break
            if (not self._accepting
                    or len(self._queue) >= self.config.queue_depth):
                self._counts["shed"] += 1
                perfstats.increment("serve.shed.count")
                request._finish(RequestStatus.SHED)
                return request
            self._queue.append(request)
            self._queue_high_water = max(self._queue_high_water,
                                         len(self._queue))
            self._not_empty.notify()
        return request

    def submit_many(self, plans, db_name, block=False, timeout=None):
        return [self.submit(plan, db_name, block=block, timeout=timeout)
                for plan in plans]

    def predict(self, plans, db_name, timeout=None, allow_degraded=False):
        """Blocking bulk prediction (backpressure, never sheds).

        Returns runtimes (ms) aligned with ``plans``; raises if any request
        failed.  A ``DEGRADED`` response (analytical fallback while the
        circuit breaker is open) raises :class:`DegradedResponseError`
        unless ``allow_degraded=True`` — degraded values are never handed
        out silently.
        """
        requests = self.submit_many(plans, db_name, block=True,
                                    timeout=timeout)
        values = [request.result(timeout) for request in requests]
        if not allow_degraded:
            degraded = sum(request.degraded for request in requests)
            if degraded:
                raise DegradedResponseError(
                    f"{degraded}/{len(requests)} predictions came from the "
                    "analytical fallback; pass allow_degraded=True to "
                    "accept flagged degraded values")
        return np.array(values)

    def refresh(self):
        """Force re-resolution of routes from the registry (e.g. after a
        cross-process registry change plus ``registry.refresh()``)."""
        self._resolve_routes()

    # ------------------------------------------------------------------
    # Batcher (supervised)
    # ------------------------------------------------------------------
    def _batcher_main(self):
        """Supervision wrapper: detect a crash of the serve loop, re-enqueue
        the in-flight micro-batch exactly once, and hand over to a
        replacement thread."""
        try:
            self._serve_loop()
        except Exception:  # noqa: BLE001 — crash path must survive anything
            perfstats.increment("serve.fault.batcher_crash")
            with self._lock:
                self._counts["batcher_crashes"] += 1
                # Exactly-once re-enqueue: unfinished in-flight requests go
                # back to the queue head in their original order; finished
                # ones are never duplicated.
                pending = [r for r in self._inflight if not r.done()]
                self._inflight = []
                for request in reversed(pending):
                    self._queue.appendleft(request)
                self._counts["requeued"] += len(pending)
                perfstats.increment("serve.fault.requeued", len(pending))
                replacement = threading.Thread(target=self._batcher_main,
                                               name="repro-predictor",
                                               daemon=True)
                self._thread = replacement
                self._not_empty.notify_all()
            # Started outside the lock; stop() joins whichever thread is
            # current, so the handover is always observed.
            replacement.start()

    def _serve_loop(self):
        max_delay_s = self.config.max_delay_ms / 1e3
        while True:
            with self._lock:
                while not self._queue and self._running:
                    self._not_empty.wait()
                if not self._queue:
                    break  # stopped and drained
                # Deadline/size trigger: dispatch when the oldest request
                # has waited max_delay_ms or max_batch_size are queued.
                deadline = self._queue[0].submitted_at + max_delay_s
                while (self._running
                       and len(self._queue) < self.config.max_batch_size):
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._not_empty.wait(remaining)
                count = min(len(self._queue), self.config.max_batch_size)
                batch = [self._queue.popleft() for _ in range(count)]
                self._inflight = batch
                self._not_full.notify_all()
            # The batcher-loop injection point: a raise here unwinds into
            # _batcher_main's crash handler with the batch still in-flight
            # — exactly the torn state the supervisor must recover.
            faults.check("serve.batcher")
            try:
                self._process_batch(batch)
            except Exception as exc:  # noqa: BLE001 — the loop must survive
                # A surprise error outside the hardened group path fails
                # this batch's requests instead of killing the batcher and
                # stranding every future request.
                with self._lock:
                    self._counts["failed"] += sum(
                        1 for request in batch if not request.done())
                for request in batch:
                    if not request.done():
                        request._finish(RequestStatus.FAILED, error=exc)
            finally:
                with self._lock:
                    self._inflight = []

    def _process_batch(self, batch):
        self._maybe_swap()
        perfstats.increment("serve.batch.count")
        perfstats.increment("serve.batch.requests", len(batch))
        self._batch_sizes[len(batch)] += 1
        by_db = {}
        for request in batch:
            by_db.setdefault(request.db_name, []).append(request)
        for db_name, requests in by_db.items():
            self._process_group(db_name, requests)

    def _process_group(self, db_name, requests):
        with self._lock:
            route = self._routes.get(db_name)
        if route is None:
            error = RoutingError(f"no deployment serves {db_name!r}")
            with self._lock:
                self._counts["failed"] += len(requests)
            for request in requests:
                request._finish(RequestStatus.FAILED, error=error)
            return
        digests = [self._plan_digest(db_name, request.plan)
                   for request in requests]
        # Late cache probe: a duplicate that was queued before its twin's
        # batch completed is answered here instead of re-predicted.
        pending, keys = [], []
        with self._lock:
            for request, digest in zip(requests, digests):
                key = (route.checkpoint_key, digest)
                value = self._cache_get_locked(key)
                if value is not None:
                    self._counts["cached"] += 1
                    perfstats.increment("serve.cache.hit")
                    request._finish(RequestStatus.CACHED, value=value,
                                    served_by=route.served_by)
                else:
                    pending.append(request)
                    keys.append(key)
        if not pending:
            return
        perfstats.increment("serve.cache.miss", len(pending))
        digests = [key[1] for key in keys]
        breaker = self._breakers.setdefault(route.checkpoint_key, _Breaker())
        if not breaker.allows_model_path(self.config.breaker_reset_ms / 1e3):
            # Breaker open: the model path is known-bad; answer from the
            # analytical baseline (or fail typed) without touching it.
            self._finish_degraded(db_name, route, pending)
            return
        self._predict_group(db_name, route, breaker, pending, digests)

    # -- hardened model path -------------------------------------------
    def _predict_group(self, db_name, route, breaker, requests, digests):
        """Retry with backoff; on persistent failure bisect until the
        poisoned request is isolated; enforce per-request deadlines."""
        requests, digests = self._enforce_deadlines(requests, digests)
        if not requests:
            return
        last_error = None
        for attempt in range(self.config.max_retries + 1):
            if attempt:
                perfstats.increment("serve.retry.count")
                with self._lock:
                    self._counts["retries"] += 1
                for request in requests:
                    request.retries += 1
                backoff_s = (self.config.retry_backoff_ms / 1e3
                             * (2 ** (attempt - 1)))
                time.sleep(backoff_s)
                requests, digests = self._enforce_deadlines(requests,
                                                            digests)
                if not requests:
                    return
            try:
                values = self._attempt(db_name, requests, digests,
                                       route.model)
            except Exception as exc:  # noqa: BLE001 — injected or real
                perfstats.increment("serve.fault.model_path")
                last_error = exc
                continue
            breaker.record_success()
            with self._lock:
                self._counts["completed"] += len(requests)
                for digest, value in zip(digests, values):
                    self._cache_put_locked((route.checkpoint_key, digest),
                                           float(value))
            for request, value in zip(requests, values):
                request._finish(RequestStatus.DONE, value=float(value),
                                served_by=route.served_by)
            return
        if len(requests) > 1:
            # Poisoned-batch bisection: the halves retry independently, so
            # everything except the poisoned request still completes.
            perfstats.increment("serve.fault.bisect")
            with self._lock:
                self._counts["bisects"] += 1
            mid = len(requests) // 2
            self._predict_group(db_name, route, breaker,
                                requests[:mid], digests[:mid])
            self._predict_group(db_name, route, breaker,
                                requests[mid:], digests[mid:])
            return
        # A single request exhausted its retries: it fails alone — and the
        # breaker counts it; past the threshold the deployment degrades.
        breaker.record_failure(self.config.breaker_threshold)
        if breaker.state == "open" and self.config.degraded_fallback:
            self._finish_degraded(db_name, route, requests)
            return
        with self._lock:
            self._counts["failed"] += 1
        requests[0]._finish(RequestStatus.FAILED, error=last_error)

    def _attempt(self, db_name, requests, digests, model):
        """One model-path attempt over a group (featurize + predict)."""
        faults.check("serve.featurize", keys=digests)
        records = [ServingRecord(db_name, request.plan)
                   for request in requests]
        graphs = featurize_records(
            records, self._dbs, cards=self.config.cards,
            estimator_cache=self._estimator_cache,
            feat_cache=self._feat_cache)
        faults.check("serve.infer", keys=digests)
        return predict_runtimes(
            model.model, graphs, model.feature_scalers,
            model.target_scaler,
            batch_size=self.config.predict_batch_size,
            batch_cache=self._batch_cache)

    def _enforce_deadlines(self, requests, digests):
        """Fail requests whose age exceeds the per-request deadline."""
        timeout_ms = self.config.request_timeout_ms
        if timeout_ms is None:
            return requests, digests
        now = time.perf_counter()
        alive, alive_digests, expired = [], [], []
        for request, digest in zip(requests, digests):
            if (now - request.submitted_at) * 1e3 > timeout_ms:
                expired.append(request)
            else:
                alive.append(request)
                alive_digests.append(digest)
        if expired:
            perfstats.increment("serve.fault.deadline", len(expired))
            with self._lock:
                self._counts["failed"] += len(expired)
                self._counts["deadline_expired"] += len(expired)
            for request in expired:
                request._finish(RequestStatus.FAILED,
                                error=DeadlineExceededError(
                                    f"request exceeded its "
                                    f"{timeout_ms:.0f} ms deadline"))
        return alive, alive_digests

    def _finish_degraded(self, db_name, route, requests):
        """Answer requests from the analytical cost model, flagged DEGRADED.

        Degraded values never enter the result cache — a recovered model
        must never replay them — and ``served_by`` names the fallback, not
        the deployment.
        """
        if not self.config.degraded_fallback:
            error = RoutingError(
                f"deployment {route.deployment.name!r} is circuit-broken "
                "and degraded fallback is disabled")
            with self._lock:
                self._counts["failed"] += len(requests)
            for request in requests:
                request._finish(RequestStatus.FAILED, error=error)
            return
        analytical = self._analytical.get(db_name)
        if analytical is None:
            analytical = AnalyticalCostModel(self._dbs[db_name])
            self._analytical[db_name] = analytical
        served_by = ("analytical", route.deployment.name)
        perfstats.increment("serve.degraded.count", len(requests))
        with self._lock:
            self._counts["degraded"] += len(requests)
        for request in requests:
            try:
                value = analytical.predict_plan(request.plan)
            except Exception as exc:  # noqa: BLE001 — even fallbacks fail
                with self._lock:
                    self._counts["degraded"] -= 1
                    self._counts["failed"] += 1
                request._finish(RequestStatus.FAILED, error=exc)
                continue
            request._finish(RequestStatus.DEGRADED, value=value,
                            served_by=served_by)

    # ------------------------------------------------------------------
    # Routing / hot-swap
    # ------------------------------------------------------------------
    def _maybe_swap(self):
        if self.registry.generation != self._seen_generation:
            self._resolve_routes()

    def _resolve_routes(self):
        """Re-resolve every database's deployment from the registry.

        Runs between batches (or at submit time); in-flight work keeps the
        route object it started with, so a promote/rollback is a
        zero-downtime swap.  A deployment whose checkpoint fails hydration
        is quarantined by the registry (which re-resolves its manifest to
        the previous good version), and resolution retries against the
        updated registry state — serving falls back to known-good
        checkpoints instead of wedging.
        """
        generation = self.registry.generation
        routes = {db_name: self._resolve_one(digest)
                  for db_name, digest in self._db_digests.items()}
        with self._lock:
            for db_name, route in routes.items():
                previous = self._routes.get(db_name)
                if (previous is not None and route is not None
                        and previous.checkpoint_key != route.checkpoint_key):
                    self._counts["swaps"] += 1
                    perfstats.increment("serve.swap.count")
            self._routes = routes
            self._seen_generation = generation

    def _resolve_one(self, digest):
        """Route one database digest to a loaded model, surviving
        quarantines: every HydrationError re-resolves against the
        registry's updated manifest until a good version loads or nothing
        routable remains."""
        for _ in range(8):  # bounded: each retry consumed a quarantine
            try:
                if self.config.model_name is not None:
                    deployment = self.registry.active(self.config.model_name)
                else:
                    deployment = self.registry.route(digest)
            except RoutingError:
                return None
            if deployment is None:
                return None
            try:
                model = self.registry.load(deployment=deployment)
            except RoutingError:
                perfstats.increment("serve.fault.hydrate")
                with self._lock:
                    self._counts["hydrate_failures"] += 1
                continue
            return _Route(deployment, model)
        return None

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def _plan_digest(self, db_name, plan):
        """Memoized content fingerprint of a plan object (self-locking).

        Memo keys carry the database name: the digest hashes the
        database's fingerprint, so the same plan object submitted against
        two databases must produce two distinct digests (and therefore two
        result-cache keys).  The hash itself — an O(plan) tree walk — runs
        outside the lock so first-seen plans from concurrent clients don't
        serialize behind each other; only the memo probes take it.
        """
        memo_key = (id(plan), db_name)
        with self._lock:
            entry = self._digest_memo.get(memo_key)
            if entry is not None and entry[0] is plan:
                return entry[1]
        digest = plan_fingerprint(
            self._dbs[db_name], plan, self.config.cards,
            db_fingerprint=self._db_fingerprints[db_name])
        with self._lock:
            self._digest_memo[memo_key] = (plan, digest)
            while len(self._digest_memo) > 4 * max(
                    self.config.result_cache_size, 1024):
                self._digest_memo.popitem(last=False)
        return digest

    def _cache_get_locked(self, key):
        if self.config.result_cache_size <= 0:
            return None
        value = self._result_cache.get(key)
        if value is not None:
            self._result_cache.move_to_end(key)
        return value

    def _cache_put_locked(self, key, value):
        if self.config.result_cache_size <= 0:
            return
        self._result_cache[key] = value
        while len(self._result_cache) > self.config.result_cache_size:
            self._result_cache.popitem(last=False)

    # ------------------------------------------------------------------
    def stats(self):
        """Request/batch/cache/swap/fault counters, batch-size histogram,
        and per-deployment breaker states."""
        breakers = {key: breaker.state
                    for key, breaker in self._breakers.items()}
        with self._lock:
            batches = sum(self._batch_sizes.values())
            sizes = sum(size * count
                        for size, count in self._batch_sizes.items())
            return {
                "requests": self._counts["requests"],
                "completed": self._counts["completed"],
                "cached": self._counts["cached"],
                "degraded": self._counts["degraded"],
                "shed": self._counts["shed"],
                "failed": self._counts["failed"],
                "swaps": self._counts["swaps"],
                "retries": self._counts["retries"],
                "bisects": self._counts["bisects"],
                "batcher_crashes": self._counts["batcher_crashes"],
                "requeued": self._counts["requeued"],
                "deadline_expired": self._counts["deadline_expired"],
                "hydrate_failures": self._counts["hydrate_failures"],
                "batches": batches,
                "batch_size_hist": dict(sorted(self._batch_sizes.items())),
                "mean_batch_size": (sizes / batches) if batches else 0.0,
                "queue_high_water": self._queue_high_water,
                "result_cache_entries": len(self._result_cache),
                "breakers": breakers,
            }

    def __repr__(self):
        return (f"PredictorServer(dbs={sorted(self._dbs)}, "
                f"max_batch={self.config.max_batch_size}, "
                f"running={self._thread is not None})")
