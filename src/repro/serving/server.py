"""In-process micro-batching predictor server, hardened for chaos.

Clients — any number of threads — submit plans for any registered database
and get a :class:`PredictionRequest` handle back immediately.  A single
*supervised* batcher thread coalesces queued requests into micro-batches on
a deadline/size trigger (whichever fires first), routes every request to a
compatible model deployment by database fingerprint, featurizes each batch
through the shared vectorized pipeline and predicts through
``predict_runtimes`` — i.e. the PR-1 graph-free ``forward_inference`` fast
path.  The design follows what learned-cost-model serving needs in systems
like BRAD: multi-model routing, bounded latency, bounded memory — and,
since the fleet is only as deployable as its worst failure mode, explicit
handling for everything the fault plane (:mod:`repro.robustness.faults`)
can throw.

The request/route/cache/hardening logic lives in the transport-agnostic
:class:`~repro.serving.core.ServingCore`; this module owns only the thread
transport around it (bounded queue, deadline/size trigger, supervised
batcher thread).  :mod:`repro.serving.fleet` drives the same core from
forked worker processes.

Guarantees:

* **Bit-identical predictions** — for any request mix, the value a ``DONE``
  request receives equals a direct ``predict_runtimes`` call on the same
  model for that plan, bit for bit, regardless of which other requests
  shared its micro-batch — and regardless of retries, bisections, batcher
  restarts or hot-swaps along the way.  This rests on the row-stable
  inference kernels (:func:`repro.nn.row_stable_matmul`): per-plan outputs
  are a pure function of the plan, so micro-batch composition — and
  therefore scheduling nondeterminism — cannot leak into results, and
  cached values stay exact under every later composition.
* **One bad plan fails alone** — a model-path failure (featurization or
  inference) is retried with exponential backoff (``max_retries`` /
  ``retry_backoff_ms``); a group that keeps failing is *bisected* until
  the poisoned request is isolated, so its micro-batch neighbours complete
  normally.  ``request_timeout_ms`` bounds how long any request may be
  retried before it fails with a typed :class:`DeadlineExceededError`.
* **The batcher survives crashes** — the batcher thread runs under
  supervision: an unexpected crash of the loop machinery is detected, the
  in-flight micro-batch is re-enqueued **exactly once** (unfinished
  requests return to the queue head in order; finished ones are never
  duplicated) and a replacement thread takes over.  No request is lost, no
  request is answered twice.
* **Graceful degradation, never silent** — a per-deployment circuit
  breaker counts consecutive model-path failures; past
  ``breaker_threshold`` it opens and requests are answered by the
  analytical :class:`~repro.optimizer.AnalyticalCostModel` baseline,
  explicitly flagged ``DEGRADED`` (degraded values never enter the result
  cache, and blocking :meth:`predict` refuses them unless the caller opts
  in).  After ``breaker_reset_ms`` the breaker half-opens and probes the
  model path; a success closes it.
* **Repeat plans are cache hits** — a bounded result cache keyed on
  ``(checkpoint, plan fingerprint)`` (the PR-2 content fingerprints, so
  equal-but-distinct plan objects hit) answers repeats without touching
  the queue.  Keys include the serving checkpoint, so a hot-swap can never
  serve a stale model's value.
* **Zero-downtime hot-swap** — the batcher compares the registry's
  generation counter before each batch (one int read) and re-resolves its
  routes only when the registry changed; in-flight batches finish on the
  model they started with.  A deployment whose checkpoint fails hydration
  is quarantined by the registry and the route re-resolves to the previous
  good version (see :mod:`repro.serving.registry`).
* **Bounded queue, explicit shedding** — when the queue is full, a
  non-blocking submit returns a request in ``SHED`` state instead of
  queueing unboundedly (``block=True`` opts into backpressure instead).
* **Clean shutdown** — :meth:`stop` drains the queue (every pending handle
  resolves) or, with ``drain=False``, fails queued requests with a typed
  :class:`ServerClosedError`.  Handles never hang.

Observability: ``serve.batch.*`` / ``serve.cache.*`` / ``serve.shed.*`` /
``serve.swap.*`` counters as before, plus ``serve.fault.*`` (model-path
failures, bisections, batcher crashes, re-enqueues, deadline expiries),
``serve.retry.*`` (backoff retries) and ``serve.degraded.*`` (degraded
responses, breaker opens/half-opens/closes), and
:meth:`PredictorServer.stats` (batch-size histogram, queue high-water mark,
per-status request counts, breaker states).
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from .. import perfstats
from ..obs.trace import Tracer
from ..robustness import faults
from .core import (DeadlineExceededError, DegradedResponseError,
                   PredictionRequest, RequestPriority, RequestShedError,
                   RequestStatus, ServerClosedError, ServerConfig,
                   ServingCore, ServingRecord, admission_limit)
from .registry import RoutingError

__all__ = ["PredictorServer", "ServerConfig", "PredictionRequest",
           "RequestStatus", "RequestPriority", "RequestShedError",
           "RoutingError", "DeadlineExceededError", "DegradedResponseError",
           "ServerClosedError", "ServingRecord"]


class PredictorServer:
    """Thread-based online prediction service over a model registry.

    ``dbs`` maps database names to :class:`~repro.storage.Database` objects
    the server accepts requests for.  Use as a context manager (starts and
    stops the batcher thread)::

        with PredictorServer(registry, {"imdb": db}) as server:
            request = server.submit(plan, "imdb")
            runtime_ms = request.result()
    """

    def __init__(self, registry, dbs, config=None, estimator_cache=None,
                 core=None):
        self.core = core or ServingCore(registry, dbs, config=config,
                                        estimator_cache=estimator_cache)
        self.registry = self.core.registry
        self.config = self.core.config
        # The transport lock guards the queue, the in-flight batch and the
        # high-water mark; all serving state lives behind the core's lock.
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._queue = deque()
        self._inflight = []
        self._running = False
        self._accepting = True  # False only after stop(); start() restores
        self._thread = None
        self._queue_high_water = 0
        # Observability: submit-order seq feeds deterministic trace ids.
        self._seq_lock = threading.Lock()
        self._submit_seq = 0
        self._tracer = (Tracer(sample_every=self.config.trace_sample_every)
                        if self.config.trace else None)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        return self._tracer

    def attach_tracer(self, tracer):
        """Attach (or detach with ``None``) a span sink; overrides the
        config-driven tracer.  Per-request cost is zero when detached."""
        self._tracer = tracer
        return tracer

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._running = True
        self._accepting = True
        self._thread = threading.Thread(target=self._batcher_main,
                                        name="repro-predictor", daemon=True)
        self._thread.start()
        return self

    def stop(self, drain=True):
        """Stop the batcher; every pending handle resolves, none hangs.

        ``drain=True`` (default): requests already queued are processed
        before the batcher exits.  ``drain=False``: queued requests fail
        immediately with a typed :class:`ServerClosedError` instead of
        being processed.  Submissions from this point on (including blocked
        backpressure waiters) are shed.  :meth:`start` re-opens admission.
        """
        with self._lock:
            if self._thread is None:
                return
            self._running = False
            self._accepting = False
            if not drain:
                error = ServerClosedError(
                    "server stopped without draining")
                dropped = list(self._queue)
                self._queue.clear()
            else:
                dropped = []
            self._not_empty.notify_all()
            self._not_full.notify_all()
        if dropped:
            self.core.count("failed", len(dropped))
        for request in dropped:
            request._finish(RequestStatus.FAILED, error=error)
        # The batcher may crash and be replaced while we wait: join
        # whatever thread is current until it is both dead and current.
        while True:
            with self._lock:
                thread = self._thread
            if thread is None:
                return
            thread.join(timeout=5.0)
            with self._lock:
                if self._thread is thread and not thread.is_alive():
                    self._thread = None
                    return

    def close(self, drain=True):
        """Alias for :meth:`stop` (the satellite shutdown contract)."""
        self.stop(drain=drain)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, plan, db_name, block=False, timeout=None,
               priority=RequestPriority.NORMAL, deadline_ms=None):
        """Submit one plan; returns a :class:`PredictionRequest` handle.

        Repeat plans (by content fingerprint, under the currently routed
        checkpoint) complete immediately from the result cache.  When the
        bounded queue is full, ``block=False`` sheds the request
        (``status == SHED``); ``block=True`` waits for space
        (backpressure), shedding only once ``timeout`` (a total bound, not
        per-wakeup) elapses.  Admission is priority-classed: each
        :class:`RequestPriority` sheds at its own queue bound (see
        :func:`~repro.serving.core.admission_limit`; with the default
        config NORMAL and HIGH share the full queue).  Unlike the fleet
        router, the thread server sheds over-limit LOW traffic rather
        than browning it out.  ``deadline_ms`` sets this request's age
        cap, overriding ``request_timeout_ms``.  Submissions after
        :meth:`stop` are shed (nothing would ever process them);
        submissions *before* :meth:`start` queue up normally.
        """
        core = self.core
        if not core.has_db(db_name):
            raise KeyError(f"database {db_name!r} is not registered with "
                           "this server")
        core.maybe_swap()
        priority = RequestPriority(priority)
        request = PredictionRequest(db_name, plan, priority=priority,
                                    deadline_ms=deadline_ms)
        core.count("requests")
        route = core.route_for(db_name)
        if route is None:
            core.count("failed")
            request._finish(RequestStatus.FAILED, error=RoutingError(
                f"no deployment serves {db_name!r} and the registry "
                "has no default model"))
            return request
        # The content hash is a pure function of the plan: compute it
        # outside the locks so concurrent first-seen submits don't serialize
        # behind each other's O(plan) digest walks.
        digest = core.plan_digest(db_name, plan)
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            with self._seq_lock:
                seq = self._submit_seq
                self._submit_seq += 1
            request.trace = tracer.context_for(
                digest, seq, db_name=db_name,
                priority=priority.name.lower(),
                submitted_at=request.submitted_at)
        value = core.cached_value(
            route, digest, db_name=db_name, plan=plan,
            trace_id=(request.trace.trace_id
                      if request.trace is not None else None))
        if value is not None:
            if request.trace is not None:
                request.trace.annotate("cache.hit")
                request.trace.add_stage("cache", request.submitted_at,
                                        time.perf_counter(), "server")
            request._finish(RequestStatus.CACHED, value=value,
                            served_by=route.served_by)
            return request
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        limit = min(self.config.queue_depth,
                    admission_limit(priority, self.config.queue_depth,
                                    self.config))
        with self._lock:
            while self._accepting and len(self._queue) >= limit:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if (not block
                        or (remaining is not None and remaining <= 0)
                        or not self._not_full.wait(remaining)):
                    break
            if not self._accepting or len(self._queue) >= limit:
                shed = True
            else:
                shed = False
                self._queue.append(request)
                self._queue_high_water = max(self._queue_high_water,
                                             len(self._queue))
                self._not_empty.notify()
        if shed:
            core.count("shed")
            perfstats.increment("serve.shed.count")
            perfstats.increment(
                f"serve.shed.priority.{priority.name.lower()}")
            request._finish(RequestStatus.SHED)
        return request

    def submit_many(self, plans, db_name, block=False, timeout=None,
                    priority=RequestPriority.NORMAL, deadline_ms=None):
        return [self.submit(plan, db_name, block=block, timeout=timeout,
                            priority=priority, deadline_ms=deadline_ms)
                for plan in plans]

    def predict(self, plans, db_name, timeout=None, allow_degraded=False):
        """Blocking bulk prediction (backpressure, never sheds).

        Returns runtimes (ms) aligned with ``plans``; raises if any request
        failed.  A ``DEGRADED`` response (analytical fallback while the
        circuit breaker is open) raises :class:`DegradedResponseError`
        unless ``allow_degraded=True`` — degraded values are never handed
        out silently.
        """
        requests = self.submit_many(plans, db_name, block=True,
                                    timeout=timeout)
        values = [request.result(timeout) for request in requests]
        if not allow_degraded:
            degraded = sum(request.degraded for request in requests)
            if degraded:
                raise DegradedResponseError(
                    f"{degraded}/{len(requests)} predictions came from the "
                    "analytical fallback; pass allow_degraded=True to "
                    "accept flagged degraded values")
        return np.array(values)

    def refresh(self):
        """Force re-resolution of routes from the registry (e.g. after a
        cross-process registry change plus ``registry.refresh()``)."""
        self.core.resolve_routes()

    # ------------------------------------------------------------------
    # Batcher (supervised)
    # ------------------------------------------------------------------
    def _batcher_main(self):
        """Supervision wrapper: detect a crash of the serve loop, re-enqueue
        the in-flight micro-batch exactly once, and hand over to a
        replacement thread."""
        try:
            self._serve_loop()
        except Exception:  # noqa: BLE001 — crash path must survive anything
            perfstats.increment("serve.fault.batcher_crash")
            self.core.count("batcher_crashes")
            with self._lock:
                # Exactly-once re-enqueue: unfinished in-flight requests go
                # back to the queue head in their original order; finished
                # ones are never duplicated.
                pending = [r for r in self._inflight if not r.done()]
                self._inflight = []
                for request in reversed(pending):
                    if request.trace is not None:
                        request.trace.annotate("requeued")
                    self._queue.appendleft(request)
                perfstats.increment("serve.fault.requeued", len(pending))
                replacement = threading.Thread(target=self._batcher_main,
                                               name="repro-predictor",
                                               daemon=True)
                self._thread = replacement
                self._not_empty.notify_all()
            self.core.count("requeued", len(pending))
            # Started outside the lock; stop() joins whichever thread is
            # current, so the handover is always observed.
            replacement.start()

    def _serve_loop(self):
        max_delay_s = self.config.max_delay_ms / 1e3
        while True:
            with self._lock:
                while not self._queue and self._running:
                    self._not_empty.wait()
                if not self._queue:
                    break  # stopped and drained
                # Deadline/size trigger: dispatch when the oldest request
                # has waited max_delay_ms or max_batch_size are queued.
                deadline = self._queue[0].submitted_at + max_delay_s
                while (self._running
                       and len(self._queue) < self.config.max_batch_size):
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._not_empty.wait(remaining)
                count = min(len(self._queue), self.config.max_batch_size)
                batch = [self._queue.popleft() for _ in range(count)]
                self._inflight = batch
                self._not_full.notify_all()
            if self._tracer is not None:
                dispatched = time.perf_counter()
                for request in batch:
                    if request.trace is not None:
                        request.trace.add_stage("queue", request.submitted_at,
                                                dispatched, "server")
            # The batcher-loop injection point: a raise here unwinds into
            # _batcher_main's crash handler with the batch still in-flight
            # — exactly the torn state the supervisor must recover.
            faults.check("serve.batcher")
            try:
                self.core.process_batch(batch)
            except Exception as exc:  # noqa: BLE001 — the loop must survive
                # A surprise error outside the hardened group path fails
                # this batch's requests instead of killing the batcher and
                # stranding every future request.
                unfinished = [request for request in batch
                              if not request.done()]
                self.core.count("failed", len(unfinished))
                for request in unfinished:
                    request._finish(RequestStatus.FAILED, error=exc)
            finally:
                with self._lock:
                    self._inflight = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _plan_digest(self, db_name, plan):
        return self.core.plan_digest(db_name, plan)

    def stats(self):
        """Request/batch/cache/swap/fault counters, batch-size histogram,
        and per-deployment breaker states."""
        stats = self.core.stats()
        with self._lock:
            queue_high_water = self._queue_high_water
        # Keep the key order stable: queue_high_water sits between
        # mean_batch_size and result_cache_entries, as it always has.
        breakers = stats.pop("breakers")
        cache_entries = stats.pop("result_cache_entries")
        stats["queue_high_water"] = queue_high_water
        stats["result_cache_entries"] = cache_entries
        stats["breakers"] = breakers
        return stats

    @property
    def _dbs(self):
        return self.core.dbs

    def __repr__(self):
        return (f"PredictorServer(dbs={sorted(self.core.dbs)}, "
                f"max_batch={self.config.max_batch_size}, "
                f"running={self._thread is not None})")
