"""Model registry: versioned, content-addressed zero-shot model deployments.

The registry turns trained :class:`~repro.core.ZeroShotCostModel` objects
into *deployments* an online predictor can serve:

* **Content addressing** — every published checkpoint is stored under the
  model's :meth:`~repro.core.ZeroShotCostModel.state_digest` (a digest of
  the parameter/scaler arrays, not the ``.npz`` container).  Publishing the
  same state twice writes one payload; two different states can never
  collide.  Payloads are the exact bytes :meth:`ZeroShotCostModel.save`
  writes, so a deployment round-trips through :mod:`repro.nn.serialize`
  with dtypes intact — a float32 checkpoint reloads bit-identically.
* **Versioned manifests** — each logical model name has a manifest listing
  its versions, the currently *active* one, and the promotion history.
  Manifests live in the :class:`~repro.bench.store.ArtifactStore` (kind
  ``manifest``), whose temp-file-plus-rename write makes every
  :meth:`promote` / :meth:`rollback` atomic on disk: a concurrent reader
  sees either the old manifest or the new one, never a torn state.
* **Checksum-verified hydration with quarantine** — a checkpoint read is
  verified twice: the store checks the payload checksum, and the registry
  re-derives the loaded model's :meth:`state_digest` and compares it to
  the content address.  A corrupt or torn ``deploy`` entry is *quarantined*
  (moved to ``<store>/quarantine/deploy/``, never deleted blind), the
  damaged version is marked in the manifest, and — when it was the active
  version — the manifest re-resolves to the most recent previous good
  version, so serving degrades to known-good state instead of wedging.
  Hydration failures raise the typed :class:`HydrationError` (a
  :class:`RoutingError`); no bare ``KeyError``/``OSError`` leaks.
  :meth:`verify` audits every deployment against its content key on
  demand.
* **Database-fingerprint compatibility** — deployments record the
  :func:`~repro.featurization.database_digest` of every database they were
  trained on (or declared compatible with).  :meth:`route` resolves a
  request's database digest to a compatible deployment, falling back to the
  *default* model for unseen databases — the zero-shot case the paper is
  about, and the BRAD-style multi-model routing the predictor server uses.
* **Hot-swap signalling** — every mutation (including a quarantine) bumps
  :attr:`generation`; the in-process predictor compares the counter per
  batch (one int read) and re-resolves its routes only when something
  actually changed, so a promote takes effect between micro-batches with
  zero downtime.  Cross-process readers call :meth:`refresh` to re-read
  the manifests from disk.

Perfstats: ``serve.registry.publish`` / ``.promote`` / ``.rollback`` /
``.quarantine`` / ``.verify``.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .. import perfstats
from ..bench.store import ArtifactStore
from ..core.api import ZeroShotCostModel
from ..featurization import database_digest
from ..nn.serialize import load_state
from ..robustness import faults

__all__ = ["ModelRegistry", "ModelDeployment", "RoutingError",
           "HydrationError"]

_DEPLOY_KIND = "deploy"
_MANIFEST_KIND = "manifest"
_REGISTRY_META = "__registry__"


class RoutingError(RuntimeError):
    """No deployment can serve the request (unknown model, no default, or
    every candidate checkpoint failed to hydrate)."""


class HydrationError(RoutingError):
    """A deployment's checkpoint failed to hydrate (missing, corrupt, or
    its content digest does not match the content address).  The damaged
    entry has been quarantined and the manifest re-resolved."""


@dataclass(frozen=True)
class ModelDeployment:
    """Immutable metadata for one published model version."""

    name: str
    version: int
    checkpoint_key: str  # hex state digest; content address of the payload
    db_digests: tuple    # hex database digests this deployment serves
    hidden_dim: int
    dtype: str

    def as_dict(self):
        return {"name": self.name, "version": self.version,
                "checkpoint_key": self.checkpoint_key,
                "db_digests": list(self.db_digests),
                "hidden_dim": self.hidden_dim, "dtype": self.dtype}

    @classmethod
    def from_dict(cls, payload):
        return cls(name=payload["name"], version=payload["version"],
                   checkpoint_key=payload["checkpoint_key"],
                   db_digests=tuple(payload["db_digests"]),
                   hidden_dim=payload["hidden_dim"], dtype=payload["dtype"])


class ModelRegistry:
    """Publish / promote / rollback / route / load / verify deployments.

    ``store`` is an :class:`~repro.bench.store.ArtifactStore` (or a path,
    which becomes one).  All mutating operations are serialized by an
    internal lock; on-disk manifest writes are atomic, so a second registry
    over the same directory (another process) sees consistent state after
    :meth:`refresh`.
    """

    def __init__(self, store, max_loaded=8):
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        self.generation = 0
        self._lock = threading.RLock()
        # checkpoint_key -> ZeroShotCostModel; bounded LRU so repeated
        # swap/rollback cycles between a few versions never re-read disk.
        self._loaded = OrderedDict()
        self._max_loaded = int(max_loaded)
        self._manifests = {}
        meta = store.load(_MANIFEST_KIND, store.key(_REGISTRY_META))
        self._names = list(meta["names"]) if meta else []
        self._default = meta["default"] if meta else None
        for name in self._names:
            manifest = store.load(_MANIFEST_KIND, store.key(name))
            if manifest is not None:
                self._manifests[name] = manifest
        self._rebuild_routing()

    # ------------------------------------------------------------------
    # Publishing and version management
    # ------------------------------------------------------------------
    def publish(self, name, model, dbs=(), db_digests=(), activate=True,
                default=False):
        """Publish ``model`` as a new version of ``name``.

        ``dbs`` (Database objects) and/or ``db_digests`` (hex strings)
        declare which databases the deployment is compatible with — they
        become routing targets.  ``activate=True`` (the default) promotes
        the new version immediately; ``default=True`` additionally makes
        ``name`` the registry's fallback model for unrouted databases
        (nothing becomes the fallback implicitly — an undeclared database
        against a registry with no default fails fast instead of being
        served by a model that never claimed it).  Returns the
        :class:`ModelDeployment`.
        """
        digests = tuple(database_digest(db).hex() for db in dbs)
        digests += tuple(db_digests)
        checkpoint_key = model.state_digest()
        with self._lock:
            # Content-addressed: identical state publishes one payload.
            if not self.store.contains(_DEPLOY_KIND, checkpoint_key):
                self.store.save(_DEPLOY_KIND, checkpoint_key,
                                model.to_bytes())
            manifest = self._manifests.get(
                name, {"name": name, "versions": [], "active": None,
                       "history": [], "quarantined": []})
            deployment = ModelDeployment(
                name=name, version=len(manifest["versions"]) + 1,
                checkpoint_key=checkpoint_key, db_digests=digests,
                hidden_dim=model.config.hidden_dim,
                dtype=model.config.dtype)
            manifest["versions"].append(deployment.as_dict())
            if activate:
                manifest["active"] = deployment.version
                manifest["history"].append(deployment.version)
            self._write_manifest(name, manifest)
            if name not in self._names:
                self._names.append(name)
            if default:
                self._default = name
            self._write_meta()
            self._loaded[checkpoint_key] = model
            self._trim_loaded()
            self._mutated()
        perfstats.increment("serve.registry.publish")
        return deployment

    def promote(self, name, version):
        """Atomically make ``version`` the active deployment of ``name``."""
        with self._lock:
            manifest = self._manifest(name)
            if not 1 <= version <= len(manifest["versions"]):
                raise ValueError(f"{name!r} has no version {version}")
            manifest["active"] = version
            manifest["history"].append(version)
            self._write_manifest(name, manifest)
            self._mutated()
        perfstats.increment("serve.registry.promote")
        return self.active(name)

    def rollback(self, name):
        """Revert ``name`` to the previously active version (atomic)."""
        with self._lock:
            manifest = self._manifest(name)
            if len(manifest["history"]) < 2:
                raise ValueError(f"{name!r} has no previous version to "
                                 "roll back to")
            manifest["history"].pop()
            manifest["active"] = manifest["history"][-1]
            self._write_manifest(name, manifest)
            self._mutated()
        perfstats.increment("serve.registry.rollback")
        return self.active(name)

    def set_default(self, name):
        """Make ``name`` the fallback model for unrouted databases."""
        with self._lock:
            self._manifest(name)  # validates existence
            self._default = name
            self._write_meta()
            self._mutated()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self):
        return tuple(self._names)

    @property
    def default_model(self):
        return self._default

    def deployments(self, name):
        """All published versions of ``name``, oldest first."""
        manifest = self._manifest(name)
        return [ModelDeployment.from_dict(d) for d in manifest["versions"]]

    def quarantined_versions(self, name):
        """Version numbers of ``name`` whose checkpoints were quarantined."""
        return tuple(self._manifest(name).get("quarantined", ()))

    def find_version(self, name, checkpoint_key):
        """Newest version of ``name`` backed by ``checkpoint_key`` (or None).

        Checkpoints are content-addressed, so this makes re-publishing a
        deterministically retrained candidate idempotent: a controller that
        crashed after ``publish`` but before recording the fact finds the
        existing version on retry instead of minting a duplicate.
        """
        try:
            manifest = self._manifest(name)
        except RoutingError:
            return None
        for entry in reversed(manifest["versions"]):
            if entry["checkpoint_key"] == checkpoint_key:
                return entry["version"]
        return None

    def active(self, name):
        """The active :class:`ModelDeployment` of ``name`` (None if none)."""
        manifest = self._manifest(name)
        if manifest["active"] is None:
            return None
        return ModelDeployment.from_dict(
            manifest["versions"][manifest["active"] - 1])

    def route(self, db_digest):
        """The deployment serving a database digest (BRAD-style routing).

        A database some *active* deployment explicitly lists routes there;
        anything else — the unseen databases zero-shot models exist for —
        falls back to the default model's active deployment.  Returns
        ``None`` when nothing is routable (no compatible model and no
        default).  Accepts bytes or hex.  Inconsistent registry state (a
        routing target whose manifest vanished) raises the typed
        :class:`RoutingError`, never a bare ``KeyError``.
        """
        if isinstance(db_digest, bytes):
            db_digest = db_digest.hex()
        with self._lock:
            name = self._routing.get(db_digest, self._default)
        if name is None:
            return None
        return self.active(name)

    def load(self, name=None, version=None, deployment=None):
        """The :class:`ZeroShotCostModel` of a deployment (memoized).

        Without arguments loads the default model's active deployment;
        ``version=None`` means the active version.  Reloads hit a small
        in-memory LRU keyed on checkpoint content, so swap/rollback cycles
        between recent versions never touch disk.

        Hydration is checksum-verified end to end: the store validates the
        payload checksum, and the deserialized model's
        :meth:`~repro.core.ZeroShotCostModel.state_digest` must equal the
        content address it was stored under.  Any failure quarantines the
        entry, re-resolves the manifest to the previous good version (see
        :meth:`quarantine_version`) and raises :class:`HydrationError`.
        """
        deployment = self._resolve_deployment(name, version, deployment)
        return self._load_cached(deployment, self._hydrate, key_prefix=None)

    def load_mmap(self, name=None, version=None, deployment=None):
        """Like :meth:`load`, but hydrate via memory-mapped arrays.

        The checkpoint's ``.npz`` members are materialized once (per
        content address) as per-array ``.npy`` files on disk — see
        :meth:`materialize_checkpoint` — and every parameter and scaler
        array is then a read-only ``np.load(mmap_mode="r")`` view of those
        files.  Any number of processes serving the same checkpoint share
        one page-cache copy instead of each deserializing its own; this is
        how the serving fleet's forked workers hydrate.

        The content address is verified exactly as in :meth:`load` (the
        mapped model's :meth:`~repro.core.ZeroShotCostModel.state_digest`
        must equal the checkpoint key), with the same quarantine +
        :class:`HydrationError` behavior on damage.  Models returned here
        are inference-only: their parameters are not writable.
        """
        deployment = self._resolve_deployment(name, version, deployment)
        return self._load_cached(deployment, self._hydrate_mmap,
                                 key_prefix="mmap")

    def _resolve_deployment(self, name, version, deployment):
        if deployment is not None:
            return deployment
        name = name or self._default
        if name is None:
            raise ValueError("registry has no default model")
        if version is None:
            deployment = self.active(name)
            if deployment is None:
                raise ValueError(f"{name!r} has no active version")
            return deployment
        manifest = self._manifest(name)
        if not 1 <= version <= len(manifest["versions"]):
            raise ValueError(f"{name!r} has no version {version}")
        return ModelDeployment.from_dict(manifest["versions"][version - 1])

    def _load_cached(self, deployment, hydrate, key_prefix):
        key = deployment.checkpoint_key
        cache_key = key if key_prefix is None else (key_prefix, key)
        with self._lock:
            model = self._loaded.get(cache_key)
            if model is not None:
                self._loaded.move_to_end(cache_key)
                return model
        model, failure = hydrate(key)
        if model is None:
            self.quarantine_version(deployment.name, deployment.version,
                                    reason=failure)
            raise HydrationError(
                f"checkpoint {key} of deployment {deployment.name} "
                f"v{deployment.version} failed to hydrate ({failure}); "
                "entry quarantined, manifest re-resolved")
        with self._lock:
            self._loaded[cache_key] = model
            self._trim_loaded()
        return model

    def _hydrate(self, key):
        """Read + verify one checkpoint: ``(model, None)`` or
        ``(None, failure_code)``.  Never raises for damaged payloads."""
        payload = self.store.load(_DEPLOY_KIND, key, on_corrupt="quarantine")
        if payload is None:
            return None, "missing-or-corrupt"
        try:
            payload = faults.corrupt("registry.hydrate", payload,
                                     keys=(key,))
            model = ZeroShotCostModel.from_bytes(payload)
        except Exception:  # torn/corrupt checkpoint bytes
            return None, "missing-or-corrupt"
        if model.state_digest() != key:
            return None, "digest-mismatch"
        return model, None

    # ------------------------------------------------------------------
    # mmap hydration (the fleet's shared-checkpoint path)
    # ------------------------------------------------------------------
    def mmap_dir(self, key):
        """Where a checkpoint's materialized ``.npy`` arrays live."""
        return self.store.root / "mmap" / key

    def materialize_checkpoint(self, key):
        """Extract a checkpoint's arrays to per-array ``.npy`` files.

        ``np.load(mmap_mode="r")`` cannot memory-map members *inside* an
        ``.npz`` zip container (they are decompressed/copied), so the mmap
        path materializes each array as its own ``.npy`` file under
        ``<store>/mmap/<content-key>/`` plus a ``manifest.json`` naming
        them.  The extraction is atomic: arrays are written into a private
        temp directory and the whole directory is renamed into place, so a
        concurrent reader sees either nothing or a complete extraction —
        never a torn one.  Losing the rename race to another process is
        fine: the loser discards its temp directory and uses the winner's
        (both extracted identical content-addressed bytes).

        Returns the directory path, or ``None`` when the payload is
        missing or unreadable.  Idempotent and safe to call from any
        number of processes concurrently.
        """
        target = self.mmap_dir(key)
        if (target / "manifest.json").exists():
            return target
        payload = self.store.load(_DEPLOY_KIND, key, on_corrupt="quarantine")
        if payload is None:
            return None
        try:
            payload = faults.corrupt("registry.hydrate", payload,
                                     keys=(key,))
            state, metadata = load_state(io.BytesIO(payload))
        except Exception:  # torn/corrupt checkpoint bytes
            return None
        tmp = target.parent / f".tmp-{key}-{os.getpid()}"
        shutil.rmtree(tmp, ignore_errors=True)
        tmp.mkdir(parents=True)
        names = sorted(state)
        for index, name in enumerate(names):
            np.save(tmp / f"arr{index:04d}.npy", np.asarray(state[name]))
        with open(tmp / "manifest.json", "w") as fh:
            json.dump({"names": names, "metadata": metadata}, fh)
        try:
            os.rename(tmp, target)
        except OSError:
            # Another process renamed its extraction first; use theirs.
            shutil.rmtree(tmp, ignore_errors=True)
        return target

    def _hydrate_mmap(self, key):
        """Materialize + map + verify one checkpoint: ``(model, None)`` or
        ``(None, failure_code)``.  Never raises for damaged payloads."""
        try:
            root = self.materialize_checkpoint(key)
        except Exception:
            return None, "missing-or-corrupt"
        if root is None:
            return None, "missing-or-corrupt"
        try:
            with open(root / "manifest.json") as fh:
                manifest = json.load(fh)
            state = {name: np.load(root / f"arr{index:04d}.npy",
                                   mmap_mode="r", allow_pickle=False)
                     for index, name in enumerate(manifest["names"])}
            model = ZeroShotCostModel.from_state(state, manifest["metadata"],
                                                 copy=False)
        except Exception:  # torn/unreadable extraction
            return None, "missing-or-corrupt"
        if model.state_digest() != key:
            return None, "digest-mismatch"
        return model, None

    def verify(self):
        """Audit every deployment's checkpoint against its content key.

        Loads each distinct checkpoint payload once, re-derives its
        :meth:`state_digest` and compares it to the content address.
        Returns ``{name: {version: "ok" | "missing-or-corrupt" |
        "digest-mismatch" | "quarantined"}}``.  Damaged entries are
        quarantined (file moved aside, manifest re-resolved) exactly as a
        serving-path hydration failure would.
        """
        perfstats.increment("serve.registry.verify")
        report = {}
        verified = {}  # checkpoint_key -> status, one disk read per payload
        for name in self.names():
            report[name] = {}
            quarantined = set(self.quarantined_versions(name))
            for deployment in self.deployments(name):
                if deployment.version in quarantined:
                    report[name][deployment.version] = "quarantined"
                    continue
                key = deployment.checkpoint_key
                status = verified.get(key)
                if status is None:
                    with self._lock:
                        cached = self._loaded.get(key)
                    if cached is not None and cached.state_digest() == key:
                        status = "ok"
                    else:
                        model, failure = self._hydrate(key)
                        status = "ok" if model is not None else failure
                    verified[key] = status
                if status != "ok":
                    self.quarantine_version(name, deployment.version,
                                            reason=status)
                report[name][deployment.version] = status
        return report

    def quarantine_version(self, name, version, reason=""):
        """Mark ``version`` of ``name`` damaged and re-resolve the manifest.

        The checkpoint file (if still present) moves to the store's
        quarantine directory — never a blind delete.  When the quarantined
        version was active, the manifest's active pointer re-resolves to
        the most recent previous version whose checkpoint is distinct and
        not itself quarantined (promotion history first, then any
        version); with no good version left the model deactivates.  Every
        mutation bumps :attr:`generation`, so attached servers re-resolve
        routes immediately.
        """
        with self._lock:
            manifest = self._manifest(name)
            if not 1 <= version <= len(manifest["versions"]):
                raise ValueError(f"{name!r} has no version {version}")
            quarantined = manifest.setdefault("quarantined", [])
            if version not in quarantined:
                quarantined.append(version)
            bad_key = manifest["versions"][version - 1]["checkpoint_key"]
            self.store.quarantine(_DEPLOY_KIND, bad_key)
            self._loaded.pop(bad_key, None)
            self._loaded.pop(("mmap", bad_key), None)
            # The extraction is derived data; the payload itself is what
            # gets preserved in quarantine.
            shutil.rmtree(self.mmap_dir(bad_key), ignore_errors=True)
            if manifest["active"] == version:
                manifest["active"] = self._previous_good(manifest, bad_key)
            self._write_manifest(name, manifest)
            self._mutated()
        perfstats.increment("serve.registry.quarantine")
        return self.active(name)

    @staticmethod
    def _previous_good(manifest, bad_key):
        """The freshest non-quarantined version with a distinct checkpoint."""
        quarantined = set(manifest.get("quarantined", ()))
        candidates = [v for v in reversed(manifest["history"])
                      if v not in quarantined]
        candidates += [d["version"] for d in reversed(manifest["versions"])
                       if d["version"] not in quarantined]
        for candidate in candidates:
            entry = manifest["versions"][candidate - 1]
            if entry["checkpoint_key"] != bad_key:
                return candidate
        return None

    def refresh(self):
        """Re-read every manifest from disk (cross-process visibility).

        Bumps :attr:`generation` so attached servers re-resolve their
        routes on the next batch.  The new state is built aside and
        swapped in with single rebinds, so concurrent readers (a serving
        batcher mid-route) always observe either the old view or the new
        one — never a half-populated dict.
        """
        with self._lock:
            meta = self.store.load(_MANIFEST_KIND,
                                   self.store.key(_REGISTRY_META))
            names = list(meta["names"]) if meta else list(self._names)
            manifests = {}
            for name in names:
                manifest = self.store.load(_MANIFEST_KIND,
                                           self.store.key(name))
                if manifest is not None:
                    manifests[name] = manifest
            self._names = names
            if meta:
                self._default = meta["default"]
            self._manifests = manifests
            self._mutated()

    # ------------------------------------------------------------------
    def _manifest(self, name):
        manifest = self._manifests.get(name)
        if manifest is None:
            raise RoutingError(f"no model {name!r} in the registry")
        return manifest

    def _write_manifest(self, name, manifest):
        self.store.save(_MANIFEST_KIND, self.store.key(name), manifest)
        self._manifests[name] = manifest

    def _write_meta(self):
        self.store.save(_MANIFEST_KIND, self.store.key(_REGISTRY_META),
                        {"names": list(self._names),
                         "default": self._default})

    def _rebuild_routing(self):
        routing = {}
        for name in self._names:
            manifest = self._manifests.get(name)
            if not manifest or manifest["active"] is None:
                continue
            active = manifest["versions"][manifest["active"] - 1]
            for digest in active["db_digests"]:
                routing[digest] = name
        self._routing = routing

    def _mutated(self):
        self._rebuild_routing()
        self.generation += 1

    def _trim_loaded(self):
        while len(self._loaded) > self._max_loaded:
            self._loaded.popitem(last=False)

    def __repr__(self):
        return (f"ModelRegistry({str(self.store.root)!r}, "
                f"models={len(self._names)}, default={self._default!r})")
