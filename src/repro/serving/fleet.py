"""Scale-out serving: a sharding router over forked predictor workers.

The in-process :class:`~repro.serving.server.PredictorServer` is capped by
the GIL at roughly one core no matter the offered load.  This module is the
BRAD-style front-end/worker split that removes the cap:

* **A router in the client process** sharding requests by *database
  fingerprint* across a pool of long-lived forked workers
  (:class:`~repro.bench.parallel.WorkerProcess`).  Each database has a
  preferred shard; when a hot database saturates its shard (more than
  ``spill_threshold`` requests outstanding), requests spill to the least
  loaded worker — placement is a pure performance decision, because
  predictions are bit-identical wherever they run (see below).
* **Workers run the same serving core** (:class:`~repro.serving.core.
  ServingCore`) the thread server uses — micro-batch coalescing,
  retry/backoff, poisoned-batch bisection, per-request deadlines, circuit
  breaker with flagged-``DEGRADED`` analytical fallback — over checkpoints
  hydrated via the registry's mmap path (:meth:`~repro.serving.registry.
  ModelRegistry.load_mmap`): every worker's parameters are read-only views
  of one content-addressed on-disk extraction, one page-cache copy for the
  whole fleet, no per-worker deserialization.
* **Handles cross the pipe, semantics don't change.**  ``submit`` returns
  the same :class:`~repro.serving.core.PredictionRequest` handle the
  in-process server does (``PENDING``/``DONE``/``CACHED``/``SHED``/
  ``FAILED``/``DEGRADED``); requests and results move over per-worker
  duplex pipes.  Repeat plans travel as small integer tokens: router and
  worker maintain *mirrored* bounded LRU plan tables (pipe messages are
  ordered and both sides apply identical insert/touch/evict sequences), so
  a hot plan is pickled once per worker, not once per request.
* **Exactly-once completion across worker death.**  The router supervises
  its workers: a dead worker (crash, kill -9) is detected through its pipe,
  a replacement is forked on a fresh pipe, and every request whose result
  had not been received is re-sent — the PR-6 batcher-supervisor contract
  extended across process boundaries.  Execution is at-least-once (a
  result in flight when the worker died is recomputed, bit-identically);
  *completion* is exactly-once — each handle resolves exactly one time, no
  request is lost, none is answered twice.
* **Zero-downtime promote/rollback, fleet-wide.**  The router watches
  ``registry.generation`` (one int read per submit) and broadcasts a
  ``refresh`` to all workers only when the registry actually changed;
  workers re-read the atomic on-disk manifests and re-resolve routes
  between micro-batches.  In-flight batches finish on the model they
  started with.

**Fleet equivalence contract**: for any request mix, any shard placement
and any worker count, every ``DONE``/``CACHED`` value is bit-identical to
a direct :func:`~repro.core.training.predict_runtimes` call on the same
model — including across worker kills and restarts.  This is inherited
from the row-stable inference kernels: per-plan outputs are pure functions
of the plan, so *where* a plan is served can never change *what* it
returns.

Observability: ``fleet.worker.spawn`` / ``fleet.worker.restart``,
``fleet.route.hit`` (request landed on its preferred shard) /
``fleet.route.rebalance`` (spill to the least-loaded worker, or a
generation-change placement refresh), and ``fleet.queue.depth`` (high-water
mark of fleet-wide outstanding requests), plus every ``serve.*`` counter
inside each worker.  :meth:`PredictorFleet.stats` aggregates worker cores'
counters into the same shape :meth:`PredictorServer.stats` reports, so the
load harness (:func:`~repro.serving.loadgen.run_load`) drives a fleet
unchanged.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import Counter, OrderedDict, deque

import numpy as np

from .. import perfstats
from ..bench.parallel import WorkerProcess
from ..featurization import database_digest, plan_fingerprint
from ..robustness import faults
from .core import (DeadlineExceededError, DegradedResponseError,
                   PredictionRequest, RequestShedError, RequestStatus,
                   ServerClosedError, ServerConfig, ServingCore)
from .registry import HydrationError, ModelRegistry, RoutingError

__all__ = ["PredictorFleet"]

# Mirrored plan-LRU size: router and worker evict identically at this bound.
_TOKEN_LRU_BOUND = 4096

_ERROR_TYPES = {
    "RoutingError": RoutingError,
    "HydrationError": HydrationError,
    "DeadlineExceededError": DeadlineExceededError,
    "DegradedResponseError": DegradedResponseError,
    "ServerClosedError": ServerClosedError,
    "RequestShedError": RequestShedError,
    "InjectedFault": faults.InjectedFault,
}


def _decode_error(encoded):
    """Rebuild a typed exception from its ``(class name, message)`` wire
    form; unknown classes come back as RuntimeError with the name kept."""
    if encoded is None:
        return None
    name, message = encoded
    exc_type = _ERROR_TYPES.get(name)
    if exc_type is not None:
        return exc_type(message)
    return RuntimeError(f"{name}: {message}")


def _fleet_worker_main(conn, index, registry_root, dbs, config,
                       fault_schedule):
    """Worker process entry point: a serving core fed by the pipe.

    Hydrates its models through the registry's mmap path (shared page
    cache), coalesces pipe-delivered requests into micro-batches with the
    same deadline/size trigger as the thread server, and ships results
    back in batches.  Exits on ``stop``, pipe EOF, or parent death (the
    process is a daemon).
    """
    if fault_schedule is not None:
        faults.install(fault_schedule)
    registry = ModelRegistry(registry_root)
    core = ServingCore(registry, dbs, config=config, mmap=True)
    plans = OrderedDict()          # token -> plan (mirror of router table)
    control = deque()              # control messages pulled mid-drain
    max_delay_s = config.max_delay_ms / 1e3

    def answer_stats():
        try:
            conn.send(("stats", core.stats()))
        except OSError:
            pass

    while True:
        if control:
            message = control.popleft()
        else:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
        kind = message[0]
        if kind == "stop":
            answer_stats()  # final counters for post-shutdown stats()
            return
        if kind == "refresh":
            registry.refresh()
            core.resolve_routes()
            continue
        if kind == "stats_req":
            answer_stats()
            continue
        # kind == "req": coalesce a micro-batch (deadline/size trigger).
        batch = [message]
        deadline = time.perf_counter() + max_delay_s
        while len(batch) < config.max_batch_size:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                if not conn.poll(remaining):
                    break
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "req":
                batch.append(message)
            else:
                control.append(message)
                if message[0] == "stop":
                    break  # serve what we have, then exit via control
        requests, req_ids = [], []
        for _, req_id, db_name, token, payload, submitted_at in batch:
            if payload is not None:
                plans[token] = payload
                while len(plans) > _TOKEN_LRU_BOUND:
                    plans.popitem(last=False)
            else:
                plans.move_to_end(token)
            request = PredictionRequest(db_name, plans[token])
            # The router's submit timestamp: deadlines and latency count
            # pipe time (perf_counter is system-wide on this platform).
            request.submitted_at = submitted_at
            requests.append(request)
            req_ids.append(req_id)
        core.process_batch(requests)
        results = []
        for req_id, request in zip(req_ids, requests):
            error = None
            if request.error is not None:
                error = (type(request.error).__name__, str(request.error))
            results.append((req_id, request.status.value, request.value,
                            error, request.served_by, request.retries))
        try:
            conn.send(("res", results))
        except OSError:
            return  # router gone; daemon exit


class _WorkerSlot:
    """Router-side state for one worker: pipe, pending map, plan tokens."""

    __slots__ = ("index", "wp", "pending", "tokens", "next_token",
                 "send_lock", "epoch", "closing", "last_stats",
                 "stats_event")

    def __init__(self, index, wp):
        self.index = index
        self.wp = wp
        self.pending = OrderedDict()   # req_id -> (request, digest)
        self.tokens = OrderedDict()    # plan digest -> token (mirrored LRU)
        self.next_token = 0
        self.send_lock = threading.Lock()  # token table + wire order
        self.epoch = 0                 # bumped per restart
        self.closing = False
        self.last_stats = None
        self.stats_event = threading.Event()

    def token_for(self, digest, plan):
        """Token + payload for one request (caller holds ``send_lock``).

        Returns ``(token, plan)`` the first time a plan crosses this pipe
        and ``(token, None)`` afterwards; the insert/touch/evict sequence
        is exactly what the worker applies on receipt, so both tables stay
        mirrored.
        """
        token = self.tokens.get(digest)
        if token is not None:
            self.tokens.move_to_end(digest)
            return token, None
        token = self.next_token
        self.next_token += 1
        self.tokens[digest] = token
        while len(self.tokens) > _TOKEN_LRU_BOUND:
            self.tokens.popitem(last=False)
        return token, plan

    def send(self, req_id, db_name, digest, plan, submitted_at):
        """Encode and send one request (token assignment + send atomic)."""
        with self.send_lock:
            token, payload = self.token_for(digest, plan)
            try:
                self.wp.conn.send(("req", req_id, db_name, token, payload,
                                   submitted_at))
            except (OSError, BrokenPipeError):
                # Worker died under us: the request is registered in
                # `pending`, so the supervisor's restart will re-send it.
                pass


class PredictorFleet:
    """Multi-process prediction service: router + forked worker pool.

    Drop-in for :class:`~repro.serving.server.PredictorServer` where it
    counts: ``submit`` / ``submit_many`` / ``predict`` / ``stats`` /
    context-manager lifecycle all match, so the load harness and the
    benchmarks drive either transparently.

    ::

        registry = ModelRegistry(root)
        registry.publish("zs", model, dbs=[db], default=True)
        with PredictorFleet(registry, {"imdb": db}, n_workers=4) as fleet:
            runtime_ms = fleet.submit(plan, "imdb").result()

    ``registry`` may be a :class:`~repro.serving.registry.ModelRegistry`
    or a store path.  Workers fork at :meth:`start`: they inherit ``dbs``
    copy-on-write and hydrate checkpoints from the registry's *on-disk*
    state via mmap — publish before starting the fleet, and call
    :meth:`refresh` after out-of-band registry changes.

    ``fault_schedule`` installs a deterministic
    :class:`~repro.robustness.faults.FaultSchedule` inside every worker at
    startup (each worker owns independent seeded streams), for chaos tests
    of the fleet path.
    """

    def __init__(self, registry, dbs, config=None, n_workers=2,
                 spill_threshold=16, fault_schedule=None):
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.config = config or ServerConfig()
        self.n_workers = max(1, int(n_workers))
        self.spill_threshold = max(1, int(spill_threshold))
        self._fault_schedule = fault_schedule
        self._dbs = dict(dbs)
        self._db_digests = {name: database_digest(db).hex()
                            for name, db in self._dbs.items()}
        self._db_fingerprints = {name: db.fingerprint()
                                 for name, db in self._dbs.items()}
        # Shard preference: database fingerprint -> worker index.
        self._preferred = {name: int(digest[:8], 16) % self.n_workers
                           for name, digest in self._db_digests.items()}
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._all_drained = threading.Condition(self._lock)
        self._digest_memo = OrderedDict()
        self._counts = Counter()
        self._outstanding = 0
        self._queue_high_water = 0
        self._req_seq = 0
        self._slots = []
        self._running = False
        self._accepting = False
        self._seen_generation = registry.generation

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._running:
            raise RuntimeError("fleet already started")
        registry_root = str(self.registry.store.root)
        self._slots = []
        for index in range(self.n_workers):
            wp = WorkerProcess(
                _fleet_worker_main,
                args=(index, registry_root, self._dbs, self.config,
                      self._fault_schedule),
                name=f"repro-fleet-{index}")
            wp.start()
            perfstats.increment("fleet.worker.spawn")
            self._slots.append(_WorkerSlot(index, wp))
        self._running = True
        self._accepting = True
        for slot in self._slots:
            self._spawn_collector(slot)
        return self

    def close(self, drain=True):
        """Stop the fleet; every pending handle resolves, none hangs.

        ``drain=True`` waits for all outstanding requests to complete
        first; ``drain=False`` fails them immediately with a typed
        :class:`ServerClosedError`.
        """
        with self._lock:
            if not self._running:
                return
            self._accepting = False
            if drain:
                while self._outstanding > 0:
                    self._all_drained.wait(0.1)
            dropped = []
            if not drain:
                for slot in self._slots:
                    dropped.extend(request for request, _
                                   in slot.pending.values())
                    slot.pending.clear()
                self._outstanding = 0
                self._counts["failed"] += len(dropped)
            self._running = False
            for slot in self._slots:
                slot.closing = True
            self._not_full.notify_all()
            self._all_drained.notify_all()
        error = ServerClosedError("fleet stopped without draining")
        for request in dropped:
            request._finish(RequestStatus.FAILED, error=error)
        for slot in self._slots:
            with slot.send_lock:
                try:
                    slot.wp.conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
        # Workers answer "stop" with their final stats before exiting;
        # collectors stash them for post-shutdown stats().
        for slot in self._slots:
            if slot.wp.process is not None:
                slot.wp.process.join(timeout=5.0)
            slot.wp.stop()

    def stop(self, drain=True):
        """Alias for :meth:`close` (PredictorServer parity)."""
        self.close(drain=drain)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    # Client API (PredictorServer-compatible)
    # ------------------------------------------------------------------
    def submit(self, plan, db_name, block=False, timeout=None):
        """Submit one plan; returns a :class:`PredictionRequest` handle.

        Admission control is fleet-wide: more than ``queue_depth``
        outstanding requests shed (``block=True`` waits for space
        instead).  The request is routed to its database's preferred
        shard, spilling to the least-loaded worker when the shard is hot.
        """
        if db_name not in self._dbs:
            raise KeyError(f"database {db_name!r} is not registered with "
                           "this fleet")
        self._maybe_swap()
        request = PredictionRequest(db_name, plan)
        digest = self._plan_digest(db_name, plan)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._lock:
            self._counts["requests"] += 1
            while (self._accepting
                   and self._outstanding >= self.config.queue_depth):
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if (not block
                        or (remaining is not None and remaining <= 0)
                        or not self._not_full.wait(remaining)):
                    break
            if (not self._accepting
                    or self._outstanding >= self.config.queue_depth):
                self._counts["shed"] += 1
                perfstats.increment("serve.shed.count")
                request._finish(RequestStatus.SHED)
                return request
            req_id = self._req_seq
            self._req_seq += 1
            slot = self._route_locked(db_name)
            slot.pending[req_id] = (request, digest)
            self._outstanding += 1
            if self._outstanding > self._queue_high_water:
                perfstats.increment(
                    "fleet.queue.depth",
                    self._outstanding - self._queue_high_water)
                self._queue_high_water = self._outstanding
        slot.send(req_id, db_name, digest, plan, request.submitted_at)
        return request

    def submit_many(self, plans, db_name, block=False, timeout=None):
        return [self.submit(plan, db_name, block=block, timeout=timeout)
                for plan in plans]

    def predict(self, plans, db_name, timeout=None, allow_degraded=False):
        """Blocking bulk prediction (backpressure, never sheds)."""
        requests = self.submit_many(plans, db_name, block=True,
                                    timeout=timeout)
        values = [request.result(timeout) for request in requests]
        if not allow_degraded:
            degraded = sum(request.degraded for request in requests)
            if degraded:
                raise DegradedResponseError(
                    f"{degraded}/{len(requests)} predictions came from the "
                    "analytical fallback; pass allow_degraded=True to "
                    "accept flagged degraded values")
        return np.array(values)

    def refresh(self):
        """Re-read the registry from disk and rebroadcast to all workers."""
        self.registry.refresh()
        self._maybe_swap()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route_locked(self, db_name):
        """Preferred shard by database fingerprint, least-loaded spill."""
        preferred = self._slots[self._preferred[db_name]]
        if len(preferred.pending) < self.spill_threshold:
            perfstats.increment("fleet.route.hit")
            return preferred
        chosen = min(self._slots, key=lambda slot: len(slot.pending))
        if chosen is preferred:
            perfstats.increment("fleet.route.hit")
        else:
            perfstats.increment("fleet.route.rebalance")
            self._counts["spills"] += 1
        return chosen

    def _maybe_swap(self):
        with self._lock:
            generation = self.registry.generation
            if generation == self._seen_generation:
                return
            self._seen_generation = generation
            slots = list(self._slots)
        perfstats.increment("fleet.route.rebalance")
        for slot in slots:
            with slot.send_lock:
                try:
                    slot.wp.conn.send(("refresh",))
                except (OSError, BrokenPipeError):
                    pass  # a restarted worker re-reads the disk state anyway

    def _plan_digest(self, db_name, plan):
        """Memoized plan content fingerprint (the sharding + token key)."""
        memo_key = (id(plan), db_name)
        with self._lock:
            entry = self._digest_memo.get(memo_key)
            if entry is not None and entry[0] is plan:
                return entry[1]
        digest = plan_fingerprint(
            self._dbs[db_name], plan, self.config.cards,
            db_fingerprint=self._db_fingerprints[db_name])
        with self._lock:
            self._digest_memo[memo_key] = (plan, digest)
            while len(self._digest_memo) > 4 * max(
                    self.config.result_cache_size, 1024):
                self._digest_memo.popitem(last=False)
        return digest

    # ------------------------------------------------------------------
    # Collection + supervision
    # ------------------------------------------------------------------
    def _spawn_collector(self, slot):
        thread = threading.Thread(
            target=self._collect, args=(slot, slot.epoch),
            name=f"repro-fleet-collect-{slot.index}", daemon=True)
        thread.start()

    def _collect(self, slot, epoch):
        conn = slot.wp.conn
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "res":
                self._on_results(slot, message[1])
            elif message[0] == "stats":
                slot.last_stats = message[1]
                slot.stats_event.set()
        self._on_worker_exit(slot, epoch)

    def _on_results(self, slot, results):
        finished = []
        with self._lock:
            for result in results:
                entry = slot.pending.pop(result[0], None)
                if entry is None:
                    # Result for a request the supervisor re-sent (the
                    # original answer raced the worker's death) — its
                    # handle already completed exactly once.
                    continue
                finished.append((entry[0], result))
            self._outstanding -= len(finished)
            if finished:
                self._not_full.notify_all()
                if self._outstanding == 0:
                    self._all_drained.notify_all()
        for request, result in finished:
            _, status, value, error, served_by, retries = result
            request.retries = retries
            request._finish(RequestStatus(status), value=value,
                            error=_decode_error(error), served_by=served_by)

    def _on_worker_exit(self, slot, epoch):
        """Supervision: restart a dead worker, re-send unanswered requests.

        Every request whose result was not received goes to the
        replacement worker exactly once (results are popped from
        ``pending`` on receipt, so nothing completed is re-sent, and a
        duplicate answer from a raced in-flight result is dropped by the
        pop).  A collector observing a normal shutdown, or a stale epoch
        (the slot was already restarted), does nothing.
        """
        with self._lock:
            if not self._running or slot.closing or slot.epoch != epoch:
                return
            slot.epoch += 1
            perfstats.increment("fleet.worker.restart")
            self._counts["worker_restarts"] += 1
            resend = list(slot.pending.items())
            self._counts["requeued"] += len(resend)
            perfstats.increment("serve.fault.requeued", len(resend))
            with slot.send_lock:
                slot.wp.restart()
                slot.tokens.clear()
                slot.next_token = 0
                for req_id, (request, digest) in resend:
                    token, payload = slot.token_for(digest, request.plan)
                    try:
                        slot.wp.conn.send(
                            ("req", req_id, request.db_name, token,
                             payload, request.submitted_at))
                    except (OSError, BrokenPipeError):
                        break  # died again; the next collector restarts
            self._spawn_collector(slot)

    def kill_worker(self, index):
        """Test hook: SIGKILL one worker process (the supervisor restarts
        it and re-sends its unanswered requests).  Returns the pid."""
        process = self._slots[index].wp.process
        if process is None or not process.is_alive():
            return None
        pid = process.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worker_pids(self):
        return [slot.wp.process.pid if slot.wp.process is not None else None
                for slot in self._slots]

    def _collect_worker_stats(self):
        """Latest per-worker core stats (live query; cached after stop)."""
        pending_reply = []
        for slot in self._slots:
            if not (self._running and slot.wp.alive):
                continue
            slot.stats_event.clear()
            with slot.send_lock:
                try:
                    slot.wp.conn.send(("stats_req",))
                except (OSError, BrokenPipeError):
                    continue
            pending_reply.append(slot)
        for slot in pending_reply:
            slot.stats_event.wait(5.0)
        return [slot.last_stats for slot in self._slots]

    def stats(self):
        """Fleet-wide counters in the :meth:`PredictorServer.stats` shape,
        plus fleet extras (worker/restart/spill counts, per-worker rows)."""
        worker_stats = self._collect_worker_stats()
        summed = Counter()
        hist = Counter()
        breakers = {}
        cache_entries = 0
        for index, stats in enumerate(worker_stats):
            if not stats:
                continue
            for key in ("completed", "cached", "degraded", "failed",
                        "swaps", "retries", "bisects", "batcher_crashes",
                        "deadline_expired", "hydrate_failures"):
                summed[key] += stats[key]
            for size, count in stats["batch_size_hist"].items():
                hist[int(size)] += count
            for key, state in stats["breakers"].items():
                breakers[f"w{index}:{key}"] = state
            cache_entries += stats["result_cache_entries"]
        batches = sum(hist.values())
        sizes = sum(size * count for size, count in hist.items())
        with self._lock:
            counts = Counter(self._counts)
            queue_high_water = self._queue_high_water
            outstanding = self._outstanding
        return {
            "requests": counts["requests"],
            "completed": summed["completed"],
            "cached": summed["cached"],
            "degraded": summed["degraded"],
            "shed": counts["shed"],
            "failed": summed["failed"] + counts["failed"],
            "swaps": summed["swaps"],
            "retries": summed["retries"],
            "bisects": summed["bisects"],
            "batcher_crashes": summed["batcher_crashes"],
            "requeued": counts["requeued"],
            "deadline_expired": summed["deadline_expired"],
            "hydrate_failures": summed["hydrate_failures"],
            "batches": batches,
            "batch_size_hist": dict(sorted(hist.items())),
            "mean_batch_size": (sizes / batches) if batches else 0.0,
            "queue_high_water": queue_high_water,
            "result_cache_entries": cache_entries,
            "breakers": breakers,
            "workers": self.n_workers,
            "worker_restarts": counts["worker_restarts"],
            "spills": counts["spills"],
            "outstanding": outstanding,
            "worker_stats": worker_stats,
        }

    def __repr__(self):
        return (f"PredictorFleet(dbs={sorted(self._dbs)}, "
                f"workers={self.n_workers}, running={self._running})")
