"""Scale-out serving: a sharding router over forked predictor workers.

The in-process :class:`~repro.serving.server.PredictorServer` is capped by
the GIL at roughly one core no matter the offered load.  This module is the
BRAD-style front-end/worker split that removes the cap:

* **A router in the client process** sharding requests by *database
  fingerprint* across a pool of long-lived forked workers
  (:class:`~repro.bench.parallel.WorkerProcess`).  Each database has a
  preferred shard; when a hot database saturates its shard (more than
  ``spill_threshold`` requests outstanding), requests spill to the least
  loaded worker — placement is a pure performance decision, because
  predictions are bit-identical wherever they run (see below).
* **Workers run the same serving core** (:class:`~repro.serving.core.
  ServingCore`) the thread server uses — micro-batch coalescing,
  retry/backoff, poisoned-batch bisection, per-request deadlines, circuit
  breaker with flagged-``DEGRADED`` analytical fallback — over checkpoints
  hydrated via the registry's mmap path (:meth:`~repro.serving.registry.
  ModelRegistry.load_mmap`): every worker's parameters are read-only views
  of one content-addressed on-disk extraction, one page-cache copy for the
  whole fleet, no per-worker deserialization.
* **Handles cross the pipe, semantics don't change.**  ``submit`` returns
  the same :class:`~repro.serving.core.PredictionRequest` handle the
  in-process server does (``PENDING``/``DONE``/``CACHED``/``SHED``/
  ``FAILED``/``DEGRADED``); requests and results move over per-worker
  duplex pipes.  Repeat plans travel as small integer tokens: router and
  worker maintain *mirrored* bounded LRU plan tables (pipe messages are
  ordered and both sides apply identical insert/touch/evict sequences), so
  a hot plan is pickled once per worker, not once per request.  Each
  request also carries its ``submitted_at`` timestamp, its per-request
  ``deadline_ms`` and its :class:`~repro.serving.core.RequestPriority`
  across the pipe, so a worker drops already-expired requests *before*
  featurizing them (typed ``DeadlineExceededError``, counted).
* **Exactly-once completion across worker death — and worker hangs.**
  The router supervises its workers two ways.  A *dead* worker (crash,
  kill -9) is detected through its pipe; a *hung* worker — wedged in
  compute, deadlocked, stopped — is detected by the liveness plane: the
  router pings every worker on a heartbeat interval, tracks per-slot
  last-seen times, declares a slot unresponsive after ``hang_timeout_ms``
  of silence and SIGKILLs it, which collapses the gray failure into the
  crash path.  Either way a replacement is forked on a fresh pipe and
  every request whose result had not been received is re-sent.  Execution
  is at-least-once (a result in flight when the worker died is recomputed,
  bit-identically); *completion* is exactly-once — each handle resolves
  exactly one time, no request is lost, none is answered twice.
* **Hedged requests.**  A request pending longer than a straggler
  threshold (``hedge_after_ms``, a float or ``"auto"`` for 3× the rolling
  p99 latency) is re-sent to another live worker; the first answer wins
  and the loser's duplicate is dropped by the same raced-result path that
  absorbs restart duplicates.  Hedging is *safe* precisely because of the
  equivalence contract below: both answers are bit-identical, so which
  copy wins is unobservable in the value.  Hedging is also the recovery
  path for injected pipe ``drop`` faults — a message lost on the wire is
  simply re-sent elsewhere.
* **Priority-aware overload control.**  Admission is fleet-wide and
  priority-classed (:class:`~repro.serving.core.RequestPriority`): LOW
  traffic stops being admitted at ``brownout_fraction`` of the queue —
  and, under brownout, is answered by the analytical cost model (flagged
  ``DEGRADED``, ``served_by ("analytical", "brownout")``) instead of shed
  when ``brownout_degraded`` is on; NORMAL stops at the
  ``high_reserve_fraction`` headroom; only HIGH may fill the queue.
  Sheds are counted per class (``serve.shed.priority.<class>``).
* **Zero-downtime promote/rollback, fleet-wide.**  The router watches
  ``registry.generation`` (one int read per submit) and broadcasts a
  ``refresh`` to all workers only when the registry actually changed;
  workers re-read the atomic on-disk manifests and re-resolve routes
  between micro-batches.  In-flight batches finish on the model they
  started with.

**Fleet equivalence contract**: for any request mix, any shard placement
and any worker count, every ``DONE``/``CACHED`` value is bit-identical to
a direct :func:`~repro.core.training.predict_runtimes` call on the same
model — including across worker kills, hang-kills, hedged duplicates and
restarts.  This is inherited from the row-stable inference kernels:
per-plan outputs are pure functions of the plan, so *where* (and how many
times) a plan is served can never change *what* it returns.

Chaos: the fleet's IPC plane carries three named fault points —
``fleet.pipe.send`` / ``fleet.pipe.recv`` (drop/delay/raise on either side
of either pipe direction) and ``fleet.worker.hang`` (wedge the worker loop
before a batch; the liveness plane's SIGKILL is what ends it).  A
``fault_schedule`` passed to the fleet (one schedule, or a per-worker-index
dict) is installed *inside* each worker at spawn; a schedule installed
process-wide before :meth:`PredictorFleet.start` is inherited by the
forked workers.  Workers killed for hanging are restarted *without* the
explicit schedule — the replacement is healthy.

Observability: ``fleet.worker.spawn`` / ``fleet.worker.restart``,
``fleet.route.hit`` / ``fleet.route.rebalance``, ``fleet.queue.depth``
(high-water mark of fleet-wide outstanding requests), the liveness plane's
``fleet.hang.detected`` / ``fleet.hang.killed``, the hedging plane's
``fleet.hedge.sent`` / ``fleet.hedge.won`` / ``fleet.hedge.wasted``,
overload control's ``serve.shed.priority.<class>`` and
``fleet.brownout.count``, plus every ``serve.*`` counter inside each
worker.  :meth:`PredictorFleet.stats` aggregates worker cores' counters
into the same shape :meth:`PredictorServer.stats` reports (a worker that
does not answer within the stats timeout is reported ``unresponsive``
instead of blocking the caller), so the load harness
(:func:`~repro.serving.loadgen.run_load`) drives a fleet unchanged.
"""

from __future__ import annotations

import os
import select
import signal
import threading
import time
from collections import Counter, OrderedDict, deque

import numpy as np

from .. import perfstats
from ..bench.parallel import WorkerProcess
from ..featurization import database_digest, plan_fingerprint
from ..obs.metrics import REGISTRY, snapshot_delta
from ..obs.trace import TraceContext, Tracer
from ..optimizer.cost_model import AnalyticalCostModel
from ..robustness import faults
from .core import (DeadlineExceededError, DegradedResponseError,
                   PredictionRequest, RequestPriority, RequestShedError,
                   RequestStatus, ServerClosedError, ServerConfig,
                   ServingCore, admission_limit)
from .registry import HydrationError, ModelRegistry, RoutingError

__all__ = ["PredictorFleet"]

# Mirrored plan-LRU size: router and worker evict identically at this bound.
_TOKEN_LRU_BOUND = 4096
# Completed-hedge memory: how many hedged req_ids we remember so a loser's
# late duplicate is counted as hedge waste instead of silently dropped.
_HEDGED_DONE_BOUND = 4096
# Rolling latency window for the "auto" hedge threshold.
_LATENCY_WINDOW = 512
_HEDGE_MIN_SAMPLES = 32

_ERROR_TYPES = {
    "RoutingError": RoutingError,
    "HydrationError": HydrationError,
    "DeadlineExceededError": DeadlineExceededError,
    "DegradedResponseError": DegradedResponseError,
    "ServerClosedError": ServerClosedError,
    "RequestShedError": RequestShedError,
    "InjectedFault": faults.InjectedFault,
}


def _decode_error(encoded):
    """Rebuild a typed exception from its ``(class name, message)`` wire
    form; unknown classes come back as RuntimeError with the name kept."""
    if encoded is None:
        return None
    name, message = encoded
    exc_type = _ERROR_TYPES.get(name)
    if exc_type is not None:
        return exc_type(message)
    return RuntimeError(f"{name}: {message}")


def _fleet_worker_main(conn, index, registry_root, dbs, config,
                       fault_schedule):
    """Worker process entry point: a serving core fed by the pipe.

    Hydrates its models through the registry's mmap path (shared page
    cache), coalesces pipe-delivered requests into micro-batches with the
    same deadline/size trigger as the thread server, answers liveness
    ``ping`` messages, and ships results back in batches.  Exits on
    ``stop``, pipe EOF, or parent death (the process is a daemon).

    ``fault_schedule`` (when given) replaces whatever schedule the fork
    inherited — each worker owns independent seeded streams.  When it is
    ``None``, a schedule installed process-wide before the fork stays
    active inside the worker: that is the chaos-propagation path.
    """
    perfstats.reset()  # worker-local counters (fault.injected.* reporting)
    if fault_schedule is not None:
        faults.uninstall()  # replace anything inherited through the fork
        faults.install(fault_schedule)
    registry = ModelRegistry(registry_root)
    core = ServingCore(registry, dbs, config=config, mmap=True)
    core.proc_label = f"worker-{index}"  # span proc tag
    plans = OrderedDict()          # token -> plan (mirror of router table)
    control = deque()              # control messages pulled mid-drain
    max_delay_s = config.max_delay_ms / 1e3
    shipped_metrics = [None]       # last snapshot shipped (delta baseline)

    def pipe_send(message):
        if faults.check("fleet.pipe.send") == "drop":
            return  # counted by the fault plane; the router re-sends
        conn.send(message)

    def answer_stats():
        payload = core.stats()
        payload["fault_injected"] = {
            name: count for name, count in perfstats.counters.items()
            if name.startswith("fault.injected.")}
        # Metric deltas ride the control pipe: everything the registry
        # accumulated since the last shipped snapshot.  The router merges
        # each delta exactly once, so per-worker histograms fold into the
        # fleet-wide view without double counting.  (A delta lost to an
        # injected pipe drop undercounts — counters are best-effort under
        # chaos, values never are.)
        current = REGISTRY.snapshot()
        payload["metrics"] = snapshot_delta(current, shipped_metrics[0])
        try:
            pipe_send(("stats", payload))
        except OSError:
            return
        shipped_metrics[0] = current

    def apply_tokens(message):
        """Mirror the router's plan-table mutation for one req message.

        Applied even when the fault plane drops the request afterwards:
        the mirrored-LRU contract is about *ordered mutations*, so a
        message that physically crossed the pipe must still mutate the
        table before it evaporates.
        """
        token, payload = message[3], message[4]
        if payload is not None:
            plans[token] = payload
            while len(plans) > _TOKEN_LRU_BOUND:
                plans.popitem(last=False)
        else:
            plans.move_to_end(token)

    def receive():
        """One pipe message through the recv fault point; None = dropped."""
        message = conn.recv()
        if faults.check("fleet.pipe.recv") == "drop":
            if message[0] == "req":
                apply_tokens(message)
            return None
        return message

    while True:
        if control:
            message = control.popleft()
        else:
            try:
                message = receive()
            except (EOFError, OSError):
                return
            if message is None:
                continue
        kind = message[0]
        if kind == "stop":
            answer_stats()  # final counters for post-shutdown stats()
            return
        if kind == "ping":
            try:
                pipe_send(("pong", message[1]))
            except OSError:
                return
            continue
        if kind == "refresh":
            registry.refresh()
            core.resolve_routes()
            continue
        if kind == "stats_req":
            answer_stats()
            continue
        # kind == "req": coalesce a micro-batch (deadline/size trigger).
        batch = [message]
        recv_times = [time.perf_counter()]
        deadline = recv_times[0] + max_delay_s
        while len(batch) < config.max_batch_size:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                if not conn.poll(remaining):
                    break
                message = receive()
            except (EOFError, OSError):
                break
            if message is None:
                continue
            if message[0] == "req":
                batch.append(message)
                recv_times.append(time.perf_counter())
            else:
                control.append(message)
                if message[0] == "stop":
                    break  # serve what we have, then exit via control
        # The wedged-worker fault point: a "hang" action sleeps here until
        # the router's liveness plane SIGKILLs the process.
        faults.check("fleet.worker.hang")
        coalesced_at = time.perf_counter()
        requests, req_ids = [], []
        for message, recv_ts in zip(batch, recv_times):
            (_, req_id, db_name, token, _payload, submitted_at,
             deadline_ms, priority, trace_send_ts) = message
            apply_tokens(message)
            request = PredictionRequest(db_name, plans[token],
                                        priority=RequestPriority(priority),
                                        deadline_ms=deadline_ms)
            # The router's submit timestamp: deadlines and latency count
            # pipe time (perf_counter is system-wide on this platform).
            request.submitted_at = submitted_at
            if trace_send_ts is not None:
                # Traced request: accumulate worker-side stages into a
                # bare context (no tracer here — the stages ship back
                # with the result and the router merges them).
                trace = TraceContext("", req_id)
                trace.add_stage("worker.recv", trace_send_ts, recv_ts)
                trace.add_stage("coalesce", recv_ts, coalesced_at)
                request.trace = trace
            requests.append(request)
            req_ids.append(req_id)
        core.process_batch(requests)
        results = []
        for req_id, request in zip(req_ids, requests):
            error = None
            if request.error is not None:
                error = (type(request.error).__name__, str(request.error))
            trace_payload = (request.trace.export_remote()
                             if request.trace is not None else None)
            results.append((req_id, request.status.value, request.value,
                            error, request.served_by, request.retries,
                            trace_payload))
        try:
            pipe_send(("res", results))
        except OSError:
            return  # router gone; daemon exit


class _PendingEntry:
    """Fleet-level state for one in-flight request (router lock guarded).

    ``slots[0]`` is the original placement; later elements are hedge
    targets or restart re-sends.  Exactly-once completion pivots on this
    entry: whichever copy answers first pops it from the fleet's pending
    map (and from every owning slot), and every later duplicate finds
    nothing to complete.
    """

    __slots__ = ("req_id", "request", "digest", "slots", "hedges",
                 "last_send")

    def __init__(self, req_id, request, digest):
        self.req_id = req_id
        self.request = request
        self.digest = digest
        self.slots = []
        self.hedges = 0
        self.last_send = time.perf_counter()


class _WorkerSlot:
    """Router-side state for one worker: pipe, pending map, plan tokens,
    liveness timestamps."""

    __slots__ = ("index", "wp", "pending", "tokens", "next_token",
                 "send_lock", "epoch", "closing", "last_stats",
                 "stats_event", "last_seen", "last_ping")

    def __init__(self, index, wp):
        self.index = index
        self.wp = wp
        self.pending = OrderedDict()   # req_id -> _PendingEntry
        self.tokens = OrderedDict()    # plan digest -> token (mirrored LRU)
        self.next_token = 0
        self.send_lock = threading.Lock()  # token table + wire order
        self.epoch = 0                 # bumped per restart
        self.closing = False
        self.last_stats = None
        self.stats_event = threading.Event()
        self.last_seen = time.monotonic()  # any inbound message
        self.last_ping = 0.0               # last heartbeat sent

    def token_for(self, digest, plan):
        """Token + payload for one request (caller holds ``send_lock``).

        Returns ``(token, plan)`` the first time a plan crosses this pipe
        and ``(token, None)`` afterwards; the insert/touch/evict sequence
        is exactly what the worker applies on receipt, so both tables stay
        mirrored.
        """
        token = self.tokens.get(digest)
        if token is not None:
            self.tokens.move_to_end(digest)
            return token, None
        token = self.next_token
        self.next_token += 1
        self.tokens[digest] = token
        while len(self.tokens) > _TOKEN_LRU_BOUND:
            self.tokens.popitem(last=False)
        return token, plan

    def send_locked(self, req_id, request, digest):
        """Encode and send one request (caller holds ``send_lock``).

        The ``fleet.pipe.send`` fault point is consulted *before* the
        token assignment: a dropped message must leave the mirrored plan
        tables untouched, exactly as if it was never formed.
        """
        try:
            if faults.check("fleet.pipe.send") == "drop":
                return
        except faults.InjectedFault:
            # A raised send fault models a failed write: the request stays
            # registered in `pending`, so hedging or a restart re-sends it.
            return
        token, payload = self.token_for(digest, request.plan)
        trace = request.trace
        send_ts = None
        if trace is not None:
            # The send timestamp crosses the pipe: the worker opens its
            # "worker.recv" stage from it (perf_counter is system-wide),
            # and its presence is the "this request is traced" flag.
            send_ts = time.perf_counter()
            trace.add_stage("queue", request.submitted_at, send_ts,
                            "router")
        try:
            self.wp.conn.send(("req", req_id, request.db_name, token,
                               payload, request.submitted_at,
                               request.deadline_ms, request.priority.value,
                               send_ts))
        except (OSError, BrokenPipeError):
            # Worker died under us: the request is registered in
            # `pending`, so the supervisor's restart will re-send it.
            pass

    def send(self, req_id, request, digest):
        with self.send_lock:
            self.send_locked(req_id, request, digest)

    def send_control(self, message):
        """Send a control message through the send fault point; swallows
        pipe errors (a dead worker is handled by its collector)."""
        with self.send_lock:
            try:
                if faults.check("fleet.pipe.send") == "drop":
                    return False
            except faults.InjectedFault:
                return False
            try:
                self.wp.conn.send(message)
            except (OSError, BrokenPipeError):
                return False
        return True

    def writable(self):
        """True when the pipe can take a write right now, without blocking.

        A hung worker stops draining its pipe, the OS buffer fills, and a
        blocking send would wedge whichever thread attempts it — fatal for
        the liveness thread, which is the one responsible for *detecting*
        the hang.  Everything the liveness plane sends checks here first.
        """
        try:
            return bool(select.select([], [self.wp.conn], [], 0)[1])
        except (OSError, ValueError):
            return False

    def send_control_nowait(self, message):
        """Best-effort control send: never blocks on the lock or the pipe.

        ``False`` means the lock was contended or the buffer full — "try
        again next scan", never "wait here".  Control messages are tiny
        (well under ``PIPE_BUF``), so a positive writability check makes
        the actual send non-blocking.
        """
        if not self.send_lock.acquire(blocking=False):
            return False
        try:
            if not self.writable():
                return False
            try:
                if faults.check("fleet.pipe.send") == "drop":
                    return False
            except faults.InjectedFault:
                return False
            try:
                self.wp.conn.send(message)
            except (OSError, BrokenPipeError):
                return False
        finally:
            self.send_lock.release()
        return True

    def send_nowait(self, req_id, request, digest):
        """Best-effort request send (the hedging path); never waits for a
        contended lock or a full pipe.  On ``False`` the request stays
        registered in ``pending``, so a later hedge scan or a restart
        re-send recovers it."""
        if not self.send_lock.acquire(blocking=False):
            return False
        try:
            if not self.writable():
                return False
            self.send_locked(req_id, request, digest)
        finally:
            self.send_lock.release()
        return True


class PredictorFleet:
    """Multi-process prediction service: router + forked worker pool.

    Drop-in for :class:`~repro.serving.server.PredictorServer` where it
    counts: ``submit`` / ``submit_many`` / ``predict`` / ``stats`` /
    context-manager lifecycle all match, so the load harness and the
    benchmarks drive either transparently.

    ::

        registry = ModelRegistry(root)
        registry.publish("zs", model, dbs=[db], default=True)
        with PredictorFleet(registry, {"imdb": db}, n_workers=4) as fleet:
            runtime_ms = fleet.submit(plan, "imdb").result()

    ``registry`` may be a :class:`~repro.serving.registry.ModelRegistry`
    or a store path.  Workers fork at :meth:`start`: they inherit ``dbs``
    copy-on-write and hydrate checkpoints from the registry's *on-disk*
    state via mmap — publish before starting the fleet, and call
    :meth:`refresh` after out-of-band registry changes.

    Liveness and tail-latency knobs:

    * ``hang_timeout_ms`` — a worker silent this long (no results, no
      heartbeat pongs) while pinged is declared hung, SIGKILLed and
      restarted with its unanswered requests re-sent.  Must comfortably
      exceed the worst-case micro-batch compute time; ``None`` disables
      hang detection.
    * ``ping_interval_ms`` — heartbeat period (default: a quarter of the
      hang timeout).
    * ``hedge_after_ms`` — straggler threshold after which a pending
      request is re-sent to another live worker (first answer wins,
      duplicates dropped).  A float, ``"auto"`` (3× rolling p99 latency,
      once enough samples exist) or ``None`` (disabled, the default).
    * ``max_hedges`` — re-send budget per request.

    ``fault_schedule`` installs a deterministic
    :class:`~repro.robustness.faults.FaultSchedule` inside every worker at
    spawn — either one schedule for all workers or a ``{worker index:
    schedule}`` dict (each worker owns independent seeded streams).  A
    schedule installed process-wide before :meth:`start` propagates to the
    workers through the fork instead.  A worker restarted after a crash or
    hang-kill comes back *without* the explicit schedule: the replacement
    is healthy.
    """

    def __init__(self, registry, dbs, config=None, n_workers=2,
                 spill_threshold=16, fault_schedule=None,
                 hang_timeout_ms=10_000.0, ping_interval_ms=None,
                 hedge_after_ms=None, max_hedges=3):
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.config = config or ServerConfig()
        self.n_workers = max(1, int(n_workers))
        self.spill_threshold = max(1, int(spill_threshold))
        self._fault_schedule = fault_schedule
        self._hang_timeout_s = (None if hang_timeout_ms is None
                                else max(hang_timeout_ms, 1.0) / 1e3)
        if ping_interval_ms is not None:
            self._ping_interval_s = max(ping_interval_ms, 10.0) / 1e3
        elif self._hang_timeout_s is not None:
            self._ping_interval_s = max(self._hang_timeout_s / 4.0, 0.01)
        else:
            self._ping_interval_s = None
        if hedge_after_ms is not None and hedge_after_ms != "auto":
            hedge_after_ms = float(hedge_after_ms)
        self._hedge_after_ms = hedge_after_ms
        self.max_hedges = max(0, int(max_hedges))
        self._dbs = dict(dbs)
        self._db_digests = {name: database_digest(db).hex()
                            for name, db in self._dbs.items()}
        self._db_fingerprints = {name: db.fingerprint()
                                 for name, db in self._dbs.items()}
        # Shard preference: database fingerprint -> worker index.
        self._preferred = {name: int(digest[:8], 16) % self.n_workers
                           for name, digest in self._db_digests.items()}
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._all_drained = threading.Condition(self._lock)
        self._digest_memo = OrderedDict()
        self._counts = Counter()
        self._pending = OrderedDict()   # req_id -> _PendingEntry
        self._hedged_done = OrderedDict()  # completed hedged req_ids
        self._latencies = deque(maxlen=_LATENCY_WINDOW)
        self._analytical = {}           # db_name -> AnalyticalCostModel
        self._outstanding = 0
        self._queue_high_water = 0
        self._req_seq = 0
        self._ping_seq = 0
        # Observability: submit-order seq feeds deterministic trace ids.
        self._seq_lock = threading.Lock()
        self._submit_seq = 0
        self._tracer = (Tracer(sample_every=self.config.trace_sample_every)
                        if self.config.trace else None)
        self._slots = []
        self._running = False
        self._accepting = False
        self._seen_generation = registry.generation
        self._registry_root = str(registry.store.root)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        return self._tracer

    def attach_tracer(self, tracer):
        """Attach (or detach with ``None``) a span sink; overrides the
        config-driven tracer.  Per-request cost is zero when detached."""
        self._tracer = tracer
        return tracer

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _schedule_for(self, index):
        if isinstance(self._fault_schedule, dict):
            return self._fault_schedule.get(index)
        return self._fault_schedule

    def _worker_args(self, index, schedule):
        return (index, self._registry_root, self._dbs, self.config,
                schedule)

    def start(self):
        if self._running:
            raise RuntimeError("fleet already started")
        self._slots = []
        for index in range(self.n_workers):
            wp = WorkerProcess(
                _fleet_worker_main,
                args=self._worker_args(index, self._schedule_for(index)),
                name=f"repro-fleet-{index}")
            wp.start()
            perfstats.increment("fleet.worker.spawn")
            self._slots.append(_WorkerSlot(index, wp))
        self._running = True
        self._accepting = True
        for slot in self._slots:
            self._spawn_collector(slot)
        # Detection and hedging run on *separate* threads: hang detection
        # must stay responsive even if a hedge send ever blocks on a
        # filling pipe — the detector's kill is what unblocks such a send
        # (BrokenPipeError), so the two must never share a thread.
        if self._hang_timeout_s is not None:
            threading.Thread(target=self._liveness_loop,
                             name="repro-fleet-liveness",
                             daemon=True).start()
        if self._hedge_after_ms is not None:
            threading.Thread(target=self._hedge_loop,
                             name="repro-fleet-hedge",
                             daemon=True).start()
        return self

    def close(self, drain=True):
        """Stop the fleet; every pending handle resolves, none hangs.

        ``drain=True`` waits for all outstanding requests to complete
        first; ``drain=False`` fails them immediately with a typed
        :class:`ServerClosedError`.
        """
        with self._lock:
            if not self._running:
                return
            self._accepting = False
            if drain:
                while self._outstanding > 0:
                    self._all_drained.wait(0.1)
            dropped = []
            if not drain:
                dropped = [entry.request
                           for entry in self._pending.values()]
                self._pending.clear()
                for slot in self._slots:
                    slot.pending.clear()
                self._outstanding = 0
                self._counts["failed"] += len(dropped)
            self._running = False
            for slot in self._slots:
                slot.closing = True
            self._not_full.notify_all()
            self._all_drained.notify_all()
        error = ServerClosedError("fleet stopped without draining")
        for request in dropped:
            request._finish(RequestStatus.FAILED, error=error)
        for slot in self._slots:
            with slot.send_lock:
                try:
                    slot.wp.conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
        # Workers answer "stop" with their final stats before exiting;
        # collectors stash them for post-shutdown stats().
        for slot in self._slots:
            if slot.wp.process is not None:
                slot.wp.process.join(timeout=5.0)
            slot.wp.stop()

    def stop(self, drain=True):
        """Alias for :meth:`close` (PredictorServer parity)."""
        self.close(drain=drain)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    # Client API (PredictorServer-compatible)
    # ------------------------------------------------------------------
    def submit(self, plan, db_name, block=False, timeout=None,
               priority=RequestPriority.NORMAL, deadline_ms=None):
        """Submit one plan; returns a :class:`PredictionRequest` handle.

        Admission control is fleet-wide and priority-classed: each
        :class:`RequestPriority` has its own queue bound (see
        :func:`~repro.serving.core.admission_limit`); ``block=True`` waits
        for space under that bound instead of shedding.  A LOW request
        over its bound is *browned out* — answered immediately by the
        analytical cost model, flagged ``DEGRADED`` — when
        ``brownout_degraded`` is on; everything else sheds, counted per
        class.  ``deadline_ms`` crosses the pipe with the request, so an
        expired request is dropped worker-side before featurization.
        Admitted requests are routed to their database's preferred shard,
        spilling to the least-loaded worker when the shard is hot.
        """
        if db_name not in self._dbs:
            raise KeyError(f"database {db_name!r} is not registered with "
                           "this fleet")
        self._maybe_swap()
        priority = RequestPriority(priority)
        request = PredictionRequest(db_name, plan, priority=priority,
                                    deadline_ms=deadline_ms)
        digest = self._plan_digest(db_name, plan)
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            with self._seq_lock:
                seq = self._submit_seq
                self._submit_seq += 1
            request.trace = tracer.context_for(
                digest, seq, db_name=db_name,
                priority=priority.name.lower(),
                submitted_at=request.submitted_at)
        limit = min(self.config.queue_depth,
                    admission_limit(priority, self.config.queue_depth,
                                    self.config))
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        brownout = False
        with self._lock:
            self._counts["requests"] += 1
            while self._accepting and self._outstanding >= limit:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if (not block
                        or (remaining is not None and remaining <= 0)
                        or not self._not_full.wait(remaining)):
                    break
            if not self._accepting or self._outstanding >= limit:
                brownout = (priority is RequestPriority.LOW
                            and self._accepting
                            and self.config.brownout_degraded
                            and self.config.degraded_fallback)
                if not brownout:
                    self._counts["shed"] += 1
                    perfstats.increment("serve.shed.count")
                    perfstats.increment(
                        f"serve.shed.priority.{priority.name.lower()}")
                    request._finish(RequestStatus.SHED)
                    return request
            else:
                req_id = self._req_seq
                self._req_seq += 1
                slot = self._route_locked(db_name)
                entry = _PendingEntry(req_id, request, digest)
                entry.slots.append(slot)
                self._pending[req_id] = entry
                slot.pending[req_id] = entry
                self._outstanding += 1
                if self._outstanding > self._queue_high_water:
                    perfstats.increment(
                        "fleet.queue.depth",
                        self._outstanding - self._queue_high_water)
                    self._queue_high_water = self._outstanding
        if brownout:
            self._finish_brownout(request)
            return request
        slot.send(req_id, request, digest)
        return request

    def submit_many(self, plans, db_name, block=False, timeout=None,
                    priority=RequestPriority.NORMAL, deadline_ms=None):
        return [self.submit(plan, db_name, block=block, timeout=timeout,
                            priority=priority, deadline_ms=deadline_ms)
                for plan in plans]

    def predict(self, plans, db_name, timeout=None, allow_degraded=False,
                priority=RequestPriority.NORMAL):
        """Blocking bulk prediction (backpressure, never sheds)."""
        requests = self.submit_many(plans, db_name, block=True,
                                    timeout=timeout, priority=priority)
        values = [request.result(timeout) for request in requests]
        if not allow_degraded:
            degraded = sum(request.degraded for request in requests)
            if degraded:
                raise DegradedResponseError(
                    f"{degraded}/{len(requests)} predictions came from the "
                    "analytical fallback; pass allow_degraded=True to "
                    "accept flagged degraded values")
        return np.array(values)

    def refresh(self):
        """Re-read the registry from disk and rebroadcast to all workers."""
        self.registry.refresh()
        self._maybe_swap()

    def _finish_brownout(self, request):
        """Answer a browned-out LOW request from the analytical model.

        Same contract as the core's circuit-breaker degradation: flagged
        ``DEGRADED``, never cached, ``served_by`` names the fallback —
        here ``("analytical", "brownout")`` so the two degradation causes
        stay distinguishable.
        """
        perfstats.increment("fleet.brownout.count")
        if request.trace is not None:
            request.trace.annotate("brownout")
        with self._lock:
            self._counts["brownouts"] += 1
            analytical = self._analytical.get(request.db_name)
        if analytical is None:
            candidate = AnalyticalCostModel(self._dbs[request.db_name])
            with self._lock:
                analytical = self._analytical.setdefault(
                    request.db_name, candidate)
        try:
            value = analytical.predict_plan(request.plan)
        except Exception as exc:  # noqa: BLE001 — even fallbacks fail
            with self._lock:
                self._counts["brownouts"] -= 1
                self._counts["failed"] += 1
            request._finish(RequestStatus.FAILED, error=exc)
            return
        request._finish(RequestStatus.DEGRADED, value=value,
                        served_by=("analytical", "brownout"))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route_locked(self, db_name):
        """Preferred shard by database fingerprint, least-loaded spill."""
        preferred = self._slots[self._preferred[db_name]]
        if len(preferred.pending) < self.spill_threshold:
            perfstats.increment("fleet.route.hit")
            return preferred
        chosen = min(self._slots, key=lambda slot: len(slot.pending))
        if chosen is preferred:
            perfstats.increment("fleet.route.hit")
        else:
            perfstats.increment("fleet.route.rebalance")
            self._counts["spills"] += 1
        return chosen

    def _maybe_swap(self):
        with self._lock:
            generation = self.registry.generation
            if generation == self._seen_generation:
                return
            self._seen_generation = generation
            slots = list(self._slots)
        perfstats.increment("fleet.route.rebalance")
        for slot in slots:
            slot.send_control(("refresh",))

    def _plan_digest(self, db_name, plan):
        """Memoized plan content fingerprint (the sharding + token key)."""
        memo_key = (id(plan), db_name)
        with self._lock:
            entry = self._digest_memo.get(memo_key)
            if entry is not None and entry[0] is plan:
                return entry[1]
        digest = plan_fingerprint(
            self._dbs[db_name], plan, self.config.cards,
            db_fingerprint=self._db_fingerprints[db_name])
        with self._lock:
            self._digest_memo[memo_key] = (plan, digest)
            while len(self._digest_memo) > 4 * max(
                    self.config.result_cache_size, 1024):
                self._digest_memo.popitem(last=False)
        return digest

    # ------------------------------------------------------------------
    # Liveness plane: heartbeats, hang detection, hedged requests
    # ------------------------------------------------------------------
    @property
    def _scan_interval_s(self):
        candidates = [0.25]
        if self._ping_interval_s is not None:
            candidates.append(self._ping_interval_s)
        if isinstance(self._hedge_after_ms, float):
            candidates.append(self._hedge_after_ms / 2e3)
        return max(min(candidates), 0.01)

    def _liveness_loop(self):
        interval = self._scan_interval_s
        while True:
            time.sleep(interval)
            with self._lock:
                if not self._running:
                    return
                slots = list(self._slots)
            self._ping_and_detect(slots)

    def _hedge_loop(self):
        interval = self._scan_interval_s
        while True:
            time.sleep(interval)
            with self._lock:
                if not self._running:
                    return
            self._maybe_hedge()

    def _ping_and_detect(self, slots):
        """Heartbeat every live worker; SIGKILL the unresponsive ones.

        A slot is *unresponsive* when nothing — results, stats, pongs —
        arrived for ``hang_timeout_ms`` even though a heartbeat was
        *attempted* since the last inbound message.  An attempt that could
        not even be written (lock contended, pipe buffer full) still
        counts: a healthy worker drains its pipe far faster than the hang
        timeout, so a pipe that stays unwritable that long is itself the
        hang symptom.  The kill collapses the gray failure into the crash
        path: the pipe EOFs, the collector's supervisor restarts the
        worker and re-sends its unanswered requests, and the exactly-once
        completion contract carries over unchanged.
        """
        now = time.monotonic()
        for slot in slots:
            if slot.closing or not slot.wp.alive:
                continue
            if (now - slot.last_seen > self._hang_timeout_s
                    and slot.last_ping > slot.last_seen):
                perfstats.increment("fleet.hang.detected")
                with self._lock:
                    self._counts["hangs"] += 1
                process = slot.wp.process
                if process is not None and process.is_alive():
                    try:
                        os.kill(process.pid, signal.SIGKILL)
                        perfstats.increment("fleet.hang.killed")
                    except (ProcessLookupError, OSError):
                        pass
                continue
            if now - slot.last_ping >= self._ping_interval_s:
                slot.last_ping = now
                self._ping_seq += 1
                slot.send_control_nowait(("ping", self._ping_seq))

    def hedge_threshold_ms(self):
        """The effective straggler threshold, or ``None`` when hedging is
        off (or ``"auto"`` has not seen enough completions yet)."""
        threshold = self._hedge_threshold_s()
        return None if threshold is None else threshold * 1e3

    def _hedge_threshold_s(self):
        mode = self._hedge_after_ms
        if mode is None:
            return None
        if mode == "auto":
            latencies = list(self._latencies)
            if len(latencies) < _HEDGE_MIN_SAMPLES:
                return None
            p99 = float(np.percentile(latencies, 99))
            return max(3.0 * p99, 0.02)
        return mode / 1e3

    def _maybe_hedge(self):
        """Re-send requests pending past the straggler threshold.

        The hedge target is the least-loaded live worker with a writable
        pipe that the request has not tried yet (falling back to
        re-sending on an already-tried slot, which re-serves the same
        req_id — still exactly-once at the handle).  A worker whose pipe
        is full is never a target: that is what a hung worker looks like
        from here, and hedging *into* it would queue the rescue behind
        the very straggler it is rescuing.  Safe by the equivalence
        contract: both answers are bit-identical, the first one wins,
        the loser is dropped by the raced-result path.
        """
        threshold = self._hedge_threshold_s()
        if threshold is None or self.max_hedges == 0:
            return
        now = time.perf_counter()
        sends = []
        with self._lock:
            if not self._running:
                return
            writable = {id(slot): slot.writable() for slot in self._slots}
            for entry in self._pending.values():
                if entry.hedges >= self.max_hedges:
                    continue
                if now - entry.last_send <= threshold:
                    continue
                candidates = [slot for slot in self._slots
                              if not slot.closing and writable[id(slot)]
                              and slot not in entry.slots]
                if not candidates:
                    candidates = [slot for slot in self._slots
                                  if not slot.closing
                                  and writable[id(slot)]]
                if not candidates:
                    continue
                target = min(candidates,
                             key=lambda slot: len(slot.pending))
                entry.hedges += 1
                entry.last_send = now
                entry.slots.append(target)
                target.pending[entry.req_id] = entry
                self._counts["hedges"] += 1
                perfstats.increment("fleet.hedge.sent")
                if entry.request.trace is not None:
                    entry.request.trace.annotate("hedge.sent")
                sends.append((entry, target))
        for entry, target in sends:
            # Best-effort: a send that cannot proceed without blocking is
            # skipped — the entry stays registered on the target, so the
            # next scan (or the target's restart) re-ships it.
            target.send_nowait(entry.req_id, entry.request, entry.digest)

    # ------------------------------------------------------------------
    # Collection + supervision
    # ------------------------------------------------------------------
    def _spawn_collector(self, slot):
        thread = threading.Thread(
            target=self._collect, args=(slot, slot.epoch),
            name=f"repro-fleet-collect-{slot.index}", daemon=True)
        thread.start()

    def _collect(self, slot, epoch):
        """Poll-driven receive loop for one worker's pipe.

        Every inbound message — results, stats, heartbeat pongs —
        refreshes the slot's last-seen time for the liveness plane; the
        timed poll keeps the loop responsive to shutdown and never blocks
        forever on a wedged worker (that worker simply goes silent, and
        the liveness supervisor kills it into the EOF path handled here).
        """
        conn = slot.wp.conn
        while True:
            try:
                if not conn.poll(0.1):
                    continue
                message = conn.recv()
                slot.last_seen = time.monotonic()
                # A "raise" at the router's recv point models a torn
                # connection: tear it down into the restart path.
                if faults.check("fleet.pipe.recv") == "drop":
                    continue
            except (EOFError, OSError, faults.InjectedFault):
                break
            if message[0] == "res":
                self._on_results(slot, message[1])
            elif message[0] == "stats":
                payload = message[1]
                delta = payload.get("metrics")
                if delta:
                    # Each stats answer carries the worker's metric delta
                    # since its previous answer; merging every delta once
                    # yields the exact fleet-wide counters/histograms.
                    REGISTRY.merge(delta)
                slot.last_stats = payload
                slot.stats_event.set()
            # "pong" carries nothing beyond the last_seen refresh above.
        self._on_worker_exit(slot, epoch)

    def _on_results(self, slot, results):
        finished = []
        with self._lock:
            for result in results:
                entry = self._pending.pop(result[0], None)
                if entry is None:
                    # Result for a request that already completed: a hedge
                    # loser, or a supervisor re-send whose original answer
                    # raced the worker's death.  The handle completed
                    # exactly once either way.
                    if result[0] in self._hedged_done:
                        self._counts["hedge_wasted"] += 1
                        perfstats.increment("fleet.hedge.wasted")
                    continue
                for owner in entry.slots:
                    owner.pending.pop(entry.req_id, None)
                if entry.hedges:
                    self._hedged_done[entry.req_id] = True
                    while len(self._hedged_done) > _HEDGED_DONE_BOUND:
                        self._hedged_done.popitem(last=False)
                    if slot is not entry.slots[0]:
                        self._counts["hedge_wins"] += 1
                        perfstats.increment("fleet.hedge.won")
                        if entry.request.trace is not None:
                            entry.request.trace.annotate("hedge.won")
                finished.append((entry.request, result))
            self._outstanding -= len(finished)
            if finished:
                self._not_full.notify_all()
                if self._outstanding == 0:
                    self._all_drained.notify_all()
        now = time.perf_counter()
        for request, result in finished:
            (_, status, value, error, served_by, retries,
             trace_payload) = result
            request.retries = retries
            self._latencies.append(now - request.submitted_at)
            if request.trace is not None and trace_payload is not None:
                # Fold the winning worker's stages into the router-side
                # context before _finish finalizes the trace.  Hang-safe
                # by construction: span data only rides result messages
                # that arrived — nothing here waits on a worker.
                request.trace.merge_remote(trace_payload,
                                           proc=f"worker-{slot.index}")
            request._finish(RequestStatus(status), value=value,
                            error=_decode_error(error), served_by=served_by)

    def _on_worker_exit(self, slot, epoch):
        """Supervision: restart a dead worker, re-send unanswered requests.

        Every request whose result was not received goes to the
        replacement worker exactly once (results are popped from the
        pending maps on receipt, so nothing completed is re-sent, and a
        duplicate answer from a raced in-flight result is dropped by the
        pop).  The replacement forks *without* the explicit fault
        schedule the original carried — a hang-killed worker must come
        back healthy, not wedge again on its first batch.  A collector
        observing a normal shutdown, or a stale epoch (the slot was
        already restarted), does nothing.
        """
        with self._lock:
            if not self._running or slot.closing or slot.epoch != epoch:
                return
            slot.epoch += 1
            perfstats.increment("fleet.worker.restart")
            self._counts["worker_restarts"] += 1
            resend = list(slot.pending.items())
            self._counts["requeued"] += len(resend)
            perfstats.increment("serve.fault.requeued", len(resend))
            now = time.perf_counter()
            with slot.send_lock:
                slot.wp.restart(args=self._worker_args(slot.index, None))
                slot.tokens.clear()
                slot.next_token = 0
                slot.last_seen = time.monotonic()
                slot.last_ping = 0.0
                for req_id, entry in resend:
                    entry.last_send = now
                    if entry.request.trace is not None:
                        entry.request.trace.annotate("requeued")
                    slot.send_locked(req_id, entry.request, entry.digest)
            self._spawn_collector(slot)

    def kill_worker(self, index):
        """Test hook: SIGKILL one worker process (the supervisor restarts
        it and re-sends its unanswered requests).  Returns the pid."""
        process = self._slots[index].wp.process
        if process is None or not process.is_alive():
            return None
        pid = process.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worker_pids(self):
        return [slot.wp.process.pid if slot.wp.process is not None else None
                for slot in self._slots]

    def _collect_worker_stats(self, timeout_s=2.0):
        """Latest per-worker core stats (live query; cached after stop).

        Hang-safe: a worker that does not answer within ``timeout_s`` is
        reported as an ``{"unresponsive": True}`` row instead of blocking
        the caller — stats must stay observable precisely when a worker
        is wedged.
        """
        pending_reply = []
        unresponsive = set()
        deadline = time.monotonic() + timeout_s
        for slot in self._slots:
            if not (self._running and slot.wp.alive):
                continue
            slot.stats_event.clear()
            # Never block on a wedged worker's lock or full pipe: retry
            # the non-blocking send until the stats deadline, then give
            # up on that worker — an unwritable pipe for the whole window
            # is exactly the hang stats() must survive.
            while not slot.send_control_nowait(("stats_req",)):
                if time.monotonic() >= deadline or not slot.wp.alive:
                    unresponsive.add(slot.index)
                    perfstats.increment("fleet.stats.unresponsive")
                    break
                time.sleep(0.01)
            else:
                pending_reply.append(slot)
        for slot in pending_reply:
            if not slot.stats_event.wait(max(0.0,
                                             deadline - time.monotonic())):
                unresponsive.add(slot.index)
                perfstats.increment("fleet.stats.unresponsive")
        return [({"unresponsive": True, "worker": slot.index}
                 if slot.index in unresponsive else slot.last_stats)
                for slot in self._slots]

    def stats(self, timeout_s=2.0):
        """Fleet-wide counters in the :meth:`PredictorServer.stats` shape,
        plus fleet extras (worker/restart/spill/hang/hedge/brownout
        counts, per-worker rows — ``unresponsive`` for workers that did
        not answer within ``timeout_s``)."""
        worker_stats = self._collect_worker_stats(timeout_s=timeout_s)
        summed = Counter()
        hist = Counter()
        breakers = {}
        fault_injected = Counter()
        cache_entries = 0
        unresponsive_workers = 0
        for index, stats in enumerate(worker_stats):
            if not stats:
                continue
            if stats.get("unresponsive"):
                unresponsive_workers += 1
                continue
            for key in ("completed", "cached", "degraded", "failed",
                        "swaps", "retries", "bisects", "batcher_crashes",
                        "deadline_expired", "hydrate_failures"):
                summed[key] += stats[key]
            for size, count in stats["batch_size_hist"].items():
                hist[int(size)] += count
            for key, state in stats["breakers"].items():
                breakers[f"w{index}:{key}"] = state
            fault_injected.update(stats.get("fault_injected", {}))
            cache_entries += stats["result_cache_entries"]
        batches = sum(hist.values())
        sizes = sum(size * count for size, count in hist.items())
        with self._lock:
            counts = Counter(self._counts)
            queue_high_water = self._queue_high_water
            outstanding = self._outstanding
        return {
            "requests": counts["requests"],
            "completed": summed["completed"],
            "cached": summed["cached"],
            "degraded": summed["degraded"] + counts["brownouts"],
            "shed": counts["shed"],
            "failed": summed["failed"] + counts["failed"],
            "swaps": summed["swaps"],
            "retries": summed["retries"],
            "bisects": summed["bisects"],
            "batcher_crashes": summed["batcher_crashes"],
            "requeued": counts["requeued"],
            "deadline_expired": summed["deadline_expired"],
            "hydrate_failures": summed["hydrate_failures"],
            "batches": batches,
            "batch_size_hist": dict(sorted(hist.items())),
            "mean_batch_size": (sizes / batches) if batches else 0.0,
            "queue_high_water": queue_high_water,
            "result_cache_entries": cache_entries,
            "breakers": breakers,
            "workers": self.n_workers,
            "worker_restarts": counts["worker_restarts"],
            "spills": counts["spills"],
            "outstanding": outstanding,
            "hangs": counts["hangs"],
            "hedges": counts["hedges"],
            "hedge_wins": counts["hedge_wins"],
            "hedge_wasted": counts["hedge_wasted"],
            "brownouts": counts["brownouts"],
            "unresponsive_workers": unresponsive_workers,
            "worker_fault_injected": dict(fault_injected),
            "worker_stats": worker_stats,
        }

    def __repr__(self):
        return (f"PredictorFleet(dbs={sorted(self._dbs)}, "
                f"workers={self.n_workers}, running={self._running})")
