"""Drift-aware continuous-learning control plane for the serving stack.

The paper's answer to off-distribution degradation is few-shot fine-tuning
once observed Q-error drifts (Section 4.2); BRAD-style systems keep that
decision in a long-running daemon.  This module is that daemon for the
repro: :class:`ContinuousLearningController` closes the loop

    observe -> detect -> retrain -> shadow-evaluate -> promote -> probation

over the serving stack built in PRs 5-7, with every recovery path guarded,
counted and journaled:

* **Observe.** The controller attaches an
  :class:`~repro.serving.core.ObservationTap` to the
  :class:`~repro.serving.core.ServingCore`: every delivered DONE/CACHED
  prediction lands in a bounded queue as ``(db_name, plan, digest,
  predicted_ms, served_by)``.  Each :meth:`tick` joins pending
  observations with *ground-truth* runtimes — the seeded runtime
  simulator replays the plan (executing it first through the trace engine
  when its cardinalities are not yet annotated), so residuals are
  computable online — and feeds a per-deployment
  :class:`~repro.robustness.drift.DriftDetector`.  Observations are
  consumed peek-then-commit: a controller crash mid-tick re-reads the
  same observations on restart, losing nothing.
* **Detect & retrain.** When the active deployment's detector trips, the
  controller fine-tunes the active model on the detector's retained
  observed records (ground-truth labelled, keep-latest bounded) via the
  seeded few-shot trainer and publishes the candidate *unactivated*.
  Publication is idempotent: checkpoints are content-addressed and the
  deterministic retrain reproduces the same digest, so a crash-and-retry
  finds the already-published version via ``registry.find_version``
  instead of minting a duplicate.
* **Shadow-evaluate.** While the active model keeps serving, subsequent
  observations are mirrored through the candidate (never served to
  clients).  Promotion requires the candidate's median Q-error to beat
  the active model's by a configured margin over a minimum sample count;
  a candidate that loses is journaled ``candidate-rejected`` and dropped.
* **Guarded promote + probation.** Promotion is the registry's atomic
  ``promote`` (exactly once: an already-active candidate is never
  re-promoted).  A fresh detector then scores the new deployment through
  a probation window; a regression inside the window triggers automatic
  ``rollback`` — never silent: every decision bumps a ``controller.*``
  perfstats counter and appends a typed :class:`ControllerEvent` to a
  replayable journal.

Determinism: decisions are made at tick boundaries, ground truth comes
from the seeded simulator, fine-tuning uses the seeded trainer, and events
carry tick indexes (never wall-clock) — the same drift scenario driven
through :meth:`tick` replays bit-identically, journal and all.  The
``controller.observe`` / ``controller.retrain`` / ``controller.shadow``
fault points (:mod:`repro.robustness.faults`) let chaos tests crash the
controller mid-loop and assert exactly-once promotion.

The controller can run supervised (:meth:`start` — a daemon thread ticking
on a cadence, restarted on crash like the server's batcher) or be driven
synchronously (:meth:`tick` / :meth:`drain`) for deterministic tests,
benchmarks and examples.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque, namedtuple
from dataclasses import dataclass, field

import numpy as np

from .. import perfstats
from ..core.api import EstimatorCache
from ..executor import execute_trace, simulate_runtime_ms_batch
from ..featurization import FeaturizationCache
from ..nn import q_error
from ..robustness import faults
from ..robustness.drift import DriftDetector
from .core import ObservationTap

__all__ = ["ContinuousLearningController", "ControllerConfig",
           "ControllerEvent", "ControllerJournal", "ObservedRecord"]

# A ground-truth-labelled observation: what the drift detector retains and
# the few-shot fine-tune trains on (featurize_records reads .db_name/.plan;
# fine_tune reads .runtime_ms).
ObservedRecord = namedtuple("ObservedRecord", ["db_name", "plan",
                                               "runtime_ms"])


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs for the observe/detect/retrain/shadow/promote loop."""

    model_name: str | None = None  # managed model (default: registry default)
    truth_seed: int = 0            # runtime-simulator seed for ground truth
    cards: str = "exact"           # cardinality source for retrain/shadow
    # -- drift detection ------------------------------------------------
    drift_threshold: float = 2.0   # rolling-median q-error trip point
    drift_window: int = 50
    min_observations: int = 10
    max_fine_tune_records: int = 256  # keep-latest bound on retained records
    # -- retraining -----------------------------------------------------
    fine_tune_epochs: int = 10
    fine_tune_lr: float = 4e-4
    # -- shadow evaluation / promotion gate -----------------------------
    shadow_margin: float = 1.05    # candidate must win by this factor
    min_shadow_samples: int = 16
    # -- probation ------------------------------------------------------
    probation_observations: int = 48  # clean observations to leave probation
    probation_threshold: float | None = None  # default: drift_threshold
    # -- ingest / daemon ------------------------------------------------
    max_observations_per_tick: int = 256
    max_pending_observations: int = 4096
    cadence_s: float = 0.05        # daemon tick period
    journal_path: str | None = None  # optional JSONL event log on disk
    journal_max_events: int = 4096  # keep-latest bound on in-memory events


@dataclass(frozen=True)
class ControllerEvent:
    """One journaled control-plane decision (typed, replay-comparable).

    ``detail`` is a tuple of ``(key, value)`` pairs — hashable and
    order-stable, so two runs' event streams compare with ``==``.  Events
    carry tick indexes, never wall-clock times.
    """

    seq: int
    tick: int
    kind: str          # drift-detected | candidate-published |
    #                    candidate-rejected | promoted | rolled-back |
    #                    probation-passed | retrain-skipped
    model: str
    version: int | None = None            # deployment the event is about
    candidate_version: int | None = None  # candidate involved (if any)
    digest: str | None = None             # candidate checkpoint key (if any)
    detail: tuple = ()

    def as_dict(self):
        return {"seq": self.seq, "tick": self.tick, "kind": self.kind,
                "model": self.model, "version": self.version,
                "candidate_version": self.candidate_version,
                "digest": self.digest, "detail": dict(self.detail)}

    @classmethod
    def from_dict(cls, payload):
        return cls(seq=payload["seq"], tick=payload["tick"],
                   kind=payload["kind"], model=payload["model"],
                   version=payload["version"],
                   candidate_version=payload["candidate_version"],
                   digest=payload["digest"],
                   detail=tuple(sorted(payload["detail"].items())))


class ControllerJournal:
    """Append-only, typed, replayable event log.

    In memory always, bounded keep-latest at ``max_events`` so a
    long-lived controller cannot grow without limit; mirrored *complete*
    to a JSONL file when ``path`` is given (append + flush per event, so
    a crash loses at most the event being written).  :meth:`read_jsonl`
    reconstructs typed events for replay comparison; ``total_appended``
    and ``dropped`` record how much history the memory window has shed.
    """

    def __init__(self, path=None, max_events=4096):
        self.path = path
        self.max_events = max(1, int(max_events))
        self.total_appended = 0
        self.dropped = 0
        self._lock = threading.Lock()
        self._events = deque(maxlen=self.max_events)

    def append(self, event):
        with self._lock:
            if len(self._events) == self.max_events:
                self.dropped += 1
            self._events.append(event)
            self.total_appended += 1
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps(event.as_dict()) + "\n")
                    fh.flush()
        return event

    def events(self, kind=None):
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        return events

    def as_dicts(self):
        return [event.as_dict() for event in self.events()]

    def __len__(self):
        with self._lock:
            return len(self._events)

    @staticmethod
    def read_jsonl(path):
        events = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(ControllerEvent.from_dict(json.loads(line)))
        return events


class ContinuousLearningController:
    """The control-plane daemon: notices the model going stale, heals it.

    ``server`` is a :class:`~repro.serving.server.PredictorServer`, a
    :class:`~repro.serving.core.ServingCore`, or anything exposing
    ``.core``.  The controller attaches an observation tap to the core and
    manages exactly one model name (``config.model_name``, defaulting to
    the registry's default model).

    State machine (one state at a time, advanced at tick boundaries)::

        monitoring --drift--> retrain-pending --publish--> shadowing
        shadowing --win-->  probation --clean window--> monitoring
        shadowing --loss--> monitoring            (candidate-rejected)
        probation --regression--> monitoring      (rolled-back)

    A crash in any state leaves durable progress intact: observations are
    peek/commit, the retrain is deterministic and its publication
    content-addressed, promotion is guarded against repetition — so retry
    converges without double-promoting or losing data.
    """

    STATES = ("monitoring", "retrain-pending", "shadowing", "probation")

    def __init__(self, registry, server, config=None, estimator_cache=None):
        self.registry = registry
        self.core = getattr(server, "core", server)
        self.config = config or ControllerConfig()
        name = self.config.model_name or registry.default_model
        if name is None:
            raise ValueError("no model to manage: pass "
                             "ControllerConfig(model_name=...) or set a "
                             "registry default model")
        self.model_name = name
        self.tap = ObservationTap(self.config.max_pending_observations)
        self.core.attach_observer(self.tap)
        self.journal = ControllerJournal(
            path=self.config.journal_path,
            max_events=self.config.journal_max_events)
        self._estimator_cache = estimator_cache or EstimatorCache()
        self._feat_cache = FeaturizationCache()
        self._state = "monitoring"
        self._detectors = {}     # deployment version -> DriftDetector
        self._candidate = None   # (ModelDeployment, ZeroShotCostModel)
        self._shadow_pending = []      # (ObservedRecord, active q-error)
        self._shadow_active_q = []
        self._shadow_candidate_q = []
        self._promoted_version = None  # version under probation
        self._probation_seen = 0
        self._last_trace = {}    # version -> trace id of last traced obs
        self._ticks = 0
        self._seq = 0
        self._crashes = 0
        self._last_crash = None  # repr of the last daemon exception
        # Daemon supervision (same shape as the server's batcher).
        self._thread = None
        self._running = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self):
        return self._state

    @property
    def ticks(self):
        return self._ticks

    def detector_for(self, version):
        """The (lazily created) drift detector scoring ``version``."""
        detector = self._detectors.get(version)
        if detector is None:
            detector = DriftDetector(
                threshold=self.config.drift_threshold,
                window=self.config.drift_window,
                min_observations=self.config.min_observations,
                max_records=self.config.max_fine_tune_records)
            self._detectors[version] = detector
        return detector

    def stats(self):
        active = self.registry.active(self.model_name)
        detector = (self.detector_for(active.version)
                    if active is not None else None)
        return {
            "state": self._state,
            "ticks": self._ticks,
            "events": len(self.journal),
            "crashes": self._crashes,
            "last_crash": self._last_crash,
            "tap": self.tap.stats(),
            "active_version": active.version if active else None,
            "detector": detector.stats() if detector else None,
            "shadow_samples": len(self._shadow_candidate_q),
            "probation_seen": self._probation_seen,
        }

    # ------------------------------------------------------------------
    # The tick: ingest observations, then advance the state machine
    # ------------------------------------------------------------------
    def tick(self):
        """One decision round; returns the number of observations ingested.

        Safe to call synchronously (tests, benchmarks) or from the daemon
        thread — but from one thread at a time.
        """
        self._ticks += 1
        perfstats.increment("controller.tick.count")
        batch = self.tap.peek(self.config.max_observations_per_tick)
        processed = 0
        if batch:
            truths = self._ground_truths(batch)
            for observation, truth in zip(batch, truths):
                faults.check("controller.observe")
                self._ingest(observation, truth)
                self.tap.commit(1)
                processed += 1
        self._decide()
        return processed

    def drain(self, max_ticks=1000):
        """Tick until no observations are pending; returns ticks spent."""
        ticks = 0
        while len(self.tap) and ticks < max_ticks:
            self.tick()
            ticks += 1
        return ticks

    def _ground_truths(self, batch):
        """Ground-truth runtimes for a batch, joined per database.

        The seeded runtime simulator is a pure function of the executed
        plan and the seed, so the truth for a served plan equals the
        runtime a trace run with the same seed would have recorded.  Plans
        arriving without executed cardinalities are executed first through
        the trace engine (the corpus-engine join the retrain needs anyway).
        """
        by_db = {}
        for index, observation in enumerate(batch):
            by_db.setdefault(observation.db_name, []).append(index)
        truths = [None] * len(batch)
        for db_name, indexes in by_db.items():
            db = self.core.dbs[db_name]
            plans = [batch[i].plan for i in indexes]
            fresh = [plan for plan in plans if plan.true_rows is None]
            if fresh:
                perfstats.increment("controller.observe.executed",
                                    len(fresh))
                execute_trace(db, fresh)
            runtimes = simulate_runtime_ms_batch(
                db, plans, seed=self.config.truth_seed)
            for i, runtime in zip(indexes, runtimes):
                truths[i] = float(runtime)
        return truths

    def _ingest(self, observation, truth):
        """Feed one (prediction, truth) pair to its deployment's detector."""
        name, version = observation.served_by
        if name != self.model_name:
            return
        perfstats.increment("controller.observe.count")
        trace_id = getattr(observation, "trace_id", None)
        if trace_id is not None:
            # Remember which traced request most recently fed this
            # deployment's detector, so a drift verdict can name it.
            self._last_trace[version] = trace_id
        record = ObservedRecord(observation.db_name, observation.plan, truth)
        detector = self.detector_for(version)
        error = detector.observe(observation.predicted_ms, truth, record)
        if self._state == "probation" and version == self._promoted_version:
            self._probation_seen += 1
        elif self._state == "shadowing":
            self._shadow_pending.append((record, error))

    def _decide(self):
        if self._state == "monitoring":
            active = self.registry.active(self.model_name)
            if active is not None and self.detector_for(
                    active.version).drifted:
                detector = self.detector_for(active.version)
                perfstats.increment("controller.drift.detected")
                detail = [("observations", detector.observed_total),
                          ("rolling_median",
                           round(detector.rolling_median, 6))]
                trace_id = self._last_trace.get(active.version)
                if trace_id is not None:
                    # Only traced runs carry the key, so untraced event
                    # streams stay bit-identical to pre-tracing replays.
                    detail.append(("trace_id", trace_id))
                self._journal(
                    "drift-detected", version=active.version,
                    detail=tuple(detail))
                self._state = "retrain-pending"
        if self._state == "retrain-pending":
            self._retrain()
        if self._state == "shadowing":
            self._shadow_step()
        elif self._state == "probation":
            self._probation_step()

    # ------------------------------------------------------------------
    # Retrain & publish (unactivated)
    # ------------------------------------------------------------------
    def _retrain(self):
        faults.check("controller.retrain")
        active = self.registry.active(self.model_name)
        detector = self.detector_for(active.version)
        records = detector.fine_tuning_records()
        if not records:
            # Nothing to train on (observations arrived without records) —
            # back off and re-arm rather than wedge in retrain-pending.
            self._journal("retrain-skipped", version=active.version)
            detector.reset()
            self._state = "monitoring"
            return
        perfstats.increment("controller.retrain.count")
        base = self.registry.load(deployment=active)
        candidate = base.fine_tune(
            records, self.core.dbs, cards=self.config.cards,
            epochs=self.config.fine_tune_epochs,
            learning_rate=self.config.fine_tune_lr,
            estimator_cache=self._estimator_cache,
            feat_cache=self._feat_cache)
        # Second crash window: after training, before publication.  The
        # retrain is deterministic, so a retry reproduces this candidate
        # bit-identically and the content-addressed publish below stays
        # idempotent.
        faults.check("controller.retrain")
        digest = candidate.state_digest()
        existing = self.registry.find_version(self.model_name, digest)
        if existing is None:
            deployment = self.registry.publish(
                self.model_name, candidate,
                db_digests=active.db_digests, activate=False)
        else:
            deployment = self.registry.deployments(self.model_name)[
                existing - 1]
        perfstats.increment("controller.candidate.published")
        self._candidate = (deployment, candidate)
        self._shadow_pending = []
        self._shadow_active_q = []
        self._shadow_candidate_q = []
        self._journal("candidate-published", version=active.version,
                      candidate_version=deployment.version, digest=digest,
                      detail=(("records", len(records)),))
        self._state = "shadowing"

    # ------------------------------------------------------------------
    # Shadow evaluation & guarded promotion
    # ------------------------------------------------------------------
    def _shadow_step(self):
        if self._shadow_pending:
            faults.check("controller.shadow")
            pending = list(self._shadow_pending)
            records = [record for record, _ in pending]
            deployment, candidate = self._candidate
            predictions = candidate.predict_records(
                records, self.core.dbs, cards=self.config.cards,
                estimator_cache=self._estimator_cache,
                feat_cache=self._feat_cache)
            truths = np.array([record.runtime_ms for record in records])
            errors = q_error(np.asarray(predictions), truths)
            # Only now — after the mirror prediction succeeded — are the
            # pending samples consumed; a crash above retries them.
            self._shadow_pending = []
            self._shadow_candidate_q.extend(float(e) for e in errors)
            self._shadow_active_q.extend(error for _, error in pending)
            perfstats.increment("controller.shadow.samples", len(records))
        if len(self._shadow_candidate_q) < self.config.min_shadow_samples:
            return
        active_median = float(np.median(self._shadow_active_q))
        candidate_median = float(np.median(self._shadow_candidate_q))
        deployment, _ = self._candidate
        detail = (("active_median", round(active_median, 6)),
                  ("candidate_median", round(candidate_median, 6)),
                  ("samples", len(self._shadow_candidate_q)))
        if candidate_median * self.config.shadow_margin <= active_median:
            self._promote(deployment, detail)
        else:
            perfstats.increment("controller.candidate.rejected")
            self._journal("candidate-rejected",
                          candidate_version=deployment.version,
                          digest=deployment.checkpoint_key, detail=detail)
            self._reset_shadow()
            active = self.registry.active(self.model_name)
            if active is not None:
                # Re-arm: fresh observations must accumulate before the
                # detector may trip again, so a losing candidate does not
                # cause an immediate identical retrain.
                self.detector_for(active.version).reset()
            self._state = "monitoring"

    def _promote(self, deployment, detail):
        previous = self.registry.active(self.model_name)
        if previous is None or previous.version != deployment.version:
            # Exactly-once: a crash after the registry promote but before
            # the journal append re-enters here with the candidate already
            # active and must not promote (or journal) twice.
            self.registry.promote(self.model_name, deployment.version)
        perfstats.increment("controller.promote.count")
        self._journal("promoted",
                      version=previous.version if previous else None,
                      candidate_version=deployment.version,
                      digest=deployment.checkpoint_key, detail=detail)
        self._promoted_version = deployment.version
        self._probation_seen = 0
        # Probation scores the new deployment with a fresh detector.
        self._detectors[deployment.version] = DriftDetector(
            threshold=(self.config.probation_threshold
                       if self.config.probation_threshold is not None
                       else self.config.drift_threshold),
            window=self.config.drift_window,
            min_observations=self.config.min_observations,
            max_records=self.config.max_fine_tune_records)
        self._candidate = None
        self._reset_shadow()
        self._state = "probation"

    def _reset_shadow(self):
        self._shadow_pending = []
        self._shadow_active_q = []
        self._shadow_candidate_q = []

    # ------------------------------------------------------------------
    # Probation & auto-rollback
    # ------------------------------------------------------------------
    def _probation_step(self):
        detector = self.detector_for(self._promoted_version)
        if detector.drifted:
            current = self.registry.active(self.model_name)
            restored = None
            if (current is not None
                    and current.version == self._promoted_version):
                restored = self.registry.rollback(self.model_name)
            perfstats.increment("controller.rollback.count")
            self._journal(
                "rolled-back", version=self._promoted_version,
                detail=(("restored_version",
                         restored.version if restored else None),
                        ("rolling_median",
                         round(detector.rolling_median, 6)),
                        ("probation_seen", self._probation_seen)))
            # The promoted version is disgraced; re-arm the restored
            # deployment's detector so recovery needs fresh evidence.
            if restored is not None:
                self.detector_for(restored.version).reset()
            self._exit_probation()
        elif self._probation_seen >= self.config.probation_observations:
            perfstats.increment("controller.probation.passed")
            self._journal(
                "probation-passed", version=self._promoted_version,
                detail=(("probation_seen", self._probation_seen),
                        ("rolling_median",
                         round(detector.rolling_median, 6))))
            self._exit_probation()

    def _exit_probation(self):
        self._promoted_version = None
        self._probation_seen = 0
        self._state = "monitoring"

    # ------------------------------------------------------------------
    # Journal helper
    # ------------------------------------------------------------------
    def _journal(self, kind, version=None, candidate_version=None,
                 digest=None, detail=()):
        event = ControllerEvent(
            seq=self._seq, tick=self._ticks, kind=kind,
            model=self.model_name, version=version,
            candidate_version=candidate_version, digest=digest,
            detail=tuple(detail))
        self._seq += 1
        self.journal.append(event)
        return event

    # ------------------------------------------------------------------
    # Supervised daemon mode
    # ------------------------------------------------------------------
    def start(self):
        """Run the loop in a supervised daemon thread (crash -> restart)."""
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("controller already running")
            self._running = True
            self._thread = threading.Thread(
                target=self._daemon_main, name="repro-controller",
                daemon=True)
            self._thread.start()
        return self

    def stop(self):
        """Stop the daemon (the supervisor may have swapped the thread)."""
        self._running = False
        while True:
            with self._lock:
                thread = self._thread
            if thread is None:
                return
            thread.join(timeout=5.0)
            with self._lock:
                if self._thread is thread and not thread.is_alive():
                    self._thread = None
                    return

    def _daemon_main(self):
        try:
            while self._running:
                self.tick()
                time.sleep(self.config.cadence_s)
        except Exception as exc:  # noqa: BLE001 — injected or real: supervise
            perfstats.increment("controller.crash.count")
            self._crashes += 1
            self._last_crash = repr(exc)
            if not self._running:
                return
            # Observations survive (peek/commit); state survives (object
            # fields); restart the loop like the batcher supervisor does.
            with self._lock:
                if not self._running:
                    return
                replacement = threading.Thread(
                    target=self._daemon_main, name="repro-controller",
                    daemon=True)
                self._thread = replacement
            replacement.start()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
