"""Transport-agnostic serving core: the logic every predictor shares.

:class:`ServingCore` is the part of the prediction service that does not
care how requests arrive: request/route/cache state, micro-batch
processing, the hardened model path (retry with backoff, poisoned-batch
bisection, per-request deadlines), the per-deployment circuit breaker with
analytical degradation, and hot-swap route resolution against the registry.

Two transports drive it today:

* :class:`~repro.serving.server.PredictorServer` — the in-process,
  thread-based micro-batcher (bounded queue, supervised batcher thread).
* :mod:`repro.serving.fleet` — forked worker processes whose loop feeds
  pipe-delivered request batches straight into :meth:`ServingCore.
  process_batch`, no thread transport at all.

Both inherit every robustness and equivalence guarantee documented on
:mod:`repro.serving.server`, because those guarantees live *here*: for any
request mix, a ``DONE`` value is bit-identical to a direct
``predict_runtimes`` call on the same model, and every departure from the
model path (degraded, failed, deadline-expired) is typed and flagged.

Thread-safety: one internal lock guards the result cache, the digest memo,
the routes and the counters.  Featurization and inference run outside it.
The featurization/batch caches, the breakers and the analytical fallbacks
are touched only by the processing thread (the batcher thread in the
server; the worker main loop in the fleet), so they need no locking of
their own.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict, deque, namedtuple
from dataclasses import dataclass
from enum import Enum

from .. import perfstats
from ..obs.metrics import REGISTRY
from ..core.api import EstimatorCache, featurize_records
from ..core.training import predict_runtimes
from ..featurization import (BatchCache, FeaturizationCache, database_digest,
                             plan_fingerprint)
from ..optimizer.cost_model import AnalyticalCostModel
from ..robustness import faults
from .registry import RoutingError

__all__ = ["ServingCore", "ServerConfig", "PredictionRequest",
           "RequestStatus", "RequestPriority", "admission_limit",
           "RequestShedError", "DeadlineExceededError",
           "DegradedResponseError", "ServerClosedError", "ServingRecord",
           "Observation", "ObservationTap"]

# The unit of serving work: featurize_records only reads .db_name and .plan,
# so this lightweight record stands in for an executed TraceRecord.
ServingRecord = namedtuple("ServingRecord", ["db_name", "plan"])

# One delivered model-path prediction, as seen by the observation tap:
# enough to recompute ground truth (db_name + plan), key the result
# (digest) and attribute the prediction to a deployment (served_by is the
# (model name, version) pair).  DEGRADED and FAILED deliveries are never
# observed — the tap watches the learned model, not the fallback.
# ``trace_id`` links the observation back to its request span tree when the
# delivery was traced (None otherwise), so controller decisions downstream
# can name the requests that fed them.
Observation = namedtuple(
    "Observation",
    ["db_name", "plan", "digest", "predicted_ms", "served_by", "trace_id"],
    defaults=(None,))


class ObservationTap:
    """Bounded, lock-protected queue feeding deliveries to a controller.

    The serving side calls :meth:`record` for every DONE/CACHED delivery;
    when the queue is full the *incoming* observation is dropped (counted,
    never blocking the batcher).  The consuming side reads with
    :meth:`peek` and acknowledges with :meth:`commit` — a consumer that
    crashes between the two re-reads the same observations on restart, so
    a controller crash loses nothing.
    """

    def __init__(self, max_pending=4096):
        self.max_pending = int(max_pending)
        self._lock = threading.Lock()
        self._items = deque()
        self.recorded = 0
        self.dropped = 0

    def record(self, observation):
        """Enqueue one observation; False (and a counter) when full."""
        with self._lock:
            if len(self._items) >= self.max_pending:
                self.dropped += 1
                perfstats.increment("controller.observe.dropped")
                return False
            self._items.append(observation)
            self.recorded += 1
        return True

    def peek(self, n=None):
        """Up to ``n`` oldest observations, without removing them."""
        with self._lock:
            if n is None:
                n = len(self._items)
            return [self._items[i] for i in range(min(n, len(self._items)))]

    def commit(self, n=1):
        """Acknowledge (remove) the ``n`` oldest observations."""
        with self._lock:
            for _ in range(min(n, len(self._items))):
                self._items.popleft()

    def __len__(self):
        with self._lock:
            return len(self._items)

    def stats(self):
        with self._lock:
            return {"pending": len(self._items), "recorded": self.recorded,
                    "dropped": self.dropped, "max_pending": self.max_pending}


class RequestStatus(Enum):
    PENDING = "pending"
    DONE = "done"        # predicted by a micro-batch
    CACHED = "cached"    # answered from the result cache
    DEGRADED = "degraded"  # answered by the analytical fallback (flagged)
    SHED = "shed"        # rejected by admission control
    FAILED = "failed"    # routing/featurization/prediction/deadline error


class RequestPriority(Enum):
    """Admission-control class for a submitted request.

    Lower values are more important.  Priorities gate *admission*, not
    execution order: a LOW request stops being admitted once the queue is
    ``brownout_fraction`` full (and, under brownout, may be answered by
    the analytical fallback instead of shed), a NORMAL request once the
    ``high_reserve_fraction`` headroom is all that remains, and only HIGH
    traffic may fill the queue to ``queue_depth``.  Already-admitted
    requests are served identically regardless of class — values never
    depend on priority.
    """

    HIGH = 0
    NORMAL = 1
    LOW = 2


def admission_limit(priority, queue_depth, config):
    """The effective queue bound for one priority class.

    HIGH may use the whole queue; NORMAL stops at ``queue_depth`` minus
    the reserved HIGH headroom (``high_reserve_fraction``, default 0 — no
    reservation unless configured); LOW stops at ``brownout_fraction`` of
    the queue.  Every class is always allowed at least one slot so tiny
    queues keep admitting.
    """
    if priority is RequestPriority.LOW:
        return max(1, int(queue_depth * config.brownout_fraction))
    if priority is RequestPriority.NORMAL:
        reserve = int(queue_depth * config.high_reserve_fraction)
        return max(1, queue_depth - reserve)
    return queue_depth


class RequestShedError(RuntimeError):
    """The bounded queue was full and the request was shed."""


class DeadlineExceededError(RuntimeError):
    """The request exceeded its per-request deadline before completing."""


class DegradedResponseError(RuntimeError):
    """A blocking ``predict`` received a DEGRADED (analytical-fallback)
    response and the caller did not opt in with ``allow_degraded=True``."""


class ServerClosedError(RuntimeError):
    """The server was stopped without draining; the request was dropped."""


class PredictionRequest:
    """Client-side handle for one submitted plan.

    The same handle class serves the in-process server and the fleet
    router: completion is an event the transport fires exactly once via
    :meth:`_finish`, whether the value was produced in this process or
    crossed a worker pipe.
    """

    __slots__ = ("db_name", "plan", "status", "value", "error", "served_by",
                 "submitted_at", "completed_at", "retries", "priority",
                 "deadline_ms", "trace", "_event")

    def __init__(self, db_name, plan, priority=RequestPriority.NORMAL,
                 deadline_ms=None):
        self.db_name = db_name
        self.plan = plan
        self.priority = RequestPriority(priority)
        self.deadline_ms = deadline_ms  # per-request age cap (ms), or None
        self.status = RequestStatus.PENDING
        self.value = None
        self.error = None
        self.served_by = None  # (model name, version) that produced value
        self.submitted_at = time.perf_counter()
        self.completed_at = None
        self.retries = 0
        self.trace = None  # opt-in obs.trace.TraceContext; None = untraced
        self._event = threading.Event()

    # -- completion (server side) --------------------------------------
    def _finish(self, status, value=None, error=None, served_by=None):
        self.value = value
        self.error = error
        self.served_by = served_by
        self.completed_at = time.perf_counter()
        self.status = status
        trace = self.trace
        if trace is not None and trace._tracer is not None:
            # Finalize only where a tracer is attached (the client-facing
            # transport); worker-side contexts just export their stages.
            trace.finalize(self.completed_at, status=status.value)
        self._event.set()

    # -- client side ----------------------------------------------------
    def done(self):
        return self._event.is_set()

    @property
    def degraded(self):
        """True when the value came from the analytical fallback."""
        return self.status is RequestStatus.DEGRADED

    def wait(self, timeout=None):
        return self._event.wait(timeout)

    def result(self, timeout=None):
        """The predicted runtime (ms); raises for shed/failed requests.

        A ``DEGRADED`` request returns its analytical-fallback value — the
        :attr:`status` / :attr:`degraded` flag is the explicit marker that
        the value did not come from the learned model.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("prediction still pending")
        if self.status is RequestStatus.SHED:
            raise RequestShedError(
                f"request for {self.db_name!r} was shed (queue full)")
        if self.status is RequestStatus.FAILED:
            raise self.error
        return self.value

    @property
    def latency_ms(self):
        if self.completed_at is None:
            return None
        return (self.completed_at - self.submitted_at) * 1e3

    def __repr__(self):
        return (f"PredictionRequest({self.db_name!r}, "
                f"status={self.status.value})")


@dataclass(frozen=True)
class ServerConfig:
    """Micro-batching, admission-control, routing and robustness knobs."""

    max_batch_size: int = 64     # size trigger: dispatch when this many queue
    max_delay_ms: float = 2.0    # deadline trigger: oldest request's max wait
    queue_depth: int = 1024      # admission control: shed beyond this
    result_cache_size: int = 4096  # 0 disables the result cache
    predict_batch_size: int = 256  # inference chunking inside one batch
    cards: str = "exact"         # cardinality source for featurization
    model_name: str | None = None  # pin every database to one model name
    # -- robustness ----------------------------------------------------
    request_timeout_ms: float | None = None  # per-request deadline (age cap)
    max_retries: int = 2         # extra model-path attempts per group
    retry_backoff_ms: float = 1.0  # backoff base; doubles per retry
    breaker_threshold: int = 3   # consecutive failures that open the breaker
    breaker_reset_ms: float = 50.0  # open -> half-open probe delay
    degraded_fallback: bool = True  # serve analytical predictions when open
    # -- priority-aware overload control --------------------------------
    high_reserve_fraction: float = 0.0  # queue headroom reserved for HIGH
    brownout_fraction: float = 0.5      # LOW admission cap (x queue_depth)
    brownout_degraded: bool = True      # LOW over the cap: analytical answer
    #    (honored by the fleet router; the thread server sheds LOW instead)
    # -- observability ---------------------------------------------------
    trace: bool = False          # per-request spans (obs.trace); off = free
    trace_sample_every: int = 1  # trace every N-th request when tracing


class _Route:
    """A database's resolved deployment with the loaded model."""

    __slots__ = ("deployment", "model")

    def __init__(self, deployment, model):
        self.deployment = deployment
        self.model = model

    @property
    def checkpoint_key(self):
        return self.deployment.checkpoint_key

    @property
    def served_by(self):
        return (self.deployment.name, self.deployment.version)


class _Breaker:
    """Per-deployment circuit breaker (processing-thread state only)."""

    __slots__ = ("state", "failures", "opened_at")

    def __init__(self):
        self.state = "closed"     # closed | open | half-open
        self.failures = 0
        self.opened_at = 0.0

    def allows_model_path(self, reset_s):
        """Closed: yes.  Open: only once the reset delay elapsed, as a
        half-open probe.  (Called only by the processing thread.)"""
        if self.state == "closed":
            return True
        if time.monotonic() - self.opened_at >= reset_s:
            if self.state != "half-open":
                self.state = "half-open"
                perfstats.increment("serve.degraded.half_open")
            return True
        return False

    def record_success(self):
        if self.state != "closed":
            perfstats.increment("serve.degraded.close")
        self.state = "closed"
        self.failures = 0

    def record_failure(self, threshold):
        self.failures += 1
        if self.state == "half-open" or self.failures >= threshold:
            if self.state != "open":
                perfstats.increment("serve.degraded.open")
            self.state = "open"
            self.opened_at = time.monotonic()


class ServingCore:
    """Routing, caching and hardened batch prediction, minus the transport.

    ``mmap=True`` hydrates checkpoints through the registry's
    memory-mapped path (:meth:`~repro.serving.registry.ModelRegistry.
    load_mmap`): parameter arrays are read-only views of the
    content-addressed on-disk checkpoint, so forked workers over one
    registry share a single page-cache copy instead of deserializing per
    process.
    """

    def __init__(self, registry, dbs, config=None, estimator_cache=None,
                 mmap=False):
        self.registry = registry
        self.config = config or ServerConfig()
        self.mmap = bool(mmap)
        self._dbs = dict(dbs)
        self._db_digests = {name: database_digest(db).hex()
                            for name, db in self._dbs.items()}
        self._db_fingerprints = {name: db.fingerprint()
                                 for name, db in self._dbs.items()}
        # One lock guards the result cache, the digest memo, the routes
        # and the counters.  Featurization and inference run outside it;
        # the featurization/batch caches, the breakers and the analytical
        # fallbacks are touched only by the processing thread.
        self._lock = threading.Lock()
        self._result_cache = OrderedDict()
        self._digest_memo = OrderedDict()  # (id(plan), db) -> (plan, digest)
        self._feat_cache = FeaturizationCache()
        self._batch_cache = BatchCache(max_entries=64)
        self._estimator_cache = estimator_cache or EstimatorCache()
        self._counts = Counter()
        self._batch_sizes = Counter()
        self._routes = {}
        self._breakers = {}     # checkpoint_key -> _Breaker
        self._analytical = {}   # db_name -> AnalyticalCostModel
        self._seen_generation = None
        self._observer = None   # opt-in ObservationTap (continuous learning)
        self.proc_label = "server"  # span proc tag; fleet workers relabel
        self.resolve_routes()

    # ------------------------------------------------------------------
    # Databases / counters
    # ------------------------------------------------------------------
    @property
    def dbs(self):
        return self._dbs

    def has_db(self, db_name):
        return db_name in self._dbs

    def db_digest(self, db_name):
        """Hex database fingerprint digest (the sharding/routing key)."""
        return self._db_digests[db_name]

    def count(self, name, n=1):
        with self._lock:
            self._counts[name] += n

    def counts_snapshot(self):
        with self._lock:
            return Counter(self._counts)

    # ------------------------------------------------------------------
    # Observation tap (continuous learning)
    # ------------------------------------------------------------------
    def attach_observer(self, tap):
        """Opt in to observation: every DONE/CACHED delivery is recorded
        to ``tap`` (an :class:`ObservationTap`).  One observer at a time;
        ``None`` detaches."""
        self._observer = tap
        return tap

    @property
    def observer(self):
        return self._observer

    def _observe(self, db_name, plan, digest, value, route, trace_id=None):
        """Feed one model-path delivery to the attached tap (if any)."""
        observer = self._observer
        if observer is None:
            return
        observer.record(Observation(db_name, plan, digest, float(value),
                                    route.served_by, trace_id))

    # ------------------------------------------------------------------
    # Routing / hot-swap
    # ------------------------------------------------------------------
    def maybe_swap(self):
        if self.registry.generation != self._seen_generation:
            self.resolve_routes()

    def resolve_routes(self):
        """Re-resolve every database's deployment from the registry.

        Runs between batches (or at submit time); in-flight work keeps the
        route object it started with, so a promote/rollback is a
        zero-downtime swap.  A deployment whose checkpoint fails hydration
        is quarantined by the registry (which re-resolves its manifest to
        the previous good version), and resolution retries against the
        updated registry state — serving falls back to known-good
        checkpoints instead of wedging.
        """
        generation = self.registry.generation
        routes = {db_name: self._resolve_one(digest)
                  for db_name, digest in self._db_digests.items()}
        with self._lock:
            for db_name, route in routes.items():
                previous = self._routes.get(db_name)
                if (previous is not None and route is not None
                        and previous.checkpoint_key != route.checkpoint_key):
                    self._counts["swaps"] += 1
                    perfstats.increment("serve.swap.count")
            self._routes = routes
            self._seen_generation = generation

    def route_for(self, db_name):
        with self._lock:
            return self._routes.get(db_name)

    def _resolve_one(self, digest):
        """Route one database digest to a loaded model, surviving
        quarantines: every HydrationError re-resolves against the
        registry's updated manifest until a good version loads or nothing
        routable remains."""
        for _ in range(8):  # bounded: each retry consumed a quarantine
            try:
                if self.config.model_name is not None:
                    deployment = self.registry.active(self.config.model_name)
                else:
                    deployment = self.registry.route(digest)
            except RoutingError:
                return None
            if deployment is None:
                return None
            try:
                if self.mmap:
                    model = self.registry.load_mmap(deployment=deployment)
                else:
                    model = self.registry.load(deployment=deployment)
            except RoutingError:
                perfstats.increment("serve.fault.hydrate")
                with self._lock:
                    self._counts["hydrate_failures"] += 1
                continue
            return _Route(deployment, model)
        return None

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def plan_digest(self, db_name, plan):
        """Memoized content fingerprint of a plan object (self-locking).

        Memo keys carry the database name: the digest hashes the
        database's fingerprint, so the same plan object submitted against
        two databases must produce two distinct digests (and therefore two
        result-cache keys).  The hash itself — an O(plan) tree walk — runs
        outside the lock so first-seen plans from concurrent clients don't
        serialize behind each other; only the memo probes take it.
        """
        memo_key = (id(plan), db_name)
        with self._lock:
            entry = self._digest_memo.get(memo_key)
            if entry is not None and entry[0] is plan:
                return entry[1]
        digest = plan_fingerprint(
            self._dbs[db_name], plan, self.config.cards,
            db_fingerprint=self._db_fingerprints[db_name])
        with self._lock:
            self._digest_memo[memo_key] = (plan, digest)
            while len(self._digest_memo) > 4 * max(
                    self.config.result_cache_size, 1024):
                self._digest_memo.popitem(last=False)
        return digest

    def cached_value(self, route, digest, db_name=None, plan=None,
                     trace_id=None):
        """Result-cache probe; counts the hit and returns the value, or
        ``None`` on a miss (the miss is counted at prediction time).

        When ``db_name``/``plan`` are given, a hit is also fed to the
        observation tap — submit-time cache answers are deliveries too.
        """
        with self._lock:
            value = self._cache_get_locked((route.checkpoint_key, digest))
            if value is not None:
                self._counts["cached"] += 1
        if value is not None:
            perfstats.increment("serve.cache.hit")
            if plan is not None:
                self._observe(db_name, plan, digest, value, route, trace_id)
        return value

    def _cache_get_locked(self, key):
        if self.config.result_cache_size <= 0:
            return None
        value = self._result_cache.get(key)
        if value is not None:
            self._result_cache.move_to_end(key)
        return value

    def _cache_put_locked(self, key, value):
        if self.config.result_cache_size <= 0:
            return
        self._result_cache[key] = value
        while len(self._result_cache) > self.config.result_cache_size:
            self._result_cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Batch processing (hardened model path)
    # ------------------------------------------------------------------
    def process_batch(self, batch):
        """Serve one micro-batch of :class:`PredictionRequest` objects.

        Groups by database, routes each group, enforces deadlines, retries
        with backoff, bisects poisoned groups, degrades behind the circuit
        breaker — and completes every request in ``batch`` exactly once.
        """
        self.maybe_swap()
        perfstats.increment("serve.batch.count")
        perfstats.increment("serve.batch.requests", len(batch))
        with self._lock:
            self._batch_sizes[len(batch)] += 1
        started = time.perf_counter()
        by_db = {}
        for request in batch:
            by_db.setdefault(request.db_name, []).append(request)
        for db_name, requests in by_db.items():
            self._process_group(db_name, requests)
        finished = time.perf_counter()
        REGISTRY.observe("serve.batch_ms", (finished - started) * 1e3)
        for request in batch:
            if request.completed_at is not None and request.status in (
                    RequestStatus.DONE, RequestStatus.CACHED,
                    RequestStatus.DEGRADED):
                REGISTRY.observe(
                    "serve.latency_ms",
                    (request.completed_at - request.submitted_at) * 1e3)

    def _process_group(self, db_name, requests):
        route = self.route_for(db_name)
        if route is None:
            error = RoutingError(f"no deployment serves {db_name!r}")
            with self._lock:
                self._counts["failed"] += len(requests)
            for request in requests:
                request._finish(RequestStatus.FAILED, error=error)
            return
        digests = [self.plan_digest(db_name, request.plan)
                   for request in requests]
        # Late cache probe: a duplicate that was queued before its twin's
        # batch completed is answered here instead of re-predicted.
        pending, keys, hits = [], [], []
        with self._lock:
            for request, digest in zip(requests, digests):
                key = (route.checkpoint_key, digest)
                value = self._cache_get_locked(key)
                if value is not None:
                    self._counts["cached"] += 1
                    perfstats.increment("serve.cache.hit")
                    if request.trace is not None:
                        request.trace.annotate("cache.hit")
                    request._finish(RequestStatus.CACHED, value=value,
                                    served_by=route.served_by)
                    hits.append((request, digest, value))
                else:
                    pending.append(request)
                    keys.append(key)
        for request, digest, value in hits:  # observe outside the lock
            self._observe(db_name, request.plan, digest, value, route,
                          trace_id=(request.trace.trace_id
                                    if request.trace is not None else None))
        if not pending:
            return
        perfstats.increment("serve.cache.miss", len(pending))
        digests = [key[1] for key in keys]
        breaker = self._breakers.setdefault(route.checkpoint_key, _Breaker())
        if not breaker.allows_model_path(self.config.breaker_reset_ms / 1e3):
            # Breaker open: the model path is known-bad; answer from the
            # analytical baseline (or fail typed) without touching it.
            self._finish_degraded(db_name, route, pending)
            return
        self._predict_group(db_name, route, breaker, pending, digests)

    def _predict_group(self, db_name, route, breaker, requests, digests):
        """Retry with backoff; on persistent failure bisect until the
        poisoned request is isolated; enforce per-request deadlines."""
        requests, digests = self._enforce_deadlines(requests, digests)
        if not requests:
            return
        last_error = None
        for attempt in range(self.config.max_retries + 1):
            if attempt:
                perfstats.increment("serve.retry.count")
                with self._lock:
                    self._counts["retries"] += 1
                for request in requests:
                    request.retries += 1
                    if request.trace is not None:
                        request.trace.annotate("retry")
                backoff_s = (self.config.retry_backoff_ms / 1e3
                             * (2 ** (attempt - 1)))
                backoff_start = time.perf_counter()
                time.sleep(backoff_s)
                backoff_end = time.perf_counter()
                for request in requests:
                    if request.trace is not None:
                        request.trace.add_stage("backoff", backoff_start,
                                                backoff_end, self.proc_label)
                requests, digests = self._enforce_deadlines(requests,
                                                            digests)
                if not requests:
                    return
            try:
                values = self._attempt(db_name, requests, digests,
                                       route.model)
            except Exception as exc:  # noqa: BLE001 — injected or real
                perfstats.increment("serve.fault.model_path")
                last_error = exc
                continue
            breaker.record_success()
            with self._lock:
                self._counts["completed"] += len(requests)
                for digest, value in zip(digests, values):
                    self._cache_put_locked((route.checkpoint_key, digest),
                                           float(value))
            for request, digest, value in zip(requests, digests, values):
                request._finish(RequestStatus.DONE, value=float(value),
                                served_by=route.served_by)
                self._observe(db_name, request.plan, digest, float(value),
                              route,
                              trace_id=(request.trace.trace_id
                                        if request.trace is not None
                                        else None))
            return
        if len(requests) > 1:
            # Poisoned-batch bisection: the halves retry independently, so
            # everything except the poisoned request still completes.
            perfstats.increment("serve.fault.bisect")
            with self._lock:
                self._counts["bisects"] += 1
            for request in requests:
                if request.trace is not None:
                    request.trace.annotate("bisect")
            mid = len(requests) // 2
            self._predict_group(db_name, route, breaker,
                                requests[:mid], digests[:mid])
            self._predict_group(db_name, route, breaker,
                                requests[mid:], digests[mid:])
            return
        # A single request exhausted its retries: it fails alone — and the
        # breaker counts it; past the threshold the deployment degrades.
        breaker.record_failure(self.config.breaker_threshold)
        if breaker.state == "open" and self.config.degraded_fallback:
            self._finish_degraded(db_name, route, requests)
            return
        with self._lock:
            self._counts["failed"] += 1
        requests[0]._finish(RequestStatus.FAILED, error=last_error)

    def _attempt(self, db_name, requests, digests, model):
        """One model-path attempt over a group (featurize + predict).

        Traced requests record the group's featurize and infer intervals:
        a batched request waits through the whole group operation, so the
        group interval *is* that request's stage time.  Timing is taken
        only when the group holds at least one traced request, so untraced
        traffic pays nothing.
        """
        traced = [request for request in requests
                  if request.trace is not None]
        faults.check("serve.featurize", keys=digests)
        records = [ServingRecord(db_name, request.plan)
                   for request in requests]
        if traced:
            feat_start = time.perf_counter()
        graphs = featurize_records(
            records, self._dbs, cards=self.config.cards,
            estimator_cache=self._estimator_cache,
            feat_cache=self._feat_cache)
        if traced:
            feat_end = time.perf_counter()
            for request in traced:
                request.trace.add_stage("featurize", feat_start, feat_end,
                                        self.proc_label)
        faults.check("serve.infer", keys=digests)
        values = predict_runtimes(
            model.model, graphs, model.feature_scalers,
            model.target_scaler,
            batch_size=self.config.predict_batch_size,
            batch_cache=self._batch_cache)
        if traced:
            infer_end = time.perf_counter()
            for request in traced:
                request.trace.add_stage("infer", feat_end, infer_end,
                                        self.proc_label)
        return values

    def _enforce_deadlines(self, requests, digests):
        """Fail requests whose age exceeds their deadline.

        A request's own ``deadline_ms`` (which crosses the fleet pipe with
        it) takes precedence over the config-wide ``request_timeout_ms``;
        either way expiry is checked *before* featurization, so an
        already-dead request never costs model-path work.
        """
        config_ms = self.config.request_timeout_ms
        if config_ms is None and not any(
                request.deadline_ms is not None for request in requests):
            return requests, digests
        now = time.perf_counter()
        alive, alive_digests, expired = [], [], []
        for request, digest in zip(requests, digests):
            timeout_ms = (request.deadline_ms
                          if request.deadline_ms is not None else config_ms)
            if (timeout_ms is not None
                    and (now - request.submitted_at) * 1e3 > timeout_ms):
                expired.append((request, timeout_ms))
            else:
                alive.append(request)
                alive_digests.append(digest)
        if expired:
            perfstats.increment("serve.fault.deadline", len(expired))
            with self._lock:
                self._counts["failed"] += len(expired)
                self._counts["deadline_expired"] += len(expired)
            for request, timeout_ms in expired:
                if request.trace is not None:
                    request.trace.annotate("deadline")
                request._finish(RequestStatus.FAILED,
                                error=DeadlineExceededError(
                                    f"request exceeded its "
                                    f"{timeout_ms:.0f} ms deadline"))
        return alive, alive_digests

    def _finish_degraded(self, db_name, route, requests):
        """Answer requests from the analytical cost model, flagged DEGRADED.

        Degraded values never enter the result cache — a recovered model
        must never replay them — and ``served_by`` names the fallback, not
        the deployment.
        """
        if not self.config.degraded_fallback:
            error = RoutingError(
                f"deployment {route.deployment.name!r} is circuit-broken "
                "and degraded fallback is disabled")
            with self._lock:
                self._counts["failed"] += len(requests)
            for request in requests:
                request._finish(RequestStatus.FAILED, error=error)
            return
        analytical = self._analytical.get(db_name)
        if analytical is None:
            analytical = AnalyticalCostModel(self._dbs[db_name])
            self._analytical[db_name] = analytical
        served_by = ("analytical", route.deployment.name)
        perfstats.increment("serve.degraded.count", len(requests))
        with self._lock:
            self._counts["degraded"] += len(requests)
        for request in requests:
            if request.trace is not None:
                request.trace.annotate("degraded")
            try:
                value = analytical.predict_plan(request.plan)
            except Exception as exc:  # noqa: BLE001 — even fallbacks fail
                with self._lock:
                    self._counts["degraded"] -= 1
                    self._counts["failed"] += 1
                request._finish(RequestStatus.FAILED, error=exc)
                continue
            request._finish(RequestStatus.DEGRADED, value=value,
                            served_by=served_by)

    # ------------------------------------------------------------------
    def stats(self):
        """Core request/batch/cache/swap/fault counters, the batch-size
        histogram, and per-deployment breaker states."""
        breakers = {key: breaker.state
                    for key, breaker in self._breakers.items()}
        with self._lock:
            batches = sum(self._batch_sizes.values())
            sizes = sum(size * count
                        for size, count in self._batch_sizes.items())
            return {
                "requests": self._counts["requests"],
                "completed": self._counts["completed"],
                "cached": self._counts["cached"],
                "degraded": self._counts["degraded"],
                "shed": self._counts["shed"],
                "failed": self._counts["failed"],
                "swaps": self._counts["swaps"],
                "retries": self._counts["retries"],
                "bisects": self._counts["bisects"],
                "batcher_crashes": self._counts["batcher_crashes"],
                "requeued": self._counts["requeued"],
                "deadline_expired": self._counts["deadline_expired"],
                "hydrate_failures": self._counts["hydrate_failures"],
                "batches": batches,
                "batch_size_hist": dict(sorted(self._batch_sizes.items())),
                "mean_batch_size": (sizes / batches) if batches else 0.0,
                "result_cache_entries": len(self._result_cache),
                "breakers": breakers,
            }
