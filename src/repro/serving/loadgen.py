"""Seeded open-loop load generator for the predictor server and fleet.

Drives a :class:`~repro.serving.PredictorServer` — or a
:class:`~repro.serving.PredictorFleet`, whose ``submit``/``stats`` surface
is identical — with concurrent client threads and measures what "How Good
are Learned Cost Models, Really?" argues offline Q-error misses:
prediction *latency under load*.  :func:`skewed_requests` builds the
hot-database mixes the fleet's sharding experiments use, and every report
carries a per-database latency/degraded breakdown (``latency_by_db``) so
hot-shard tails are visible directly.

Open-loop means arrivals follow a seeded schedule (Poisson by default)
regardless of completions — the standard way to expose queueing delay: a
closed-loop client would slow its own arrival rate exactly when the server
struggles, hiding the latency it causes.  ``rate_per_s=None`` degenerates
to saturation mode (every client submits back-to-back), which is what the
throughput benchmarks use.

Latency is measured per request from ``submit()`` to completion (the
server stamps both ends), so client threads do not need to block on
results during the run; percentiles are computed after the fact — over
requests that actually *delivered* a value (``DONE``/``CACHED``/
``DEGRADED``); shed and failed requests are excluded, so admission-control
rejections cannot flatter the tail.  :class:`LoadReport` carries
throughput, **availability** (delivered / submitted — the chaos
benchmark's headline number), p50/p95/p99/mean/max latency, the per-status
request counts, and the server's batch-size histogram and
cache/shed/degraded counters — the numbers the perf harness records into
``BENCH_engine.json``.

Chaos mode: give :class:`LoadConfig` a ``faults`` schedule
(:class:`repro.robustness.faults.FaultSchedule`) and the run installs it
from the first submit until every handle resolves — deterministically
seeded, so a chaos run's fault decisions replay bit-identically — then
uninstalls it and snapshots the per-point injection counts into
``LoadReport.fault_stats``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs.export import latency_attribution as _span_attribution
from ..obs.trace import Tracer
from ..robustness import faults as fault_plane
from .server import RequestPriority, RequestStatus

__all__ = ["LoadConfig", "LoadReport", "run_load", "skewed_requests"]


def skewed_requests(requests_by_db, weights, n, seed=0):
    """A seeded hot-database request mix for fleet skew experiments.

    ``requests_by_db`` maps database names to lists of ``(db_name, plan)``
    pairs; ``weights`` maps the same names to relative arrival weights
    (e.g. ``{"hot": 0.9, "cold": 0.1}``).  Returns ``n`` requests drawn
    with replacement on the weighted mix, interleaved in one seeded
    arrival order — what a hot shard sees in production, and what the
    fleet's per-database latency breakdown is for.
    """
    names = sorted(requests_by_db)
    probabilities = np.array([float(weights[name]) for name in names])
    probabilities = probabilities / probabilities.sum()
    rng = np.random.default_rng(seed)
    choices = rng.choice(len(names), size=n, p=probabilities)
    positions = {name: 0 for name in names}
    mix = []
    for choice in choices:
        name = names[choice]
        pool = requests_by_db[name]
        mix.append(pool[positions[name] % len(pool)])
        positions[name] += 1
    return mix


@dataclass(frozen=True)
class LoadConfig:
    """Client count, arrival process, seed and chaos for one load run."""

    n_clients: int = 4
    rate_per_s: float | None = None  # aggregate arrival rate; None = saturate
    seed: int = 0
    timeout_s: float = 120.0  # wait bound for stragglers after arrivals end
    block: bool = False       # True: backpressure instead of shedding
    faults: object | None = None  # FaultSchedule to install for the run
    trace: bool = False       # record per-request spans for the run


@dataclass
class LoadReport:
    """Aggregate results of one load run."""

    n_requests: int
    completed: int      # predicted by a micro-batch
    cached: int         # answered from the result cache
    degraded: int       # answered by the analytical fallback (flagged)
    shed: int
    failed: int
    availability: float  # (completed + cached + degraded) / n_requests
    duration_s: float   # first submit -> last completion
    throughput_rps: float
    latency_ms: dict = field(default_factory=dict)  # p50/p95/p99/mean/max
    latency_by_db: dict = field(default_factory=dict)  # db -> percentiles
    batch_size_hist: dict = field(default_factory=dict)
    mean_batch_size: float = 0.0
    server_stats: dict = field(default_factory=dict)
    fault_stats: dict = field(default_factory=dict)  # per-point inject counts
    by_priority: dict = field(default_factory=dict)  # class -> counts/avail
    q_error_by_phase: dict = field(default_factory=dict)  # drift scenarios
    # Per-stage share of p50/p95/p99 from spans (traced runs only): the
    # obs.export.latency_attribution report, keyed "overall"/"by_class".
    latency_attribution: dict = field(default_factory=dict)
    spans: list = field(default_factory=list, repr=False)  # traced runs
    handles: list = field(default_factory=list, repr=False)  # per-request

    def compute_q_error_phases(self, truth_for, phases):
        """Per-phase Q-error summary for drift scenarios; stored and returned.

        ``phases`` maps phase names (e.g. ``"before"`` / ``"drift"`` /
        ``"after"``) to ``(start, end)`` index bounds over this report's
        handles in submission order; ``truth_for(handle)`` returns the
        ground-truth runtime (ms) for a handle.  Only model-path
        deliveries (``DONE``/``CACHED``) are scored — degraded fallback
        answers would conflate the fallback's error with the model's —
        so controller benchmarks and the quickstart can report recovery
        curves (Q-error before drift injection, during degradation, after
        recovery) without ad-hoc plumbing.
        """
        from ..nn import q_error
        ordered = sorted(self.handles, key=lambda handle: handle.submitted_at)
        scored = (RequestStatus.DONE, RequestStatus.CACHED)
        summary = {}
        for name, (start, end) in phases.items():
            predictions, truths = [], []
            for handle in ordered[start:end]:
                if handle.status in scored:
                    predictions.append(handle.value)
                    truths.append(truth_for(handle))
            if predictions:
                errors = q_error(np.asarray(predictions, dtype=float),
                                 np.asarray(truths, dtype=float))
                summary[name] = {
                    "count": int(errors.size),
                    "median": float(np.median(errors)),
                    "p95": float(np.percentile(errors, 95)),
                    "max": float(errors.max()),
                }
            else:
                summary[name] = {"count": 0}
        self.q_error_by_phase = summary
        return summary

    def as_dict(self):
        return {
            "n_requests": self.n_requests, "completed": self.completed,
            "cached": self.cached, "degraded": self.degraded,
            "shed": self.shed, "failed": self.failed,
            "availability": self.availability,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": dict(self.latency_ms),
            "latency_by_db": {name: dict(summary) for name, summary
                              in self.latency_by_db.items()},
            "batch_size_hist": dict(self.batch_size_hist),
            "mean_batch_size": self.mean_batch_size,
            "fault_stats": dict(self.fault_stats),
            "by_priority": {name: dict(summary) for name, summary
                            in self.by_priority.items()},
            "q_error_by_phase": {name: dict(summary) for name, summary
                                 in self.q_error_by_phase.items()},
            "latency_attribution": dict(self.latency_attribution),
        }


def _latency_summary(latencies):
    """p50/p95/p99/mean/max over a latency list; empty dict when empty."""
    if not latencies:
        return {}
    values = np.asarray(latencies)
    p50, p95, p99 = np.percentile(values, [50, 95, 99])
    return {"p50": float(p50), "p95": float(p95), "p99": float(p99),
            "mean": float(values.mean()), "max": float(values.max())}


def _arrival_offsets(n, rate_per_s, rng):
    """Cumulative Poisson-process arrival times (seconds), or zeros."""
    if not rate_per_s:
        return np.zeros(n)
    return np.cumsum(rng.exponential(1.0 / rate_per_s, size=n))


def run_load(server, requests, config=None, trace=None):
    """Fire ``requests`` — ``(db_name, plan)`` pairs — at ``server``.

    A request may also be a ``(db_name, plan, priority)`` triple
    (:class:`~repro.serving.core.RequestPriority`), in which case the
    priority rides the submit and the report carries a per-class
    breakdown in ``by_priority`` — how overload-control experiments show
    that shedding concentrates on low-priority traffic.

    Requests are interleaved round-robin over ``n_clients`` threads; each
    thread submits on the seeded open-loop schedule and never waits for
    results mid-run.  When ``config.faults`` is set, the schedule is
    installed for the whole run — arrivals *and* drain (chaos mode).
    Returns a :class:`LoadReport`.

    ``trace`` opts the run into per-request spans: pass ``True`` (a
    :class:`~repro.obs.trace.Tracer` is attached to the server for the
    run and detached after), or a ``Tracer`` to use.  ``None`` defers to
    ``config.trace``.  A traced report carries ``spans`` and the
    per-stage ``latency_attribution`` breakdown.
    """
    config = config or LoadConfig()
    if trace is None:
        trace = config.trace
    tracer = attached = None
    if trace:
        tracer = trace if isinstance(trace, Tracer) else None
        if tracer is None:
            tracer = getattr(server, "tracer", None)
        if tracer is None:
            tracer = Tracer()
        if getattr(server, "tracer", None) is not tracer:
            server.attach_tracer(tracer)
            attached = tracer
    requests = list(requests)
    per_client = [requests[i::config.n_clients]
                  for i in range(config.n_clients)]
    # One seeded arrival schedule per client; each client's share of the
    # aggregate rate keeps the fleet's total at rate_per_s.
    client_rate = (config.rate_per_s / config.n_clients
                   if config.rate_per_s else None)
    schedules = [_arrival_offsets(len(items), client_rate,
                                  np.random.default_rng(config.seed + index))
                 for index, items in enumerate(per_client)]
    handles = [[] for _ in per_client]
    barrier = threading.Barrier(config.n_clients + 1)

    def client(index):
        out = handles[index]
        barrier.wait()
        start = time.perf_counter()
        for item, offset in zip(per_client[index], schedules[index]):
            db_name, plan = item[0], item[1]
            kwargs = {}
            if len(item) > 2:
                kwargs["priority"] = item[2]
            delay = offset - (time.perf_counter() - start)
            if delay > 0:
                time.sleep(delay)
            out.append(server.submit(plan, db_name, block=config.block,
                                     **kwargs))

    threads = [threading.Thread(target=client, args=(index,), daemon=True)
               for index in range(config.n_clients)]
    fault_stats = {}
    if config.faults is not None:
        fault_plane.install(config.faults)
    try:
        # The schedule stays installed until every handle resolves (or the
        # straggler deadline passes): in saturation mode submission finishes
        # long before processing, so uninstalling at join time would leave
        # most of the run chaos-free.
        for thread in threads:
            thread.start()
        barrier.wait()
        for thread in threads:
            thread.join()
        flat = [handle for client_handles in handles
                for handle in client_handles]
        deadline = time.monotonic() + config.timeout_s
        for handle in flat:
            handle.wait(max(0.0, deadline - time.monotonic()))
        if config.faults is not None:
            fault_stats = config.faults.stats()
    finally:
        if config.faults is not None:
            fault_plane.uninstall()
        if attached is not None:
            server.attach_tracer(None)
    # Drain (not just read) so a reused tracer never leaks a previous
    # run's spans into this report's attribution.
    spans = tracer.drain() if tracer is not None else []
    attribution = _span_attribution(spans) if spans else {}

    by_status = {status: 0 for status in RequestStatus}
    latencies = []
    per_db = {}  # db -> {"latencies": [...], "degraded": int, "requests": int}
    first_submit, last_complete = np.inf, -np.inf
    delivered_statuses = (RequestStatus.DONE, RequestStatus.CACHED,
                          RequestStatus.DEGRADED)
    per_priority = {}  # class name -> status counts
    for handle in flat:
        by_status[handle.status] += 1
        first_submit = min(first_submit, handle.submitted_at)
        bucket = per_db.setdefault(handle.db_name,
                                   {"latencies": [], "degraded": 0,
                                    "requests": 0})
        bucket["requests"] += 1
        priority = getattr(handle, "priority", None) or \
            RequestPriority.NORMAL
        pr_bucket = per_priority.setdefault(
            priority.name.lower(),
            {"requests": 0, "delivered": 0, "degraded": 0,
             "shed": 0, "failed": 0})
        pr_bucket["requests"] += 1
        if handle.status is RequestStatus.DEGRADED:
            bucket["degraded"] += 1
            pr_bucket["degraded"] += 1
        if handle.status is RequestStatus.SHED:
            pr_bucket["shed"] += 1
        elif handle.status not in delivered_statuses:
            pr_bucket["failed"] += 1
        if handle.status in delivered_statuses:
            pr_bucket["delivered"] += 1
            latencies.append(handle.latency_ms)
            bucket["latencies"].append(handle.latency_ms)
            last_complete = max(last_complete, handle.completed_at)
    for summary in per_priority.values():
        summary["availability"] = (summary["delivered"] / summary["requests"]
                                   if summary["requests"] else 0.0)
    served = sum(by_status[status] for status in delivered_statuses)
    duration = max(last_complete - first_submit, 0.0) if served else 0.0
    latency_summary = _latency_summary(latencies)
    # Per-database breakdown: the hot-shard tails the fleet benchmarks
    # watch, plus how often each database fell back to the analytical model.
    latency_by_db = {}
    for db_name in sorted(per_db):
        bucket = per_db[db_name]
        summary = _latency_summary(bucket["latencies"])
        summary["requests"] = bucket["requests"]
        summary["delivered"] = len(bucket["latencies"])
        summary["degraded"] = bucket["degraded"]
        latency_by_db[db_name] = summary
    stats = server.stats()
    return LoadReport(
        n_requests=len(flat),
        completed=by_status[RequestStatus.DONE],
        cached=by_status[RequestStatus.CACHED],
        degraded=by_status[RequestStatus.DEGRADED],
        shed=by_status[RequestStatus.SHED],
        failed=(by_status[RequestStatus.FAILED]
                + by_status[RequestStatus.PENDING]),
        availability=(served / len(flat)) if flat else 0.0,
        duration_s=duration,
        throughput_rps=(served / duration) if duration > 0 else 0.0,
        latency_ms=latency_summary,
        latency_by_db=latency_by_db,
        batch_size_hist=stats["batch_size_hist"],
        mean_batch_size=stats["mean_batch_size"],
        server_stats=stats,
        fault_stats=fault_stats,
        by_priority=per_priority,
        latency_attribution=attribution,
        spans=spans,
        handles=flat,
    )
