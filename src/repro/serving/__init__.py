"""Online cost-prediction service over trained zero-shot models.

The paper's pitch is that zero-shot cost models predict runtimes on unseen
databases *out of the box*; systems like BRAD route live queries through
exactly such models.  This package turns the repo's offline experiment
engine into that online service:

* :class:`ModelRegistry` (``registry.py``) — versioned, content-addressed
  model deployments over the disk artifact store, with database-fingerprint
  compatibility metadata, atomic promote/rollback and hot-swap signalling.
* :class:`PredictorServer` (``server.py``) — an in-process, thread-based
  predictor that coalesces concurrent single-plan and bulk requests into
  micro-batches (deadline/size trigger) feeding the graph-free inference
  fast path, routes each request to a compatible deployment by database
  fingerprint, answers repeat plans from a bounded fingerprint-keyed result
  cache and sheds load via bounded-queue admission control.
* :func:`run_load` (``loadgen.py``) — a seeded open-loop load harness
  recording throughput, p50/p95/p99 latency, batch-size histograms and
  cache/shed counters.

Serving equivalence contract: for any request mix, every returned
prediction is bit-identical to a direct
:func:`~repro.core.training.predict_runtimes` call on the same model —
micro-batch composition, cache hits and hot-swaps never change a value.
This rests on the row-stable inference kernels
(:func:`repro.nn.row_stable_matmul`); see ``tests/test_serving.py``.

Perfstats counters: ``serve.batch.count`` / ``serve.batch.requests``,
``serve.cache.hit`` / ``serve.cache.miss``, ``serve.shed.count``,
``serve.swap.count`` and ``serve.registry.*``.
"""

from .registry import ModelDeployment, ModelRegistry
from .server import (PredictionRequest, PredictorServer, RequestShedError,
                     RequestStatus, RoutingError, ServerConfig, ServingRecord)
from .loadgen import LoadConfig, LoadReport, run_load

__all__ = [
    "ModelDeployment", "ModelRegistry",
    "PredictionRequest", "PredictorServer", "RequestShedError",
    "RequestStatus", "RoutingError", "ServerConfig", "ServingRecord",
    "LoadConfig", "LoadReport", "run_load",
]
