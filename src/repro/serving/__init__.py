"""Online cost-prediction service over trained zero-shot models.

The paper's pitch is that zero-shot cost models predict runtimes on unseen
databases *out of the box*; systems like BRAD route live queries through
exactly such models.  This package turns the repo's offline experiment
engine into that online service:

* :class:`ModelRegistry` (``registry.py``) — versioned, content-addressed
  model deployments over the disk artifact store, with database-fingerprint
  compatibility metadata, atomic promote/rollback, hot-swap signalling,
  checksum-verified hydration, checkpoint quarantine (corrupt deployments
  are moved aside — never deleted blind — and the manifest re-resolves to
  the previous good version) and a :meth:`~ModelRegistry.verify` audit.
* :class:`PredictorServer` (``server.py``) — an in-process, thread-based
  predictor that coalesces concurrent single-plan and bulk requests into
  micro-batches (deadline/size trigger) feeding the graph-free inference
  fast path, routes each request to a compatible deployment by database
  fingerprint, answers repeat plans from a bounded fingerprint-keyed result
  cache and sheds load via bounded-queue admission control.  The batcher is
  *supervised* (crash detection, thread restart, exactly-once re-enqueue of
  in-flight requests); the model path retries with exponential backoff,
  bisects poisoned batches, enforces per-request deadlines, and degrades
  gracefully to the analytical cost model behind a per-deployment circuit
  breaker — degraded responses are explicitly flagged ``DEGRADED``, never
  silently substituted.
* :class:`PredictorFleet` (``fleet.py``) — the scale-out version: a
  router in the client process shards requests by database fingerprint
  (with least-loaded spill for hot shards) across long-lived *forked*
  worker processes, each running the shared serving core
  (:class:`~repro.serving.core.ServingCore`, ``core.py`` — the
  transport-agnostic half of the server) over checkpoints hydrated via
  the registry's mmap path: one page-cache copy of every model for the
  whole fleet.  Handles keep the exact server semantics; worker death is
  supervised (fork-restart + exactly-once re-send of unanswered
  requests); promote/rollback broadcasts on ``registry.generation``
  changes, zero downtime fleet-wide.
* :class:`ContinuousLearningController` (``controller.py``) — the
  drift-aware control plane: an :class:`~repro.serving.core.
  ObservationTap` on the serving core feeds delivered predictions to a
  supervised daemon that joins them with seeded-simulator ground truth,
  drives per-deployment :class:`~repro.robustness.DriftDetector`\\ s,
  fine-tunes a candidate on drift, shadow-evaluates it on mirrored
  traffic, promotes it atomically behind a Q-error-margin gate, and
  auto-rolls-back on regression inside a probation window — every
  decision counted (``controller.*`` perfstats) and journaled to a
  typed, replayable event log.
* :func:`run_load` (``loadgen.py``) — a seeded open-loop load harness
  recording throughput, availability, p50/p95/p99 latency (completed
  requests only), batch-size histograms and cache/shed/degraded counters,
  with a chaos mode that installs a deterministic fault schedule
  (:mod:`repro.robustness.faults`) for the duration of the run.

Serving equivalence contract: for any request mix, every ``DONE``/``CACHED``
prediction is bit-identical to a direct
:func:`~repro.core.training.predict_runtimes` call on the same model —
micro-batch composition, cache hits, hot-swaps, retries, bisections and
batcher restarts never change a value.  ``DEGRADED`` responses come from
:class:`~repro.optimizer.AnalyticalCostModel` and are flagged as such.
This rests on the row-stable inference kernels
(:func:`repro.nn.row_stable_matmul`); see ``tests/test_serving.py`` and
``tests/test_faults.py``.

Perfstats counters: ``serve.batch.count`` / ``serve.batch.requests``,
``serve.cache.hit`` / ``serve.cache.miss``, ``serve.shed.count``,
``serve.swap.count``, ``serve.registry.*``, plus the robustness families
``serve.fault.*``, ``serve.retry.*`` and ``serve.degraded.*``.
"""

from .registry import (HydrationError, ModelDeployment, ModelRegistry,
                       RoutingError)
from .core import Observation, ObservationTap, RequestPriority, ServingCore
from .server import (DeadlineExceededError, DegradedResponseError,
                     PredictionRequest, PredictorServer, RequestShedError,
                     RequestStatus, ServerClosedError, ServerConfig,
                     ServingRecord)
from .fleet import PredictorFleet
from .loadgen import LoadConfig, LoadReport, run_load, skewed_requests
from .controller import (ContinuousLearningController, ControllerConfig,
                         ControllerEvent, ControllerJournal, ObservedRecord)

__all__ = [
    "HydrationError", "ModelDeployment", "ModelRegistry", "RoutingError",
    "DeadlineExceededError", "DegradedResponseError",
    "PredictionRequest", "PredictorFleet", "PredictorServer",
    "RequestPriority", "RequestShedError", "RequestStatus",
    "ServerClosedError", "ServerConfig",
    "ServingCore", "ServingRecord", "Observation", "ObservationTap",
    "LoadConfig", "LoadReport", "run_load", "skewed_requests",
    "ContinuousLearningController", "ControllerConfig", "ControllerEvent",
    "ControllerJournal", "ObservedRecord",
]
