"""Structural plan fingerprints and the content-keyed featurization cache.

``BatchCache`` (batching layer) memoizes by *object identity* — it can only
help when the caller holds on to the very same ``QueryGraph`` objects.  One
layer up, repeated workloads and the benchmark suite's per-cardinality-mode
evaluations re-featurize plans that are *equal but distinct*: re-planned
queries, re-generated traces, plans shipped from another process.  This
module closes that gap:

* :func:`plan_fingerprint` hashes everything featurization reads — the plan
  tree (operators, estimates, true rows, widths, workers), predicate
  structure *and* literals (literals feed the cardinality estimators even
  though they never enter the features), join edges, aggregates, group-by /
  sort keys, the cardinality source, the database fingerprint and the
  storage-format map — into a 16-byte BLAKE2 digest.
* :class:`FeaturizationCache` maps fingerprints to built ``QueryGraph``
  objects, so re-featurizing an equal plan is one hash + one dict lookup
  instead of annotation + graph construction.

Contract: two calls with equal fingerprints would produce graphs with
identical features **except** for the ``"deepdb"`` source, whose estimates
are sampling-based — there the cache pins the *first* annotation (a feature,
not a bug: repeated evaluations of one workload should see one consistent
encoding).  Database content changes are visible only through
:meth:`~repro.storage.Database.fingerprint` (name + per-table row counts);
in-place value mutations that keep row counts require an explicit
``clear()``, same as the estimator caches.
"""

from __future__ import annotations

from collections import OrderedDict
from hashlib import blake2b

from ..sql import BooleanPredicate, Comparison

__all__ = ["plan_fingerprint", "records_fingerprint", "database_digest",
           "FeaturizationCache"]


def _predicate_token(predicate):
    if predicate is None:
        return None
    if isinstance(predicate, Comparison):
        literal = predicate.literal
        if isinstance(literal, list):
            literal = tuple(literal)
        return ("C", predicate.table, predicate.column, predicate.op.value,
                literal)
    if isinstance(predicate, BooleanPredicate):
        return ("B", predicate.op.value,
                tuple(_predicate_token(child) for child in predicate.children))
    raise TypeError(f"unknown predicate {type(predicate)!r}")


def _plan_token(node):
    """Canonical token tree covering every plan field featurization reads."""
    join = node.join
    return (
        node.op_name, node.table, node.index_column,
        node.est_rows, node.true_rows, node.width, node.workers,
        node.storage_format, tuple(node.scanned_columns),
        _predicate_token(node.filter_predicate),
        ((join.child_table, join.child_column,
          join.parent_table, join.parent_column) if join is not None else None),
        tuple((agg.func, agg.table, agg.column) for agg in node.aggregates),
        tuple(node.group_by), tuple(node.sort_keys),
        tuple(_plan_token(child) for child in node.children),
    )


def _digest(db_fingerprint, cards, sf_token, plan):
    payload = ((db_fingerprint, cards, sf_token), _plan_token(plan))
    return blake2b(repr(payload).encode(), digest_size=16).digest()


def plan_fingerprint(db, plan, cards, storage_formats=None,
                     db_fingerprint=None):
    """16-byte content digest of (plan, cardinality source, database).

    Equal plans — same structure, estimates, recorded true rows, predicates
    with literals — against the same database state and card source collide
    deliberately; any featurization-relevant difference changes the digest
    (``repr`` round-trips floats exactly).  Identical to the digests
    :meth:`FeaturizationCache.key` produces (both go through the same
    helper), so it can be used to probe or pre-seed a cache.

    ``db_fingerprint`` lets callers that fingerprint many plans against one
    database (the serving result cache, batch featurization) amortize the
    per-table row-count walk of :meth:`~repro.storage.Database.fingerprint`.
    """
    sf_token = (tuple(sorted(storage_formats.items()))
                if storage_formats else None)
    if db_fingerprint is None:
        db_fingerprint = db.fingerprint()
    return _digest(db_fingerprint, cards, sf_token, plan)


def database_digest(db_or_fingerprint):
    """16-byte digest of a database fingerprint (name + per-table row counts).

    The compact routing key of the serving layer: model deployments record
    the digests of the databases they were trained on (or validated
    against), and the predictor routes each request's database to a
    compatible deployment by digest equality.  Accepts either a
    :class:`~repro.storage.Database` or the tuple its ``fingerprint()``
    returns.
    """
    fingerprint = (db_or_fingerprint.fingerprint()
                   if hasattr(db_or_fingerprint, "fingerprint")
                   else db_or_fingerprint)
    return blake2b(repr(fingerprint).encode(), digest_size=16).digest()


def records_fingerprint(records, dbs, cards, storage_formats=None,
                        key_cache=None):
    """16-byte content digest of an ordered trace-record sequence.

    Concatenates the per-plan :func:`plan_fingerprint` digests (so order
    matters — graph lists are positional) and hashes them once more.  Two
    equal-but-distinct traces (re-generated workloads, unpickled copies)
    collide deliberately; any change to a plan, a database's row counts, or
    the cardinality source changes the digest.  Used to key the benchmark
    suite's graph lists and the disk artifact store.

    ``key_cache`` may be a :class:`FeaturizationCache`, whose per-plan-object
    digest memo makes warm re-fingerprinting two dict probes per record.
    """
    db_fingerprints = {}
    pieces = bytearray()
    for record in records:
        db = dbs[record.db_name]
        fingerprint = db_fingerprints.get(record.db_name)
        if fingerprint is None:
            fingerprint = db.fingerprint()
            db_fingerprints[record.db_name] = fingerprint
        if key_cache is not None:
            pieces += key_cache.key(db, record.plan, cards, storage_formats,
                                    db_fingerprint=fingerprint)
        else:
            sf_token = (tuple(sorted(storage_formats.items()))
                        if storage_formats else None)
            pieces += _digest(fingerprint, cards, sf_token, record.plan)
    return blake2b(bytes(pieces), digest_size=16).digest()


class FeaturizationCache:
    """Bounded LRU from plan fingerprints to featurized ``QueryGraph``s.

    Unlike ``BatchCache`` there is nothing to pin: keys are content digests,
    so they can never be aliased by object reuse.  Cached graphs carry their
    ``PackedGraph`` arrays, and because repeated lookups return the *same*
    graph objects, a downstream identity-keyed ``BatchCache`` hits too —
    warm re-featurization of a whole trace is pure lookups end to end.
    """

    def __init__(self, max_entries=4096):
        self.max_entries = int(max_entries)
        self._entries = OrderedDict()
        # id(plan) -> (plan, {(db_fp, cards, sf_token): digest}).  Plans are
        # immutable once executed (a mutated variant is a new plan object),
        # so hashing each object's content once is sound; entries pin the
        # plan so ids cannot be recycled, and the memo is bounded.
        self._key_memo = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._entries)

    def key(self, db, plan, cards, storage_formats=None, db_fingerprint=None):
        """Cache key for (plan, card source, db): a content digest.

        Per-plan-object digests are memoized — warm lookups cost two dict
        probes instead of a re-hash.  ``db_fingerprint`` lets batch callers
        amortize the database fingerprint across a whole trace.
        """
        entry = self._key_memo.get(id(plan))
        if entry is None or entry[0] is not plan:
            entry = (plan, {})
            self._key_memo[id(plan)] = entry
            while len(self._key_memo) > 4 * self.max_entries:
                self._key_memo.popitem(last=False)
        if db_fingerprint is None:
            db_fingerprint = db.fingerprint()
        sf_token = (tuple(sorted(storage_formats.items()))
                    if storage_formats else None)
        context = (db_fingerprint, cards, sf_token)
        digest = entry[1].get(context)
        if digest is None:
            digest = _digest(db_fingerprint, cards, sf_token, plan)
            entry[1][context] = digest
        return digest

    def get(self, key):
        graph = self._entries.get(key)
        if graph is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return graph

    def put(self, key, graph):
        self._entries[key] = graph
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}

    def clear(self):
        self._entries.clear()
