"""Batching of query graphs for vectorized message passing.

Multiple :class:`QueryGraph` objects are merged into one disjoint union with
globally renumbered nodes.  The batch precomputes everything the model's
forward pass needs:

* per-node-type feature matrices (scaled) and the global position of every
  node (nodes are grouped by type, so a global hidden-state matrix is the
  concatenation of per-type blocks),
* message-passing *levels*: for each level and node type, the node indices
  at that level plus the (child, parent-slot) edge arrays feeding them,
* root indices (one per graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graph import NODE_TYPES

__all__ = ["GraphBatch", "make_batch"]


@dataclass
class LevelGroup:
    """Nodes of one (level, node type) cell of the batch."""

    node_type: str
    node_indices: np.ndarray       # global indices of the nodes updated here
    edge_children: np.ndarray      # global indices of their children
    edge_parent_slots: np.ndarray  # position of each child's parent inside
                                   # ``node_indices`` (for scatter_sum)


@dataclass
class GraphBatch:
    """A batched disjoint union of query graphs."""

    features: dict                 # node type -> (n_t, dim_t) matrix
    type_offsets: dict             # node type -> offset in the global matrix
    type_counts: dict
    init_positions: dict           # node type -> global indices of its nodes
    levels: list = field(default_factory=list)  # list[list[LevelGroup]]
    roots: np.ndarray = None
    n_nodes: int = 0

    @property
    def n_graphs(self):
        return len(self.roots)


def make_batch(graphs, scalers=None) -> GraphBatch:
    """Merge graphs into one batch (optionally scaling features)."""
    if not graphs:
        raise ValueError("cannot batch zero graphs")

    # Global ids: grouped by node type so hidden states can be assembled by
    # concatenating per-type encoder outputs.
    per_type_nodes = {t: [] for t in NODE_TYPES}   # (graph_idx, local_idx)
    for g_idx, graph in enumerate(graphs):
        for local, node_type in enumerate(graph.node_types):
            per_type_nodes[node_type].append((g_idx, local))

    type_offsets, type_counts = {}, {}
    global_of = {}  # (graph_idx, local_idx) -> global id
    cursor = 0
    for node_type in NODE_TYPES:
        type_offsets[node_type] = cursor
        nodes = per_type_nodes[node_type]
        type_counts[node_type] = len(nodes)
        for position, key in enumerate(nodes):
            global_of[key] = cursor + position
        cursor += len(nodes)
    n_nodes = cursor

    features = {}
    init_positions = {}
    for node_type in NODE_TYPES:
        nodes = per_type_nodes[node_type]
        if not nodes:
            continue
        matrix = np.stack([graphs[g].features[i] for g, i in nodes])
        if scalers is not None:
            matrix = scalers.transform(node_type, matrix)
        features[node_type] = matrix
        init_positions[node_type] = np.array(
            [global_of[key] for key in nodes], dtype=np.int64)

    # Levels across the whole batch.
    level_of = np.zeros(n_nodes, dtype=np.int64)
    children_global = {}
    for g_idx, graph in enumerate(graphs):
        local_levels = graph.levels()
        for local in range(graph.n_nodes):
            level_of[global_of[(g_idx, local)]] = local_levels[local]
        for child, parent in graph.edges:
            children_global.setdefault(global_of[(g_idx, parent)], []).append(
                global_of[(g_idx, child)])

    max_level = int(level_of.max()) if n_nodes else 0
    node_type_of = np.empty(n_nodes, dtype=object)
    for node_type in NODE_TYPES:
        for key in per_type_nodes[node_type]:
            node_type_of[global_of[key]] = node_type

    levels = []
    for level in range(max_level + 1):
        groups = []
        at_level = np.nonzero(level_of == level)[0]
        for node_type in NODE_TYPES:
            nodes = np.array([n for n in at_level
                              if node_type_of[n] == node_type], dtype=np.int64)
            if nodes.size == 0:
                continue
            slot_of = {int(n): slot for slot, n in enumerate(nodes)}
            edge_children, edge_slots = [], []
            for node in nodes:
                for child in children_global.get(int(node), []):
                    edge_children.append(child)
                    edge_slots.append(slot_of[int(node)])
            groups.append(LevelGroup(
                node_type=node_type,
                node_indices=nodes,
                edge_children=np.array(edge_children, dtype=np.int64),
                edge_parent_slots=np.array(edge_slots, dtype=np.int64)))
        levels.append(groups)

    roots = np.array([global_of[(g_idx, graph.root)]
                      for g_idx, graph in enumerate(graphs)], dtype=np.int64)
    return GraphBatch(features=features, type_offsets=type_offsets,
                      type_counts=type_counts, init_positions=init_positions,
                      levels=levels, roots=roots, n_nodes=n_nodes)
