"""Batching of query graphs for vectorized message passing.

Multiple :class:`QueryGraph` objects are merged into one disjoint union with
globally renumbered nodes.  The batch precomputes everything the model's
forward pass needs:

* per-node-type feature matrices (scaled) and the global position of every
  node (nodes are grouped by type, so a global hidden-state matrix is the
  concatenation of per-type blocks),
* message-passing *levels*: for each level and node type, the node indices
  at that level plus the (child, parent-slot) edge arrays feeding them,
* a *message-passing order*: the position every node's updated state takes
  in the concatenation of per-group combiner outputs, which lets the model
  assemble hidden states by gather/concat instead of dense accumulation,
* root indices (one per graph).

``make_batch`` is fully vectorized (argsort over type codes for global ids,
``searchsorted``/``bincount`` for level grouping); each graph contributes
cached :class:`~repro.featurization.graph.PackedGraph` arrays, so batching
costs no per-node python loops.  ``make_batch_reference`` keeps the original
loop-based construction as an executable specification for tests and
benchmarks.  :class:`BatchCache` memoizes whole batches by graph identity for
callers that featurize the same graphs repeatedly (repeated evaluation in
``bench/experiments.py``, ``predict_runtimes`` in the public API).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .graph import NODE_TYPES

__all__ = ["GraphBatch", "LevelGroup", "make_batch", "make_batch_reference",
           "BatchCache"]

_N_TYPES = len(NODE_TYPES)


@dataclass
class LevelGroup:
    """Nodes of one (level, node type) cell of the batch."""

    node_type: str
    node_indices: np.ndarray       # global indices of the nodes updated here
    edge_children: np.ndarray      # global indices of their children
    edge_parent_slots: np.ndarray  # position of each child's parent inside
                                   # ``node_indices`` (for scatter_sum)
    child_positions: np.ndarray = None  # positions of ``edge_children`` in
                                        # message-passing order (block
                                        # assembly; filled by _attach_mp_order)


@dataclass
class GraphBatch:
    """A batched disjoint union of query graphs."""

    features: dict                 # node type -> (n_t, dim_t) matrix
    type_offsets: dict             # node type -> offset in the global matrix
    type_counts: dict
    init_positions: dict           # node type -> global indices of its nodes
    levels: list = field(default_factory=list)  # list[list[LevelGroup]]
    roots: np.ndarray = None
    n_nodes: int = 0
    mp_positions: np.ndarray = None    # global id -> row in the concatenated
                                       # per-group combiner outputs
    root_positions: np.ndarray = None  # mp position of each graph's root
    _feature_cast: dict = field(default_factory=dict, repr=False)

    @property
    def n_graphs(self):
        return len(self.roots)

    def features_as(self, dtype):
        """Feature matrices cast to ``dtype`` (cached per dtype)."""
        dtype = np.dtype(dtype)
        cached = self._feature_cast.get(dtype)
        if cached is None:
            cached = {t: m.astype(dtype, copy=False)
                      for t, m in self.features.items()}
            self._feature_cast[dtype] = cached
        return cached

    def cast_(self, dtype):
        """Cast feature matrices in place (training batches, done once)."""
        dtype = np.dtype(dtype)
        self.features = {t: m.astype(dtype, copy=False)
                         for t, m in self.features.items()}
        self._feature_cast.clear()
        return self


def _attach_mp_order(batch: GraphBatch) -> GraphBatch:
    """Fill mp_positions / child_positions / root_positions from the levels.

    Message-passing order is simply the order groups are traversed, so the
    concatenation of per-group combiner outputs lines up with these
    positions; children always live at lower levels, hence at positions
    before the current group's block.
    """
    mp_positions = np.empty(batch.n_nodes, dtype=np.int64)
    cursor = 0
    for level_groups in batch.levels:
        for group in level_groups:
            n_group = len(group.node_indices)
            mp_positions[group.node_indices] = np.arange(cursor,
                                                         cursor + n_group)
            cursor += n_group
    for level_groups in batch.levels:
        for group in level_groups:
            group.child_positions = mp_positions[group.edge_children]
    batch.mp_positions = mp_positions
    batch.root_positions = mp_positions[batch.roots]
    return batch


def make_batch(graphs, scalers=None) -> GraphBatch:
    """Merge graphs into one batch (optionally scaling features)."""
    if not graphs:
        raise ValueError("cannot batch zero graphs")

    packs = [graph.packed() for graph in graphs]
    counts = np.array([p.n_nodes for p in packs], dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    n_nodes = int(offsets[-1])

    # Global ids: grouped by node type (stable argsort keeps (graph, local)
    # order within each type) so hidden states can be assembled by
    # concatenating per-type encoder outputs.
    all_codes = np.concatenate([p.type_codes for p in packs])
    order = np.argsort(all_codes, kind="stable")
    global_of = np.empty(n_nodes, dtype=np.int64)
    global_of[order] = np.arange(n_nodes)
    tcounts = np.bincount(all_codes, minlength=_N_TYPES)
    toffsets = np.concatenate(([0], np.cumsum(tcounts)))

    type_offsets, type_counts = {}, {}
    features, init_positions = {}, {}
    for code, node_type in enumerate(NODE_TYPES):
        type_offsets[node_type] = int(toffsets[code])
        type_counts[node_type] = int(tcounts[code])
        if not tcounts[code]:
            continue
        matrix = np.concatenate(
            [p.features_by_code[code] for p in packs
             if code in p.features_by_code], axis=0)
        if scalers is not None:
            matrix = scalers.transform(node_type, matrix)
        features[node_type] = matrix
        init_positions[node_type] = np.arange(
            toffsets[code], toffsets[code] + tcounts[code], dtype=np.int64)

    # Per-global-id level and type code.
    all_levels = np.concatenate([p.levels for p in packs])
    level_of = np.empty(n_nodes, dtype=np.int64)
    level_of[global_of] = all_levels
    code_of = np.empty(n_nodes, dtype=np.int64)
    code_of[global_of] = all_codes

    # Edges in global ids.
    if any(p.edges.size for p in packs):
        children = global_of[np.concatenate(
            [p.edges[:, 0] + off for p, off in zip(packs, offsets)])]
        parents = global_of[np.concatenate(
            [p.edges[:, 1] + off for p, off in zip(packs, offsets)])]
    else:
        children = parents = np.empty(0, dtype=np.int64)

    # Nodes in message-passing order: (level, type, global id).  Groups are
    # the maximal runs sharing (level, type).
    gid = np.arange(n_nodes)
    mp_nodes = np.lexsort((gid, code_of, level_of))
    node_keys = level_of[mp_nodes] * _N_TYPES + code_of[mp_nodes]
    bounds = np.concatenate(([0], np.flatnonzero(np.diff(node_keys)) + 1,
                             [n_nodes]))

    # Edges sorted to match: by parent's (level, type, id), original order
    # within a parent (so per-parent child order equals insertion order).
    if children.size:
        e_order = np.lexsort((np.arange(len(parents)), parents,
                              code_of[parents], level_of[parents]))
        s_children = children[e_order]
        s_parents = parents[e_order]
        edge_keys = level_of[s_parents] * _N_TYPES + code_of[s_parents]
    else:
        s_children = s_parents = edge_keys = np.empty(0, dtype=np.int64)

    levels = []
    for start, stop in zip(bounds[:-1], bounds[1:]):
        nodes = mp_nodes[start:stop]
        key = int(node_keys[start])
        level, code = divmod(key, _N_TYPES)
        while len(levels) <= level:
            levels.append([])
        lo = np.searchsorted(edge_keys, key, side="left")
        hi = np.searchsorted(edge_keys, key, side="right")
        group_children = s_children[lo:hi]
        group_parents = s_parents[lo:hi]
        levels[level].append(LevelGroup(
            node_type=NODE_TYPES[code],
            node_indices=nodes,
            edge_children=group_children,
            edge_parent_slots=np.searchsorted(nodes, group_parents)))

    roots_local = np.array([graph.root for graph in graphs], dtype=np.int64)
    roots = global_of[offsets[:-1] + roots_local]
    batch = GraphBatch(features=features, type_offsets=type_offsets,
                       type_counts=type_counts, init_positions=init_positions,
                       levels=levels, roots=roots, n_nodes=n_nodes)
    return _attach_mp_order(batch)


def make_batch_reference(graphs, scalers=None) -> GraphBatch:
    """Loop-based reference construction (executable spec for tests/bench).

    Kept deliberately close to the original per-node implementation; the
    vectorized :func:`make_batch` must produce identical batches.
    """
    if not graphs:
        raise ValueError("cannot batch zero graphs")

    per_type_nodes = {t: [] for t in NODE_TYPES}   # (graph_idx, local_idx)
    for g_idx, graph in enumerate(graphs):
        for local, node_type in enumerate(graph.node_types):
            per_type_nodes[node_type].append((g_idx, local))

    type_offsets, type_counts = {}, {}
    global_of = {}  # (graph_idx, local_idx) -> global id
    cursor = 0
    for node_type in NODE_TYPES:
        type_offsets[node_type] = cursor
        nodes = per_type_nodes[node_type]
        type_counts[node_type] = len(nodes)
        for position, key in enumerate(nodes):
            global_of[key] = cursor + position
        cursor += len(nodes)
    n_nodes = cursor

    features = {}
    init_positions = {}
    for node_type in NODE_TYPES:
        nodes = per_type_nodes[node_type]
        if not nodes:
            continue
        matrix = np.stack([graphs[g].features[i] for g, i in nodes])
        if scalers is not None:
            matrix = scalers.transform(node_type, matrix)
        features[node_type] = matrix
        init_positions[node_type] = np.array(
            [global_of[key] for key in nodes], dtype=np.int64)

    level_of = np.zeros(n_nodes, dtype=np.int64)
    children_global = {}
    for g_idx, graph in enumerate(graphs):
        local_levels = graph.levels()
        for local in range(graph.n_nodes):
            level_of[global_of[(g_idx, local)]] = local_levels[local]
        for child, parent in graph.edges:
            children_global.setdefault(global_of[(g_idx, parent)], []).append(
                global_of[(g_idx, child)])

    max_level = int(level_of.max()) if n_nodes else 0
    node_type_of = np.empty(n_nodes, dtype=object)
    for node_type in NODE_TYPES:
        for key in per_type_nodes[node_type]:
            node_type_of[global_of[key]] = node_type

    levels = []
    for level in range(max_level + 1):
        groups = []
        at_level = np.nonzero(level_of == level)[0]
        for node_type in NODE_TYPES:
            nodes = np.array([n for n in at_level
                              if node_type_of[n] == node_type], dtype=np.int64)
            if nodes.size == 0:
                continue
            slot_of = {int(n): slot for slot, n in enumerate(nodes)}
            edge_children, edge_slots = [], []
            for node in nodes:
                for child in children_global.get(int(node), []):
                    edge_children.append(child)
                    edge_slots.append(slot_of[int(node)])
            groups.append(LevelGroup(
                node_type=node_type,
                node_indices=nodes,
                edge_children=np.array(edge_children, dtype=np.int64),
                edge_parent_slots=np.array(edge_slots, dtype=np.int64)))
        levels.append(groups)

    roots = np.array([global_of[(g_idx, graph.root)]
                      for g_idx, graph in enumerate(graphs)], dtype=np.int64)
    batch = GraphBatch(features=features, type_offsets=type_offsets,
                       type_counts=type_counts, init_positions=init_positions,
                       levels=levels, roots=roots, n_nodes=n_nodes)
    return _attach_mp_order(batch)


class BatchCache:
    """LRU cache of :class:`GraphBatch` objects keyed on graph identity.

    Callers that featurize the *same* graph objects repeatedly (evaluation
    loops in the benchmark suite, ``predict_runtimes``) get the batch back
    without re-running construction.  Entries hold strong references to
    their graphs, so an ``id()`` key can never be recycled while cached;
    the cache is bounded (LRU eviction) to keep that retention small.

    :meth:`get_chunks` serves chunked callers: it remembers which cached
    chunk starts at a given graph, so a list that grew, shrank or shifted
    around a previously seen subsequence re-uses the cached chunk instead of
    re-batching everything from the new chunk boundaries.
    """

    def __init__(self, max_entries=64):
        self.max_entries = int(max_entries)
        self._entries = OrderedDict()
        self._chunk_heads = {}    # (id(first graph), id(scalers)) -> key
        self.hits = 0
        self.misses = 0

    def _key(self, graphs, scalers):
        # Size fields in the key catch graphs mutated after caching (same
        # staleness guard as QueryGraph.packed()).
        return (tuple((id(g), g.n_nodes, len(g.edges)) for g in graphs),
                id(scalers))

    def get(self, graphs, scalers=None):
        graphs = list(graphs)
        key = self._key(graphs, scalers)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[2]
        self.misses += 1
        batch = make_batch(graphs, scalers)
        self._entries[key] = (graphs, scalers, batch)
        if graphs:
            self._chunk_heads[(id(graphs[0]), id(scalers))] = key
        while len(self._entries) > self.max_entries:
            evicted_key, entry = self._entries.popitem(last=False)
            head_key = (id(entry[0][0]), id(entry[1])) if entry[0] else None
            if head_key is not None \
                    and self._chunk_heads.get(head_key) == evicted_key:
                del self._chunk_heads[head_key]
        return batch

    def get_chunks(self, graphs, scalers=None, batch_size=256):
        """Batches covering ``graphs`` in order, at most ``batch_size`` each.

        Chunk boundaries prefer previously cached chunks: at each position,
        if the upcoming graphs reproduce a chunk that was cached starting at
        this graph, that chunk is re-used — so calling with a longer, shorter
        or differently assembled list still hits for every unchanged
        subsequence instead of re-batching on shifted boundaries.
        """
        graphs = list(graphs)
        batches = []
        position, n = 0, len(graphs)
        while position < n:
            hint = self._chunk_heads.get((id(graphs[position]), id(scalers)))
            if hint is not None and hint in self._entries:
                length = len(hint[0])
                if (0 < length <= batch_size and length <= n - position
                        and self._key(graphs[position:position + length],
                                      scalers) == hint):
                    batches.append(self.get(graphs[position:position + length],
                                            scalers))
                    position += length
                    continue
            chunk = graphs[position:position + batch_size]
            batches.append(self.get(chunk, scalers))
            position += len(chunk)
        return batches

    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}

    def clear(self):
        """Drop all cached batches (and the pinned graph references)."""
        self._entries.clear()
        self._chunk_heads.clear()
