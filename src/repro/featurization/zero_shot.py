"""Builder for the zero-shot query-graph encoding (Figure 3).

Translates an annotated physical plan into a :class:`QueryGraph`:

* every plan operator becomes a plan node (gray in Fig. 3),
* scans hang their table node (blue) and their predicate tree (red) below
  them; predicate leaves reference attribute nodes (green),
* joins get an equality predicate node over the two join-key attributes,
* aggregate operators get output-column nodes (one per aggregate) whose
  children are the aggregated attributes.

Attribute nodes are shared within a query (one per table.column), as in the
paper's encoding.
"""

from __future__ import annotations

from ..sql import BooleanPredicate, Comparison, PredOp
from .features import (attribute_features, output_features, plan_features,
                       predicate_features, table_features)
from .graph import QueryGraph

__all__ = ["build_query_graph"]


class _GraphBuilder:
    def __init__(self, db, cards, storage_formats=None):
        self.db = db
        self.cards = cards
        self.graph = QueryGraph()
        self._attributes = {}
        self._storage_formats = storage_formats or {}

    # ------------------------------------------------------------------
    def attribute_node(self, table, column):
        key = (table, column)
        if key not in self._attributes:
            stats = self.db.column_stats(table, column)
            node = self.graph.add_node("attribute", attribute_features(
                width=stats.width, correlation=stats.correlation,
                ndistinct=stats.ndistinct, null_frac=stats.null_frac,
                dtype=stats.dtype))
            self._attributes[key] = node
        return self._attributes[key]

    def table_node(self, table):
        stats = self.db.table_stats(table)
        fmt = self._storage_formats.get(table, "row")
        return self.graph.add_node("table", table_features(
            reltuples=stats.reltuples, relpages=stats.relpages,
            storage_format=fmt))

    def predicate_node(self, predicate, parent_table=None):
        """Encode a predicate tree; returns the root predicate node index."""
        if isinstance(predicate, Comparison):
            attr = self.attribute_node(predicate.table, predicate.column)
            node = self.graph.add_node("predicate", predicate_features(
                predicate.op, predicate.literal_feature))
            self.graph.add_edge(attr, node)
            return node
        if isinstance(predicate, BooleanPredicate):
            children = [self.predicate_node(child)
                        for child in predicate.children]
            node = self.graph.add_node("predicate", predicate_features(
                predicate.op, predicate.literal_feature))
            for child in children:
                self.graph.add_edge(child, node)
            return node
        raise TypeError(f"unknown predicate {type(predicate)!r}")

    def join_predicate_node(self, join):
        """Equality predicate over the two join-key attributes."""
        child_attr = self.attribute_node(join.child_table, join.child_column)
        parent_attr = self.attribute_node(join.parent_table, join.parent_column)
        node = self.graph.add_node("predicate",
                                   predicate_features(PredOp.EQ, 1.0))
        self.graph.add_edge(child_attr, node)
        self.graph.add_edge(parent_attr, node)
        return node

    def output_node(self, aggregate):
        attr = None
        if aggregate.column is not None:
            attr = self.attribute_node(aggregate.table, aggregate.column)
        node = self.graph.add_node("output", output_features(aggregate.func))
        if attr is not None:
            self.graph.add_edge(attr, node)
        return node

    # ------------------------------------------------------------------
    def plan_node(self, node):
        child_plan_ids = [self.plan_node(child) for child in node.children]

        extra_children = []
        if node.is_scan:
            extra_children.append(self.table_node(node.table))
            if node.filter_predicate is not None:
                extra_children.append(self.predicate_node(node.filter_predicate))
        if node.is_join and node.join is not None:
            extra_children.append(self.join_predicate_node(node.join))
        if node.op_name in ("Aggregate", "HashAggregate"):
            for aggregate in node.aggregates:
                extra_children.append(self.output_node(aggregate))
            for table, column in node.group_by:
                extra_children.append(self.attribute_node(table, column))
        if node.op_name == "Sort":
            for table, column in node.sort_keys:
                extra_children.append(self.attribute_node(table, column))

        card_out = self.cards.get(id(node), node.est_rows)
        card_prod = 1.0
        for child in node.children:
            card_prod *= max(self.cards.get(id(child), child.est_rows), 1.0)
        plan_id = self.graph.add_node("plan", plan_features(
            op_name=node.op_name, card_out=card_out, card_prod=card_prod,
            width=node.width, workers=node.workers))
        for child_id in child_plan_ids + extra_children:
            self.graph.add_edge(child_id, plan_id)
        return plan_id


def build_query_graph(db, plan, cards, storage_formats=None) -> QueryGraph:
    """Encode an annotated plan as a transferable query graph.

    ``cards`` maps ``id(plan_node) -> cardinality`` (see
    :func:`repro.cardest.annotate_cardinalities`); the choice of source is
    how the exact / DeepDB / optimizer variants of the paper are realized.
    """
    builder = _GraphBuilder(db, cards, storage_formats)
    root = builder.plan_node(plan)
    builder.graph.root = root
    builder.graph.validate()
    return builder.graph
