"""Builder for the zero-shot query-graph encoding (Figure 3).

Translates an annotated physical plan into a :class:`QueryGraph`:

* every plan operator becomes a plan node (gray in Fig. 3),
* scans hang their table node (blue) and their predicate tree (red) below
  them; predicate leaves reference attribute nodes (green),
* joins get an equality predicate node over the two join-key attributes,
* aggregate operators get output-column nodes (one per aggregate) whose
  children are the aggregated attributes.

Attribute nodes are shared within a query (one per table.column), as in the
paper's encoding.

Two implementations share this module:

* :func:`build_query_graphs` (and its single-plan wrapper
  :func:`build_query_graph`) is the engine's **vectorized** path: the plan
  traversal only collects raw feature values (cardinalities, stats, operator
  codes) into per-node-type columns; feature matrices for *all* plans of the
  batch are then assembled column-wise in a handful of numpy operations
  (``features.*_matrix``), and each graph receives row views plus a
  pre-built :class:`~repro.featurization.graph.PackedGraph` (type codes,
  edges, levels) so batching never recomputes them.
* :func:`build_query_graph_reference` keeps the original per-node loop
  implementation as an executable specification (same pattern as
  ``make_batch_reference``); the vectorized path must produce bit-identical
  graphs, which the test suite asserts over all node types and cardinality
  sources.
"""

from __future__ import annotations

import numpy as np

from .. import perfstats
from ..sql import (BooleanPredicate, Comparison, PredOp,
                   like_pattern_complexity)
from .features import (AGG_INDEX, DTYPE_INDEX, OPERATOR_INDEX, PRED_INDEX,
                       STORAGE_FORMAT_INDEX, attribute_features,
                       attribute_features_matrix, output_features,
                       output_features_matrix, plan_features,
                       plan_features_matrix, predicate_features,
                       predicate_features_matrix, table_features,
                       table_features_matrix)
from .graph import NODE_TYPES, QueryGraph, TYPE_CODES

__all__ = ["build_query_graph", "build_query_graphs",
           "build_query_graph_reference"]

_PLAN = TYPE_CODES["plan"]
_PREDICATE = TYPE_CODES["predicate"]
_TABLE = TYPE_CODES["table"]
_ATTRIBUTE = TYPE_CODES["attribute"]
_OUTPUT = TYPE_CODES["output"]
_EQ_INDEX = PRED_INDEX[PredOp.EQ]
_AGG_OPS = ("Aggregate", "HashAggregate")

_SCAN_OPS = ("SeqScan", "IndexScan", "ColumnarScan")
_JOIN_OPS = ("HashJoin", "NestedLoopJoin", "MergeJoin")

# Sentinels for fused cardinality annotation: instead of a per-node dict,
# the traversal reads cardinalities straight off the plan's recorded rows.
_EXACT_CARDS = object()
_OPTIMIZER_CARDS = object()
_CARD_SENTINELS = {"exact": _EXACT_CARDS, "optimizer": _OPTIMIZER_CARDS}

# Upper bound on plans encoded into one shared matrix batch (memory
# retention cap for graphs that outlive their batch).
_MAX_ENCODE_BATCH = 512


def _encode_batch(db, plan_cards, storage_formats, columns, memos):
    """Traverse many plans, appending raw rows to the batch-wide columns.

    Only structure is built here — node type codes, longest-path levels and
    edges; every feature value lands in the shared ``columns`` lists and is
    turned into matrices once per batch.  Node and edge creation order is
    identical to the reference builder, so the resulting graphs are
    bit-identical.  The node builders are closures created *once* per batch;
    per-graph state (``codes``/``levels``/``edges``/``attributes``) lives in
    enclosing-scope cells that the plan loop rebinds between graphs — this
    is the featurization hot loop.
    """
    plan_rows, pred_rows, table_rows, attr_rows, output_rows = columns
    attr_stats, table_stats = memos
    # Node type codes and edges accumulate batch-wide (per-graph views are
    # sliced out afterwards); levels stay per-graph because the traversal
    # reads them back by local node id — which is ``len(levels)`` at
    # creation time.
    all_codes, all_edges = [], []
    codes_append, edges_append = all_codes.append, all_edges.append
    levels = None
    levels_append = None
    attributes = {}
    cards = exact = fused = None
    column_stats, table_stats_of = db.column_stats, db.table_stats
    storage_format_of = storage_formats.get

    def attribute_node(table, column):
        key = (table, column)
        node = attributes.get(key)
        if node is None:
            raw = attr_stats.get(key)
            if raw is None:
                stats = column_stats(table, column)
                raw = (stats.width, stats.correlation, stats.ndistinct,
                       stats.null_frac, DTYPE_INDEX[stats.dtype])
                attr_stats[key] = raw
            attr_rows.append(raw)
            node = len(levels)
            codes_append(_ATTRIBUTE)
            levels_append(0)
            attributes[key] = node
        return node

    def table_node(table):
        fmt = storage_format_of(table, "row")
        fmt_index = STORAGE_FORMAT_INDEX.get(fmt)
        if fmt_index is None:
            raise ValueError(f"{fmt!r} is not in list")
        raw = table_stats.get(table)
        if raw is None:
            stats = table_stats_of(table)
            raw = (stats.reltuples, stats.relpages)
            table_stats[table] = raw
        table_rows.append((raw[0], raw[1], fmt_index))
        node = len(levels)
        codes_append(_TABLE)
        levels_append(0)
        return node

    def predicate_node(predicate):
        if isinstance(predicate, Comparison):
            attr = attribute_node(predicate.table, predicate.column)
            op = predicate.op
            # Inlined Comparison.literal_feature (predicate hot loop).
            if op is PredOp.IN:
                literal_feature = float(len(predicate.literal))
            elif op is PredOp.LIKE or op is PredOp.NOT_LIKE:
                literal_feature = like_pattern_complexity(predicate.literal)
            else:
                literal_feature = 1.0
            pred_rows.append((literal_feature, PRED_INDEX[op]))
            node = len(levels)
            codes_append(_PREDICATE)
            levels_append(levels[attr] + 1)
            edges_append((attr, node))
            return node
        if isinstance(predicate, BooleanPredicate):
            children = [predicate_node(child) for child in predicate.children]
            pred_rows.append((float(len(predicate.children)),
                              PRED_INDEX[predicate.op]))
            node = len(levels)
            level = 0
            for child in children:
                if levels[child] > level:
                    level = levels[child]
            codes_append(_PREDICATE)
            levels_append(level + 1)
            for child in children:
                edges_append((child, node))
            return node
        raise TypeError(f"unknown predicate {type(predicate)!r}")

    def join_predicate_node(join):
        child_attr = attribute_node(join.child_table, join.child_column)
        parent_attr = attribute_node(join.parent_table, join.parent_column)
        pred_rows.append((1.0, _EQ_INDEX))
        node = len(levels)
        level = max(levels[child_attr], levels[parent_attr])
        codes_append(_PREDICATE)
        levels_append(level + 1)
        edges_append((child_attr, node))
        edges_append((parent_attr, node))
        return node

    def output_node(aggregate):
        attr = None
        if aggregate.column is not None:
            attr = attribute_node(aggregate.table, aggregate.column)
        agg_index = AGG_INDEX.get(aggregate.func)
        if agg_index is None:
            raise ValueError(f"unknown aggregation {aggregate.func!r}")
        output_rows.append(agg_index)
        node = len(levels)
        codes_append(_OUTPUT)
        levels_append(0 if attr is None else levels[attr] + 1)
        if attr is not None:
            edges_append((attr, node))
        return node

    def plan_node(node):
        children = [plan_node(child) for child in node.children]
        op_name = node.op_name
        if op_name in _SCAN_OPS:
            children.append(table_node(node.table))
            if node.filter_predicate is not None:
                children.append(predicate_node(node.filter_predicate))
        elif op_name in _JOIN_OPS and node.join is not None:
            children.append(join_predicate_node(node.join))
        elif op_name in _AGG_OPS:
            for aggregate in node.aggregates:
                children.append(output_node(aggregate))
            for table, column in node.group_by:
                children.append(attribute_node(table, column))
        elif op_name == "Sort":
            for table, column in node.sort_keys:
                children.append(attribute_node(table, column))

        if fused:
            rows = node.true_rows
            card_out = float(rows if exact and rows is not None
                             else node.est_rows)
            card_prod = 1.0
            for child in node.children:
                rows = child.true_rows
                card = float(rows if exact and rows is not None
                             else child.est_rows)
                if card > 1.0:
                    card_prod *= card
        else:
            card_out = cards.get(id(node), node.est_rows)
            card_prod = 1.0
            for child in node.children:
                card = cards.get(id(child), child.est_rows)
                if card > 1.0:
                    card_prod *= card
        plan_rows.append((card_out, card_prod, node.width, node.workers,
                          OPERATOR_INDEX[op_name]))
        plan_id = len(levels)
        level = 0
        for child in children:
            if levels[child] > level:
                level = levels[child]
        codes_append(_PLAN)
        levels_append(level + 1 if children else 0)
        for child in children:
            edges_append((child, plan_id))
        return plan_id

    metas = []
    ends = (0, 0, 0, 0, 0)
    for plan, cards in plan_cards:
        # Rebind the per-graph cells; the closures above see the new state.
        levels = []
        levels_append = levels.append
        attributes = {}
        exact = cards is _EXACT_CARDS
        fused = exact or cards is _OPTIMIZER_CARDS
        starts = ends
        node_start, edge_start = len(all_codes), len(all_edges)
        root = plan_node(plan)
        ends = (len(plan_rows), len(pred_rows), len(table_rows),
                len(attr_rows), len(output_rows))
        metas.append((node_start, edge_start, levels, root, starts, ends))
    return metas, all_codes, all_edges


def _assemble_matrices(columns):
    """Column-wise feature-matrix assembly: one pass per node type."""
    plan_rows, pred_rows, table_rows, attr_rows, output_rows = columns
    matrices = [None] * len(NODE_TYPES)
    if plan_rows:
        card_out, card_prod, width, workers, ops = zip(*plan_rows)
        matrices[_PLAN] = plan_features_matrix(card_out, card_prod, width,
                                               workers, ops)
    if pred_rows:
        literal_features, ops = zip(*pred_rows)
        matrices[_PREDICATE] = predicate_features_matrix(literal_features, ops)
    if table_rows:
        reltuples, relpages, fmts = zip(*table_rows)
        matrices[_TABLE] = table_features_matrix(reltuples, relpages, fmts)
    if attr_rows:
        widths, corrs, ndistincts, null_fracs, dtypes = zip(*attr_rows)
        matrices[_ATTRIBUTE] = attribute_features_matrix(
            widths, corrs, ndistincts, null_fracs, dtypes)
    if output_rows:
        matrices[_OUTPUT] = output_features_matrix(output_rows)
    return matrices


def _materialize_graph(meta, matrices, batch_arrays):
    """Turn one traversal record + the batch matrices into a QueryGraph.

    Structural invariants (child < parent, single parentless root) hold by
    construction — children are always created before their parent and every
    non-root node is edged to a parent at creation — so no per-graph check
    runs here; :meth:`QueryGraph.validate` stays available and the
    equivalence tests assert bit-identity with the validated reference
    builder.  Node-type names and per-node feature rows are left lazy: the
    hot path reads the attached :class:`PackedGraph` only.
    """
    (node_start, edge_start, levels, root, starts, ends,
     node_end, edge_end) = meta
    codes = batch_arrays["codes"][node_start:node_end]
    edges = batch_arrays["edges"][edge_start:edge_end]
    lazy_packed = (batch_arrays["codes_array"][node_start:node_end],
                   starts, ends, matrices,
                   batch_arrays["edges_array"][edge_start:edge_end], levels)
    return QueryGraph(lazy_codes=codes,
                      lazy_features=(codes, starts, matrices),
                      edges=edges, root=root, lazy_packed=lazy_packed)


def build_query_graphs(db, plans, card_maps, storage_formats=None):
    """Encode many annotated plans of one database in one vectorized pass.

    ``card_maps[i]`` maps ``id(plan_node) -> cardinality`` for ``plans[i]``.
    Alternatively ``card_maps`` may be the string ``"exact"`` or
    ``"optimizer"``: per-node cardinalities are then read directly off the
    plans' recorded true/estimated rows during the traversal (fused
    annotation — value-identical to building the
    :func:`~repro.cardest.annotate_cardinalities` dict first, without the
    extra plan walk).

    Equivalent to calling :func:`build_query_graph` per plan, but feature
    matrices for the whole batch are assembled column-wise at once, so the
    per-plan cost is the structural traversal only.
    """
    storage_formats = storage_formats or {}
    plans = list(plans)
    # Graphs hold views into their batch's matrices (lazy features/packing),
    # so one surviving graph pins its whole batch's arrays.  Encoding in
    # bounded chunks caps that retention at one chunk per graph while
    # keeping the column-wise assembly amortized.
    if len(plans) > _MAX_ENCODE_BATCH:
        if not isinstance(card_maps, str):
            card_maps = list(card_maps)
        graphs = []
        for start in range(0, len(plans), _MAX_ENCODE_BATCH):
            chunk_cards = (card_maps if isinstance(card_maps, str)
                           else card_maps[start:start + _MAX_ENCODE_BATCH])
            graphs.extend(build_query_graphs(
                db, plans[start:start + _MAX_ENCODE_BATCH], chunk_cards,
                storage_formats=storage_formats))
        return graphs
    if isinstance(card_maps, str):
        sentinel = _CARD_SENTINELS[card_maps]
        plan_cards = ((plan, sentinel) for plan in plans)
    else:
        plan_cards = zip(plans, card_maps)
    columns = ([], [], [], [], [])
    memos = ({}, {})
    metas, all_codes, all_edges = _encode_batch(db, plan_cards,
                                                storage_formats, columns,
                                                memos)
    matrices = _assemble_matrices(columns)
    # Batch-wide array conversions; per-graph packed arrays are views.
    batch_arrays = {
        "codes": all_codes,
        "edges": all_edges,
        "codes_array": np.asarray(all_codes, dtype=np.int64),
        "edges_array": (np.asarray(all_edges, dtype=np.int64)
                        if all_edges else np.empty((0, 2), dtype=np.int64)),
    }
    graphs = []
    for index, meta in enumerate(metas):
        next_meta = metas[index + 1] if index + 1 < len(metas) else None
        node_end = next_meta[0] if next_meta else len(all_codes)
        edge_end = next_meta[1] if next_meta else len(all_edges)
        graphs.append(_materialize_graph(meta + (node_end, edge_end),
                                         matrices, batch_arrays))
    perfstats.increment("featurize.vectorized", len(graphs))
    return graphs


def build_query_graph(db, plan, cards, storage_formats=None) -> QueryGraph:
    """Encode an annotated plan as a transferable query graph.

    ``cards`` maps ``id(plan_node) -> cardinality`` (see
    :func:`repro.cardest.annotate_cardinalities`); the choice of source is
    how the exact / DeepDB / optimizer variants of the paper are realized.
    The strings ``"exact"`` / ``"optimizer"`` select fused annotation, as in
    :func:`build_query_graphs`.
    """
    card_maps = cards if isinstance(cards, str) else [cards]
    return build_query_graphs(db, [plan], card_maps,
                              storage_formats=storage_formats)[0]


# ----------------------------------------------------------------------
# Reference (loop) implementation — executable specification
# ----------------------------------------------------------------------
class _GraphBuilder:
    """Original per-node builder: one feature vector per ``add_node`` call."""

    def __init__(self, db, cards, storage_formats=None):
        self.db = db
        self.cards = cards
        self.graph = QueryGraph()
        self._attributes = {}
        self._storage_formats = storage_formats or {}

    # ------------------------------------------------------------------
    def attribute_node(self, table, column):
        key = (table, column)
        if key not in self._attributes:
            stats = self.db.column_stats(table, column)
            node = self.graph.add_node("attribute", attribute_features(
                width=stats.width, correlation=stats.correlation,
                ndistinct=stats.ndistinct, null_frac=stats.null_frac,
                dtype=stats.dtype))
            self._attributes[key] = node
        return self._attributes[key]

    def table_node(self, table):
        stats = self.db.table_stats(table)
        fmt = self._storage_formats.get(table, "row")
        return self.graph.add_node("table", table_features(
            reltuples=stats.reltuples, relpages=stats.relpages,
            storage_format=fmt))

    def predicate_node(self, predicate, parent_table=None):
        """Encode a predicate tree; returns the root predicate node index."""
        if isinstance(predicate, Comparison):
            attr = self.attribute_node(predicate.table, predicate.column)
            node = self.graph.add_node("predicate", predicate_features(
                predicate.op, predicate.literal_feature))
            self.graph.add_edge(attr, node)
            return node
        if isinstance(predicate, BooleanPredicate):
            children = [self.predicate_node(child)
                        for child in predicate.children]
            node = self.graph.add_node("predicate", predicate_features(
                predicate.op, predicate.literal_feature))
            for child in children:
                self.graph.add_edge(child, node)
            return node
        raise TypeError(f"unknown predicate {type(predicate)!r}")

    def join_predicate_node(self, join):
        """Equality predicate over the two join-key attributes."""
        child_attr = self.attribute_node(join.child_table, join.child_column)
        parent_attr = self.attribute_node(join.parent_table, join.parent_column)
        node = self.graph.add_node("predicate",
                                   predicate_features(PredOp.EQ, 1.0))
        self.graph.add_edge(child_attr, node)
        self.graph.add_edge(parent_attr, node)
        return node

    def output_node(self, aggregate):
        attr = None
        if aggregate.column is not None:
            attr = self.attribute_node(aggregate.table, aggregate.column)
        node = self.graph.add_node("output", output_features(aggregate.func))
        if attr is not None:
            self.graph.add_edge(attr, node)
        return node

    # ------------------------------------------------------------------
    def plan_node(self, node):
        child_plan_ids = [self.plan_node(child) for child in node.children]

        extra_children = []
        if node.is_scan:
            extra_children.append(self.table_node(node.table))
            if node.filter_predicate is not None:
                extra_children.append(self.predicate_node(node.filter_predicate))
        if node.is_join and node.join is not None:
            extra_children.append(self.join_predicate_node(node.join))
        if node.op_name in ("Aggregate", "HashAggregate"):
            for aggregate in node.aggregates:
                extra_children.append(self.output_node(aggregate))
            for table, column in node.group_by:
                extra_children.append(self.attribute_node(table, column))
        if node.op_name == "Sort":
            for table, column in node.sort_keys:
                extra_children.append(self.attribute_node(table, column))

        card_out = self.cards.get(id(node), node.est_rows)
        card_prod = 1.0
        for child in node.children:
            card_prod *= max(self.cards.get(id(child), child.est_rows), 1.0)
        plan_id = self.graph.add_node("plan", plan_features(
            op_name=node.op_name, card_out=card_out, card_prod=card_prod,
            width=node.width, workers=node.workers))
        for child_id in child_plan_ids + extra_children:
            self.graph.add_edge(child_id, plan_id)
        return plan_id


def build_query_graph_reference(db, plan, cards,
                                storage_formats=None) -> QueryGraph:
    """Loop-based reference construction (executable spec for tests/bench).

    Kept deliberately close to the original per-node implementation; the
    vectorized :func:`build_query_graph` must produce bit-identical graphs.
    """
    builder = _GraphBuilder(db, cards, storage_formats)
    root = builder.plan_node(plan)
    builder.graph.root = root
    builder.graph.validate()
    perfstats.increment("featurize.reference")
    return builder.graph
