"""Transferable query featurization: typed graphs, Table-1 features, batching
and scalers for the zero-shot model."""

from .graph import NODE_TYPES, PackedGraph, QueryGraph
from .features import (FEATURE_DIMS, PLAN_NUMERIC_DIMS, plan_features,
                       predicate_features, table_features, attribute_features,
                       output_features)
from .zero_shot import build_query_graph
from .scalers import StandardScaler, FeatureScalers, TargetScaler
from .batching import (BatchCache, GraphBatch, LevelGroup, make_batch,
                       make_batch_reference)

__all__ = [
    "NODE_TYPES", "PackedGraph", "QueryGraph",
    "FEATURE_DIMS", "PLAN_NUMERIC_DIMS", "plan_features", "predicate_features",
    "table_features", "attribute_features", "output_features",
    "build_query_graph",
    "StandardScaler", "FeatureScalers", "TargetScaler",
    "BatchCache", "GraphBatch", "LevelGroup", "make_batch",
    "make_batch_reference",
]
