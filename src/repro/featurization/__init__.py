"""Transferable query featurization: typed graphs, Table-1 features, batching
and scalers for the zero-shot model.

The package runs a two-stage fast path with executable reference specs:

* **Graph construction** — :func:`build_query_graphs` encodes whole batches
  of plans with column-wise feature-matrix assembly (the per-plan cost is
  the structural traversal only); :func:`build_query_graph_reference` keeps
  the per-node loop builder as the spec both must match bit-for-bit.
* **Batching** — :func:`make_batch` merges graphs vectorized over cached
  :class:`PackedGraph` arrays; :func:`make_batch_reference` is its spec.

Caching contract (two complementary layers):

* :class:`FeaturizationCache` is keyed on *content*: a 16-byte
  :func:`plan_fingerprint` over the plan tree (operators, estimates, true
  rows, predicates incl. literals, joins, aggregates, sort/group keys), the
  cardinality source, the database fingerprint (name + row counts) and the
  storage-format map.  Equal-but-distinct plans hit; any change that could
  alter the encoding misses.  DeepDB estimates are sampling-based, so the
  cache pins the first annotation for a given fingerprint.
* :class:`BatchCache` is keyed on *identity* ``(id, n_nodes, n_edges)`` of
  the graph objects in a chunk: it serves repeated ``make_batch`` calls on
  graphs the caller retained (or that the fingerprint cache keeps stable),
  and refuses stale hits when a graph grew after caching.  Chunked callers
  (``predict_runtimes``) go through :meth:`BatchCache.get_chunks`, which
  re-uses previously cached chunk boundaries even when the surrounding
  graph list changed.

Database mutations are visible to the fingerprint layer only through row
counts; callers editing values in place must ``clear()`` the caches (same
rule as the estimator caches).
"""

from .graph import NODE_TYPES, PackedGraph, QueryGraph
from .features import (FEATURE_DIMS, PLAN_NUMERIC_DIMS, plan_features,
                       predicate_features, table_features, attribute_features,
                       output_features)
from .zero_shot import (build_query_graph, build_query_graphs,
                        build_query_graph_reference)
from .fingerprint import (FeaturizationCache, database_digest,
                          plan_fingerprint, records_fingerprint)
from .scalers import StandardScaler, FeatureScalers, TargetScaler
from .batching import (BatchCache, GraphBatch, LevelGroup, make_batch,
                       make_batch_reference)

__all__ = [
    "NODE_TYPES", "PackedGraph", "QueryGraph",
    "FEATURE_DIMS", "PLAN_NUMERIC_DIMS", "plan_features", "predicate_features",
    "table_features", "attribute_features", "output_features",
    "build_query_graph", "build_query_graphs", "build_query_graph_reference",
    "FeaturizationCache", "database_digest", "plan_fingerprint",
    "records_fingerprint",
    "StandardScaler", "FeatureScalers", "TargetScaler",
    "BatchCache", "GraphBatch", "LevelGroup", "make_batch",
    "make_batch_reference",
]
