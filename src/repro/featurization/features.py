"""Transferable feature vectors (the paper's Table 1).

Every feature has the same semantics on any database: operator identities are
one-hot over a fixed physical-operator vocabulary, cardinalities and page
counts enter as ``log1p``, data types as one-hot over the four logical types.
Literals never appear — only their complexity (``literal_feat``).

Two forms per node type: the scalar builders (``plan_features`` & co.) make
one vector at a time and serve as the executable spec; the ``*_matrix``
assemblers build a whole ``(n, dim)`` block column-wise from raw value
arrays and are what the vectorized graph builder uses.  Both apply the same
IEEE operations (``log1p`` / ``maximum`` / one-hot scatter) so their outputs
are bit-identical.
"""

from __future__ import annotations

import numpy as np

from ..optimizer import OPERATOR_NAMES
from ..sql import PredOp
from ..storage import DataType

__all__ = ["FEATURE_DIMS", "plan_features", "predicate_features",
           "table_features", "attribute_features", "output_features",
           "PLAN_NUMERIC_DIMS", "OPERATOR_INDEX", "PRED_INDEX", "DTYPE_INDEX",
           "AGG_INDEX", "STORAGE_FORMAT_INDEX", "plan_features_matrix",
           "predicate_features_matrix", "table_features_matrix",
           "attribute_features_matrix", "output_features_matrix"]

_OPERATOR_INDEX = {name: i for i, name in enumerate(OPERATOR_NAMES)}
_PRED_OPS = list(PredOp)
_PRED_INDEX = {op: i for i, op in enumerate(_PRED_OPS)}
_DTYPES = list(DataType)
_DTYPE_INDEX = {dtype: i for i, dtype in enumerate(_DTYPES)}
_AGGS = ("none", "count", "sum", "avg", "min", "max")
_AGG_INDEX = {name: i for i, name in enumerate(_AGGS)}
_STORAGE_FORMATS = ("row", "column")

# Public index maps: the vectorized builder resolves categorical features to
# integer codes during traversal and one-hot-scatters them in bulk.
OPERATOR_INDEX = _OPERATOR_INDEX
PRED_INDEX = _PRED_INDEX
DTYPE_INDEX = _DTYPE_INDEX
AGG_INDEX = _AGG_INDEX
STORAGE_FORMAT_INDEX = {name: i for i, name in enumerate(_STORAGE_FORMATS)}

# Number of leading numeric (non-one-hot) feature slots of plan nodes;
# used by tests and the flattened baseline.
PLAN_NUMERIC_DIMS = 4

FEATURE_DIMS = {
    "plan": PLAN_NUMERIC_DIMS + len(OPERATOR_NAMES),
    "predicate": 1 + len(_PRED_OPS),
    "table": 2 + len(_STORAGE_FORMATS),
    "attribute": 4 + len(_DTYPES),
    "output": len(_AGGS),
}


def _one_hot(index, size):
    vec = np.zeros(size)
    vec[index] = 1.0
    return vec


def plan_features(op_name, card_out, card_prod, width, workers):
    """Plan-operator node: cardout, card_prod, width, workers + opname."""
    numeric = np.array([
        np.log1p(max(card_out, 0.0)),
        np.log1p(max(card_prod, 0.0)),
        np.log1p(max(width, 0.0)),
        float(workers),
    ])
    return np.concatenate([numeric, _one_hot(_OPERATOR_INDEX[op_name],
                                             len(OPERATOR_NAMES))])


def predicate_features(op, literal_feature):
    """Predicate node: operator one-hot + literal complexity (never values)."""
    return np.concatenate([
        np.array([np.log1p(max(literal_feature, 0.0))]),
        _one_hot(_PRED_INDEX[op], len(_PRED_OPS)),
    ])


def table_features(reltuples, relpages, storage_format="row"):
    """Table node: log rows, log pages, storage format."""
    fmt = _STORAGE_FORMATS.index(storage_format)
    return np.concatenate([
        np.array([np.log1p(max(reltuples, 0.0)), np.log1p(max(relpages, 0.0))]),
        _one_hot(fmt, len(_STORAGE_FORMATS)),
    ])


def attribute_features(width, correlation, ndistinct, null_frac, dtype):
    """Attribute node: width, correlation, ndistinct, null_frac, data type."""
    numeric = np.array([
        np.log1p(max(width, 0.0)),
        float(correlation),
        np.log1p(max(ndistinct, 0.0)),
        float(null_frac),
    ])
    return np.concatenate([numeric, _one_hot(_DTYPE_INDEX[dtype], len(_DTYPES))])


def output_features(aggregation):
    """Output-column node: aggregation function one-hot."""
    if aggregation not in _AGG_INDEX:
        raise ValueError(f"unknown aggregation {aggregation!r}")
    return _one_hot(_AGG_INDEX[aggregation], len(_AGGS))


# ----------------------------------------------------------------------
# Column-wise matrix assembly (vectorized featurization)
# ----------------------------------------------------------------------
def _log1p_col(values):
    return np.log1p(np.maximum(np.asarray(values, dtype=np.float64), 0.0))


def _one_hot_scatter(matrix, start, indices):
    matrix[np.arange(len(indices)), start + np.asarray(indices)] = 1.0


def plan_features_matrix(card_out, card_prod, width, workers, op_indices):
    """``(n, dim)`` plan-node block; rows equal ``plan_features`` bit-for-bit."""
    out = np.zeros((len(op_indices), FEATURE_DIMS["plan"]))
    out[:, 0] = _log1p_col(card_out)
    out[:, 1] = _log1p_col(card_prod)
    out[:, 2] = _log1p_col(width)
    out[:, 3] = np.asarray(workers, dtype=np.float64)
    _one_hot_scatter(out, PLAN_NUMERIC_DIMS, op_indices)
    return out


def predicate_features_matrix(literal_features, op_indices):
    out = np.zeros((len(op_indices), FEATURE_DIMS["predicate"]))
    out[:, 0] = _log1p_col(literal_features)
    _one_hot_scatter(out, 1, op_indices)
    return out


def table_features_matrix(reltuples, relpages, format_indices):
    out = np.zeros((len(format_indices), FEATURE_DIMS["table"]))
    out[:, 0] = _log1p_col(reltuples)
    out[:, 1] = _log1p_col(relpages)
    _one_hot_scatter(out, 2, format_indices)
    return out


def attribute_features_matrix(widths, correlations, ndistincts, null_fracs,
                              dtype_indices):
    out = np.zeros((len(dtype_indices), FEATURE_DIMS["attribute"]))
    out[:, 0] = _log1p_col(widths)
    out[:, 1] = np.asarray(correlations, dtype=np.float64)
    out[:, 2] = _log1p_col(ndistincts)
    out[:, 3] = np.asarray(null_fracs, dtype=np.float64)
    _one_hot_scatter(out, 4, dtype_indices)
    return out


def output_features_matrix(agg_indices):
    out = np.zeros((len(agg_indices), FEATURE_DIMS["output"]))
    _one_hot_scatter(out, 0, agg_indices)
    return out
