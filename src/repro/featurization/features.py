"""Transferable feature vectors (the paper's Table 1).

Every feature has the same semantics on any database: operator identities are
one-hot over a fixed physical-operator vocabulary, cardinalities and page
counts enter as ``log1p``, data types as one-hot over the four logical types.
Literals never appear — only their complexity (``literal_feat``).
"""

from __future__ import annotations

import numpy as np

from ..optimizer import OPERATOR_NAMES
from ..sql import PredOp
from ..storage import DataType

__all__ = ["FEATURE_DIMS", "plan_features", "predicate_features",
           "table_features", "attribute_features", "output_features",
           "PLAN_NUMERIC_DIMS"]

_OPERATOR_INDEX = {name: i for i, name in enumerate(OPERATOR_NAMES)}
_PRED_OPS = list(PredOp)
_PRED_INDEX = {op: i for i, op in enumerate(_PRED_OPS)}
_DTYPES = list(DataType)
_DTYPE_INDEX = {dtype: i for i, dtype in enumerate(_DTYPES)}
_AGGS = ("none", "count", "sum", "avg", "min", "max")
_AGG_INDEX = {name: i for i, name in enumerate(_AGGS)}
_STORAGE_FORMATS = ("row", "column")

# Number of leading numeric (non-one-hot) feature slots of plan nodes;
# used by tests and the flattened baseline.
PLAN_NUMERIC_DIMS = 4

FEATURE_DIMS = {
    "plan": PLAN_NUMERIC_DIMS + len(OPERATOR_NAMES),
    "predicate": 1 + len(_PRED_OPS),
    "table": 2 + len(_STORAGE_FORMATS),
    "attribute": 4 + len(_DTYPES),
    "output": len(_AGGS),
}


def _one_hot(index, size):
    vec = np.zeros(size)
    vec[index] = 1.0
    return vec


def plan_features(op_name, card_out, card_prod, width, workers):
    """Plan-operator node: cardout, card_prod, width, workers + opname."""
    numeric = np.array([
        np.log1p(max(card_out, 0.0)),
        np.log1p(max(card_prod, 0.0)),
        np.log1p(max(width, 0.0)),
        float(workers),
    ])
    return np.concatenate([numeric, _one_hot(_OPERATOR_INDEX[op_name],
                                             len(OPERATOR_NAMES))])


def predicate_features(op, literal_feature):
    """Predicate node: operator one-hot + literal complexity (never values)."""
    return np.concatenate([
        np.array([np.log1p(max(literal_feature, 0.0))]),
        _one_hot(_PRED_INDEX[op], len(_PRED_OPS)),
    ])


def table_features(reltuples, relpages, storage_format="row"):
    """Table node: log rows, log pages, storage format."""
    fmt = _STORAGE_FORMATS.index(storage_format)
    return np.concatenate([
        np.array([np.log1p(max(reltuples, 0.0)), np.log1p(max(relpages, 0.0))]),
        _one_hot(fmt, len(_STORAGE_FORMATS)),
    ])


def attribute_features(width, correlation, ndistinct, null_frac, dtype):
    """Attribute node: width, correlation, ndistinct, null_frac, data type."""
    numeric = np.array([
        np.log1p(max(width, 0.0)),
        float(correlation),
        np.log1p(max(ndistinct, 0.0)),
        float(null_frac),
    ])
    return np.concatenate([numeric, _one_hot(_DTYPE_INDEX[dtype], len(_DTYPES))])


def output_features(aggregation):
    """Output-column node: aggregation function one-hot."""
    if aggregation not in _AGG_INDEX:
        raise ValueError(f"unknown aggregation {aggregation!r}")
    return _one_hot(_AGG_INDEX[aggregation], len(_AGGS))
