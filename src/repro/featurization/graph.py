"""Typed query graphs: the data structure behind Figure 3.

A :class:`QueryGraph` holds one query plan encoded as a DAG of typed nodes
(plan operators, predicates, tables, attributes, output columns) with
per-node transferable feature vectors.  Edges point child -> parent in the
direction of the bottom-up message passing; nodes are created children-first
so node indices are already a topological order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["NODE_TYPES", "QueryGraph"]

NODE_TYPES = ("plan", "predicate", "table", "attribute", "output")


@dataclass
class QueryGraph:
    """One encoded query plan."""

    node_types: list = field(default_factory=list)      # per node: type name
    features: list = field(default_factory=list)        # per node: np.ndarray
    edges: list = field(default_factory=list)           # (child_idx, parent_idx)
    root: int = -1

    def add_node(self, node_type, feature_vector):
        if node_type not in NODE_TYPES:
            raise ValueError(f"unknown node type {node_type!r}")
        self.node_types.append(node_type)
        self.features.append(np.asarray(feature_vector, dtype=np.float64))
        return len(self.node_types) - 1

    def add_edge(self, child, parent):
        if not (0 <= child < len(self.node_types)) \
                or not (0 <= parent < len(self.node_types)):
            raise IndexError("edge endpoints out of range")
        if child == parent:
            raise ValueError("self edges are not allowed")
        self.edges.append((child, parent))

    @property
    def n_nodes(self):
        return len(self.node_types)

    def children_of(self, node):
        return [c for c, p in self.edges if p == node]

    def levels(self):
        """Longest-path level per node (leaves=0); children precede parents."""
        level = np.zeros(self.n_nodes, dtype=np.int64)
        for child, parent in sorted(self.edges, key=lambda e: e[1]):
            # Node indices are topological (children created first), so a
            # single pass in parent order suffices.
            level[parent] = max(level[parent], level[child] + 1)
        return level

    def validate(self):
        """Sanity checks used by tests and the builder."""
        if self.root < 0 or self.root >= self.n_nodes:
            raise ValueError("graph has no valid root")
        for child, parent in self.edges:
            if child >= parent:
                raise ValueError("edges must point from earlier to later nodes "
                                 "(topological construction)")
        # Root must be reachable from every node by following parents.
        reach = {self.root}
        for child, parent in sorted(self.edges, key=lambda e: -e[1]):
            if parent in reach:
                reach.add(child)
        if len(reach) != self.n_nodes:
            raise ValueError("graph has nodes disconnected from the root")
        return True
