"""Typed query graphs: the data structure behind Figure 3.

A :class:`QueryGraph` holds one query plan encoded as a DAG of typed nodes
(plan operators, predicates, tables, attributes, output columns) with
per-node transferable feature vectors.  Edges point child -> parent in the
direction of the bottom-up message passing; nodes are created children-first
so node indices are already a topological order.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

__all__ = ["NODE_TYPES", "QueryGraph", "PackedGraph"]

NODE_TYPES = ("plan", "predicate", "table", "attribute", "output")

TYPE_CODES = {node_type: code for code, node_type in enumerate(NODE_TYPES)}


class PackedGraph(NamedTuple):
    """Array view of a :class:`QueryGraph`, cached for vectorized batching.

    Computed once per graph and reused by every ``make_batch`` call that
    includes the graph (training epochs, repeated evaluations), removing the
    per-node python loops from the batching hot path.  A ``NamedTuple`` so
    construction (once per featurized graph) is a single C call.
    """

    n_nodes: int
    n_edges: int
    type_codes: np.ndarray           # (n,) int64 index into NODE_TYPES
    features_by_code: dict           # code -> (count, dim) matrix, local order
    edges: np.ndarray                # (E, 2) int64 (child, parent)
    levels: np.ndarray               # (n,) int64 longest-path level


class QueryGraph:
    """One encoded query plan.

    ``node_types`` / ``features`` / ``edges`` are parallel per-node (resp.
    per-edge) containers.  The vectorized builder constructs graphs with
    *lazy* feature rows: per-node vectors are views into the batch-wide
    per-type matrices and are only materialized into a list when something
    actually iterates ``features`` (scaler fitting, the reference batcher,
    tests) — the hot path reads the matrices through :meth:`packed`.
    """

    __slots__ = ("edges", "root", "_packed", "_lazy_packed", "_node_types",
                 "_lazy_codes", "_features", "_lazy_features")

    def __init__(self, node_types=None, features=None, edges=None, root=-1,
                 packed=None, lazy_packed=None, lazy_codes=None,
                 lazy_features=None):
        if node_types is None and lazy_codes is None:
            node_types = []
        self._node_types = node_types
        self._lazy_codes = lazy_codes
        self.edges = [] if edges is None else edges
        self.root = root
        self._packed = packed
        self._lazy_packed = lazy_packed
        self._lazy_features = lazy_features
        if features is None and lazy_features is None:
            features = []
        self._features = features

    def __repr__(self):
        return (f"QueryGraph(n_nodes={self.n_nodes}, "
                f"n_edges={len(self.edges)}, root={self.root})")

    @property
    def node_types(self):
        """Per-node type names (materialized from codes on first access)."""
        if self._node_types is None:
            self._node_types = [NODE_TYPES[code] for code in self._lazy_codes]
        return self._node_types

    @property
    def features(self):
        """Per-node feature vectors (materialized on first access).

        Lazy graphs record only (type codes, per-type start rows, batch
        matrices): nodes of one type occupy consecutive matrix rows in
        creation order, so walking the codes with per-type counters
        reproduces each node's feature row.
        """
        if self._features is None:
            codes, starts, matrices = self._lazy_features
            counters = list(starts)
            features = []
            append = features.append
            for code in codes:
                row = counters[code]
                append(matrices[code][row])
                counters[code] = row + 1
            self._features = features
            self._lazy_features = None
        return self._features

    def packed(self) -> PackedGraph:
        """Cached array form for batching (recomputed if the graph grew).

        Graphs from the vectorized builder carry a *lazy* pack — views into
        the batch-wide arrays plus the per-type row spans — assembled into a
        :class:`PackedGraph` on first use, so featurization never pays for
        graphs that are cached away or filtered before batching.
        """
        cached = self._packed
        if (cached is not None and cached.n_nodes == self.n_nodes
                and cached.n_edges == len(self.edges)):
            return cached
        lazy = self._lazy_packed
        if lazy is not None:
            self._lazy_packed = None
            type_codes, starts, ends, matrices, edges_array, levels = lazy
            if (len(type_codes) == self.n_nodes
                    and len(edges_array) == len(self.edges)):
                features_by_code = {}
                for code in range(len(NODE_TYPES)):
                    if ends[code] > starts[code]:
                        features_by_code[code] = \
                            matrices[code][starts[code]:ends[code]]
                self._packed = PackedGraph(
                    n_nodes=len(type_codes), n_edges=len(edges_array),
                    type_codes=type_codes, features_by_code=features_by_code,
                    edges=edges_array,
                    levels=np.asarray(levels, dtype=np.int64))
                return self._packed
            # The graph was mutated before first packing: recompute below.
        type_codes = np.array([TYPE_CODES[t] for t in self.node_types],
                              dtype=np.int64)
        features_by_code = {}
        for code in range(len(NODE_TYPES)):
            local = np.flatnonzero(type_codes == code)
            if local.size:
                features_by_code[code] = np.stack(
                    [self.features[i] for i in local])
        edges = (np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
                 if self.edges else np.empty((0, 2), dtype=np.int64))
        self._packed = PackedGraph(
            n_nodes=self.n_nodes, n_edges=len(self.edges),
            type_codes=type_codes, features_by_code=features_by_code,
            edges=edges, levels=self.levels())
        return self._packed

    def add_node(self, node_type, feature_vector):
        if node_type not in NODE_TYPES:
            raise ValueError(f"unknown node type {node_type!r}")
        self.node_types.append(node_type)
        self.features.append(np.asarray(feature_vector, dtype=np.float64))
        return len(self.node_types) - 1

    def add_edge(self, child, parent):
        if not (0 <= child < len(self.node_types)) \
                or not (0 <= parent < len(self.node_types)):
            raise IndexError("edge endpoints out of range")
        if child == parent:
            raise ValueError("self edges are not allowed")
        self.edges.append((child, parent))

    @property
    def n_nodes(self):
        types = self._node_types
        return len(types if types is not None else self._lazy_codes)

    def children_of(self, node):
        return [c for c, p in self.edges if p == node]

    def levels(self):
        """Longest-path level per node (leaves=0); children precede parents."""
        level = np.zeros(self.n_nodes, dtype=np.int64)
        for child, parent in sorted(self.edges, key=lambda e: e[1]):
            # Node indices are topological (children created first), so a
            # single pass in parent order suffices.
            level[parent] = max(level[parent], level[child] + 1)
        return level

    def validate(self):
        """Sanity checks used by tests and the builder (vectorized).

        Edges are topological (child < parent), so following parent pointers
        strictly increases the node index and must terminate at a parentless
        node; every node reaches the root if and only if the root is the
        *only* parentless node.  That turns the original reachability sweep
        into two array checks.
        """
        if self.root < 0 or self.root >= self.n_nodes:
            raise ValueError("graph has no valid root")
        has_parent = np.zeros(self.n_nodes, dtype=bool)
        if self.edges:
            edges = np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
            if not (edges[:, 0] < edges[:, 1]).all():
                raise ValueError("edges must point from earlier to later nodes "
                                 "(topological construction)")
            has_parent[edges[:, 0]] = True
        orphans = np.flatnonzero(~has_parent)
        if orphans.size != 1 or orphans[0] != self.root:
            raise ValueError("graph has nodes disconnected from the root")
        return True
