"""Typed query graphs: the data structure behind Figure 3.

A :class:`QueryGraph` holds one query plan encoded as a DAG of typed nodes
(plan operators, predicates, tables, attributes, output columns) with
per-node transferable feature vectors.  Edges point child -> parent in the
direction of the bottom-up message passing; nodes are created children-first
so node indices are already a topological order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["NODE_TYPES", "QueryGraph", "PackedGraph"]

NODE_TYPES = ("plan", "predicate", "table", "attribute", "output")

TYPE_CODES = {node_type: code for code, node_type in enumerate(NODE_TYPES)}


@dataclass
class PackedGraph:
    """Array view of a :class:`QueryGraph`, cached for vectorized batching.

    Computed once per graph and reused by every ``make_batch`` call that
    includes the graph (training epochs, repeated evaluations), removing the
    per-node python loops from the batching hot path.
    """

    n_nodes: int
    n_edges: int
    type_codes: np.ndarray           # (n,) int64 index into NODE_TYPES
    features_by_code: dict           # code -> (count, dim) matrix, local order
    edges: np.ndarray                # (E, 2) int64 (child, parent)
    levels: np.ndarray               # (n,) int64 longest-path level


@dataclass
class QueryGraph:
    """One encoded query plan."""

    node_types: list = field(default_factory=list)      # per node: type name
    features: list = field(default_factory=list)        # per node: np.ndarray
    edges: list = field(default_factory=list)           # (child_idx, parent_idx)
    root: int = -1
    _packed: PackedGraph = field(default=None, repr=False, compare=False)

    def packed(self) -> PackedGraph:
        """Cached array form for batching (recomputed if the graph grew)."""
        cached = self._packed
        if (cached is not None and cached.n_nodes == self.n_nodes
                and cached.n_edges == len(self.edges)):
            return cached
        type_codes = np.array([TYPE_CODES[t] for t in self.node_types],
                              dtype=np.int64)
        features_by_code = {}
        for code in range(len(NODE_TYPES)):
            local = np.flatnonzero(type_codes == code)
            if local.size:
                features_by_code[code] = np.stack(
                    [self.features[i] for i in local])
        edges = (np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
                 if self.edges else np.empty((0, 2), dtype=np.int64))
        self._packed = PackedGraph(
            n_nodes=self.n_nodes, n_edges=len(self.edges),
            type_codes=type_codes, features_by_code=features_by_code,
            edges=edges, levels=self.levels())
        return self._packed

    def add_node(self, node_type, feature_vector):
        if node_type not in NODE_TYPES:
            raise ValueError(f"unknown node type {node_type!r}")
        self.node_types.append(node_type)
        self.features.append(np.asarray(feature_vector, dtype=np.float64))
        return len(self.node_types) - 1

    def add_edge(self, child, parent):
        if not (0 <= child < len(self.node_types)) \
                or not (0 <= parent < len(self.node_types)):
            raise IndexError("edge endpoints out of range")
        if child == parent:
            raise ValueError("self edges are not allowed")
        self.edges.append((child, parent))

    @property
    def n_nodes(self):
        return len(self.node_types)

    def children_of(self, node):
        return [c for c, p in self.edges if p == node]

    def levels(self):
        """Longest-path level per node (leaves=0); children precede parents."""
        level = np.zeros(self.n_nodes, dtype=np.int64)
        for child, parent in sorted(self.edges, key=lambda e: e[1]):
            # Node indices are topological (children created first), so a
            # single pass in parent order suffices.
            level[parent] = max(level[parent], level[child] + 1)
        return level

    def validate(self):
        """Sanity checks used by tests and the builder."""
        if self.root < 0 or self.root >= self.n_nodes:
            raise ValueError("graph has no valid root")
        for child, parent in self.edges:
            if child >= parent:
                raise ValueError("edges must point from earlier to later nodes "
                                 "(topological construction)")
        # Root must be reachable from every node by following parents.
        reach = {self.root}
        for child, parent in sorted(self.edges, key=lambda e: -e[1]):
            if parent in reach:
                reach.add(child)
        if len(reach) != self.n_nodes:
            raise ValueError("graph has nodes disconnected from the root")
        return True
