"""Feature / target standardization fitted on the training set only."""

from __future__ import annotations

import numpy as np

from .graph import NODE_TYPES

__all__ = ["StandardScaler", "FeatureScalers", "TargetScaler"]


class StandardScaler:
    """Per-dimension standardization with degenerate-dimension protection."""

    def __init__(self):
        self.mean = None
        self.std = None

    def fit(self, matrix):
        matrix = np.asarray(matrix, dtype=np.float64)
        self.mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std < 1e-9] = 1.0
        self.std = std
        return self

    def transform(self, matrix):
        if self.mean is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(matrix, dtype=np.float64) - self.mean) / self.std

    def state(self):
        return {"mean": self.mean, "std": self.std}

    @classmethod
    def from_state(cls, state):
        scaler = cls()
        scaler.mean = np.asarray(state["mean"], dtype=np.float64)
        scaler.std = np.asarray(state["std"], dtype=np.float64)
        return scaler


class FeatureScalers:
    """One scaler per node type, fitted over all graphs of a training set."""

    def __init__(self, scalers=None):
        self.scalers = scalers or {}

    def fit(self, graphs):
        stacks = {t: [] for t in NODE_TYPES}
        for graph in graphs:
            for node_type, features in zip(graph.node_types, graph.features):
                stacks[node_type].append(features)
        self.scalers = {}
        for node_type, rows in stacks.items():
            if rows:
                self.scalers[node_type] = StandardScaler().fit(np.stack(rows))
        return self

    def transform(self, node_type, matrix):
        scaler = self.scalers.get(node_type)
        if scaler is None:
            return np.asarray(matrix, dtype=np.float64)
        return scaler.transform(matrix)

    def state(self):
        return {t: s.state() for t, s in self.scalers.items()}

    @classmethod
    def from_state(cls, state):
        return cls({t: StandardScaler.from_state(s) for t, s in state.items()})


class TargetScaler:
    """Log-space standardization of runtimes; predictions are inverted back."""

    def __init__(self, mean=0.0, std=1.0):
        self.mean = mean
        self.std = std

    def fit(self, runtimes_ms):
        logs = np.log(np.maximum(np.asarray(runtimes_ms, dtype=np.float64), 1e-3))
        self.mean = float(logs.mean())
        self.std = float(logs.std()) or 1.0
        return self

    def to_scaled(self, runtimes_ms):
        logs = np.log(np.maximum(np.asarray(runtimes_ms, dtype=np.float64), 1e-3))
        return (logs - self.mean) / self.std

    def to_log(self, scaled):
        return np.asarray(scaled) * self.std + self.mean

    def to_runtime_ms(self, scaled):
        return np.exp(self.to_log(scaled))
