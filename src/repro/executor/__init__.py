"""Execution engine: exact plan execution plus the runtime simulator that
substitutes the paper's physical Postgres testbed."""

from .executor import Intermediate, ExecutionResult, execute_plan, equi_join
from .trace_engine import TraceExecutionContext, execute_trace
from .profiles import HardwareProfile, DEFAULT_HARDWARE, CLOUD_DW_NODE
from .runtime_model import (predicate_row_cost_ns, simulate_runtime_ms,
                            simulate_runtime_ms_batch, plan_signature,
                            node_time_us)

__all__ = [
    "Intermediate", "ExecutionResult", "execute_plan", "equi_join",
    "TraceExecutionContext", "execute_trace",
    "HardwareProfile", "DEFAULT_HARDWARE", "CLOUD_DW_NODE",
    "predicate_row_cost_ns", "simulate_runtime_ms",
    "simulate_runtime_ms_batch", "plan_signature", "node_time_us",
]
