"""Trace-level execution against shared precomputed structure.

Executing a whole workload trace through per-plan :func:`execute_plan` calls
repeats two pieces of work for every query: each scan re-evaluates its
predicate over the full table, and each join re-sorts the parent side's keys
(`np.argsort` per call) even though the parent is almost always the same
filtered scan of the same table.  This module executes a trace against a
:class:`TraceExecutionContext` that precomputes the shared structure once:

* **scan memo** — per ``(table, predicate)`` row-id sets, content-keyed on
  the predicate structure so equal predicates from distinct plan objects
  share one evaluation,
* **join key indexes** — one :class:`~repro.storage.Index` (stable
  full-table sort) per join column.  A join against a scan-derived parent
  probes the shared index with the child keys (two ``searchsorted`` calls)
  and filters the candidate parent rows by membership in the scan's row-id
  set — O(child·log n + matches) per call instead of a fresh
  O(s·log s) parent sort.

Because the full-table stable order restricted to an ascending scan subset
*is* the subset's stable sort order (key ascending, ties by row id), the
probe produces the match sequence of the per-call path exactly:
:func:`execute_trace` yields **bit-identical** ``ExecutionResult`` rows,
cardinalities and node profiles to the retained reference, per-plan
``execute_plan`` — asserted by the tier-1 equivalence tests.  Parent sides
that are not plain memoized scans (e.g. join outputs on bushy plans)
transparently fall back to the per-call sort.

Both memos are bounded and observable through :mod:`repro.perfstats`
(``execute.scan_cache.*`` / ``execute.join_index.*``), mirroring the
predict-cache observability contract of the training engine.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .. import perfstats
from ..sql import BooleanPredicate, Comparison, evaluate_predicate
from ..storage import Index
from .executor import (Intermediate, combine_positions, equi_join,
                       execute_plan, join_sides)

__all__ = ["TraceExecutionContext", "execute_trace"]


def _predicate_key(predicate):
    """Hashable content token of a predicate tree (None = no filter).

    Structural and exact — two predicates share a key iff they evaluate
    identically on any table — so memo entries can be shared across the
    distinct-but-equal predicate objects of separately planned queries.
    """
    if predicate is None:
        return None
    if isinstance(predicate, Comparison):
        literal = predicate.literal
        if isinstance(literal, list):
            literal = tuple(literal)
        return ("C", predicate.table, predicate.column, predicate.op.value,
                literal)
    if isinstance(predicate, BooleanPredicate):
        return ("B", predicate.op.value,
                tuple(_predicate_key(child) for child in predicate.children))
    raise TypeError(f"unknown predicate {type(predicate)!r}")


class TraceExecutionContext:
    """Shared-structure memos for executing many plans against one database.

    The context is scoped to one database *content state*: executing through
    it assumes table values do not change between plans (physical-design
    churn — creating/dropping indexes — is fine; the memos never look at
    ``db.indexes``).  After data updates, build a fresh context or call
    :meth:`clear`.
    """

    def __init__(self, db, max_scan_entries=1024, max_index_entries=256):
        self.db = db
        self.max_scan_entries = int(max_scan_entries)
        self.max_index_entries = int(max_index_entries)
        self._scan_cache = OrderedDict()    # (table, pred_key) -> row ids
        self._join_indexes = OrderedDict()  # (table, column) -> Index
        self._fk_domain_ok = {}             # (table, column, n) -> bool

    # ------------------------------------------------------------------
    def _scan_entry(self, table, predicate):
        """Memoized scan state: ``[row_ids, mask, position_map]``.

        ``row_ids`` is the ``np.nonzero(mask)`` result of the reference
        scan; ``mask`` stays around so joins can test row membership with
        one gather; ``position_map`` (row id -> position in ``row_ids``,
        built lazily on first join use) resolves the matched rows' positions
        without a binary search per candidate.
        """
        key = (table, _predicate_key(predicate))
        entry = self._scan_cache.get(key)
        if entry is None:
            perfstats.increment("execute.scan_cache.miss")
            mask = evaluate_predicate(predicate, self.db.table(table))
            entry = [np.nonzero(mask)[0], mask, None]
            self._scan_cache[key] = entry
            while len(self._scan_cache) > self.max_scan_entries:
                self._scan_cache.popitem(last=False)
                perfstats.increment("execute.scan_cache.eviction")
        else:
            perfstats.increment("execute.scan_cache.hit")
        return key, entry

    def _scan_positions(self, entry):
        if entry[2] is None:
            entry[2] = np.cumsum(entry[1]) - 1
        return entry[2]

    def _fk_in_dense_domain(self, table, column, n):
        """Once per column: are all non-NaN values integers in ``[0, n)``?

        When true (generated foreign keys referencing dense primary keys),
        a dense-index probe's validity checks collapse to one NaN test per
        call instead of four whole-array comparisons.
        """
        key = (table, column, n)
        ok = self._fk_domain_ok.get(key)
        if ok is None:
            values = self.db.column(table, column).values
            finite = values[~np.isnan(values)]
            ok = bool(len(finite) == 0
                      or ((finite >= 0.0).all()
                          and (finite < float(n)).all()
                          and (finite == np.floor(finite)).all()))
            self._fk_domain_ok[key] = ok
        return ok

    def scan_intermediate(self, table, predicate):
        """A fresh :class:`Intermediate` over the memoized scan row ids.

        The wrapper is tagged with its scan key (for the memoized membership
        mask) and with the *ascending-unique* provenance marker joins use to
        recognize parents whose stable sort order the shared index already
        encodes.
        """
        key, entry = self._scan_entry(table, predicate)
        result = Intermediate({table: entry[0]})
        result._scan_key = key
        result._asc_unique = frozenset((table,))
        return result

    # ------------------------------------------------------------------
    def _join_index(self, table, column):
        key = (table, column)
        index = self._join_indexes.get(key)
        if index is None:
            perfstats.increment("execute.join_index.build")
            index = Index(table, column, self.db.column(table, column).values)
            self._join_indexes[key] = index
            while len(self._join_indexes) > self.max_index_entries:
                self._join_indexes.popitem(last=False)
                perfstats.increment("execute.join_index.eviction")
        return index

    def equi_join(self, left, right, join_edge):
        """Equi-join through the shared per-column index (bit-identical).

        The fast path applies when the parent side is an unmodified memoized
        scan: its row ids are ascending and unique, so the full-table stable
        sort order restricted to them *is* the order the per-call
        ``np.argsort(parent_keys, kind="stable")`` would produce.  Each
        probe then specializes on the index's structural facts:

        * **dense unique keys** (generated primary keys, ``0..n-1``) — the
          matching parent row is the key itself: a cast, no search;
        * **unique keys** — at most one match per child key: one ``"left"``
          ``searchsorted`` plus an equality check (no right probe, no run
          expansion);
        * otherwise, or when the parent subset is filtered and keys repeat,
          the per-call sort path runs unchanged.

        Candidate parent rows outside a filtered scan's row-id set are
        dropped by one vectorized membership check.  Every tier emits the
        exact child/parent position sequences of the reference
        ``equi_join`` — key-ascending, ties by row id — so results are
        bit-identical.
        """
        child_side, parent_side = join_sides(left, right, join_edge)
        table = join_edge.parent_table
        if table not in getattr(parent_side, "_asc_unique", ()):
            perfstats.increment("execute.join_index.fallback")
            return equi_join(self.db, left, right, join_edge)
        index = self._join_index(table, join_edge.parent_column)
        if not index.unique_keys:
            # Repeated keys: the per-call subset sort is already optimal.
            perfstats.increment("execute.join_index.fallback")
            return equi_join(self.db, left, right, join_edge)
        # Counted only once the probe is actually served by the shared
        # index, so the smoke test's dispatch assertion cannot be satisfied
        # by calls that immediately fall back.
        perfstats.increment("execute.join_index.hit")
        scan_key = getattr(parent_side, "_scan_key", None)
        child_keys = child_side.column_values(self.db, join_edge.child_table,
                                              join_edge.child_column)
        sorted_keys, sorted_rows = index.sorted_valid()

        if len(sorted_keys) == 0:
            matched = np.zeros(len(child_keys), dtype=bool)
            parent_rows = sorted_rows[:0]
        elif index.dense_keys:
            # Key k sits at sorted position k: direct indexing, no search
            # (NaN child keys fail the floor equality).
            if self._fk_in_dense_domain(join_edge.child_table,
                                        join_edge.child_column,
                                        len(sorted_keys)):
                matched = ~np.isnan(child_keys)
            else:
                matched = ((child_keys >= 0.0)
                           & (child_keys < float(len(sorted_keys)))
                           & (child_keys == np.floor(child_keys)))
            parent_rows = sorted_rows[child_keys[matched].astype(np.int64)]
        else:
            lo = sorted_keys.searchsorted(child_keys, side="left")
            safe_lo = np.minimum(lo, len(sorted_keys) - 1)
            matched = sorted_keys[safe_lo] == child_keys
            parent_rows = sorted_rows[safe_lo[matched]]
        child_positions = np.flatnonzero(matched)

        subset = parent_side.row_ids[table]
        if len(subset) == len(self.db.table(table)):
            # Unfiltered scan: positions in the subset are the row ids.
            parent_positions = parent_rows
        elif len(subset) == 0:
            child_positions = child_positions[:0]
            parent_positions = parent_rows[:0]
        else:
            entry = self._scan_cache.get(scan_key)
            if (entry is not None and entry[0] is subset
                    and (entry[2] is not None
                         or len(parent_rows) * 8 >= len(entry[1]))):
                # Many candidates (or the position map already exists): one
                # mask gather + the memoized position map beats a binary
                # search per candidate.
                member = entry[1][parent_rows]
                child_positions = child_positions[member]
                parent_positions = (self._scan_positions(entry)
                                    [parent_rows[member]])
            elif len(parent_rows) * 4 >= len(self.db.table(table)):
                # No memo entry but many candidates (multi-table parent):
                # scatter a one-shot row -> position table, O(n + c) instead
                # of O(c log s).
                lookup = np.full(len(self.db.table(table)), -1,
                                 dtype=np.int64)
                lookup[subset] = np.arange(len(subset), dtype=np.int64)
                positions = lookup[parent_rows]
                member = positions >= 0
                child_positions = child_positions[member]
                parent_positions = positions[member]
            else:
                # Few candidates: binary-search membership in the subset.
                positions = subset.searchsorted(parent_rows)
                member = (subset[np.minimum(positions, len(subset) - 1)]
                          == parent_rows)
                child_positions = child_positions[member]
                parent_positions = positions[member]
        result = combine_positions(child_side, parent_side, child_positions,
                                   parent_positions)
        # A unique-key join keeps every child row at most once, in order —
        # the child side's ascending-unique tables stay ascending-unique
        # (the parent side's do not: their rows land in child-major order).
        result._asc_unique = getattr(child_side, "_asc_unique", frozenset())
        return result

    # ------------------------------------------------------------------
    def clear(self):
        """Drop every memo (table data changed, or test isolation)."""
        self._scan_cache.clear()
        self._join_indexes.clear()
        self._fk_domain_ok.clear()

    def stats(self):
        return {
            "scan_entries": len(self._scan_cache),
            "join_indexes": len(self._join_indexes),
            "fk_domain_entries": len(self._fk_domain_ok),
        }


def execute_trace(db, plans, ctx=None):
    """Execute all ``plans`` against ``db`` with shared precomputed structure.

    Returns one :class:`~repro.executor.executor.ExecutionResult` per plan,
    bit-identical — rows, cardinalities, per-node ``true_rows`` annotations
    and node profiles — to calling :func:`execute_plan` per plan.  A caller
    holding many traces against one database may pass its own ``ctx`` to
    share the join indexes across calls.
    """
    if ctx is None:
        ctx = TraceExecutionContext(db)
    results = []
    for plan in plans:
        perfstats.increment("execute.trace.plans")
        results.append(execute_plan(db, plan, ctx=ctx))
    return results
